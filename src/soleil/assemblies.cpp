// The three generation modes (§4.3), assembled from one shared plan.
#include <deque>

#include "membrane/membrane.hpp"
#include "membrane/nf_controllers.hpp"
#include "reconfig/plan_delta.hpp"
#include "soleil/application.hpp"
#include "soleil/merged_shell.hpp"
#include "util/assert.hpp"

namespace rtcf::soleil {

using comm::Message;
using membrane::ActiveInterceptor;
using membrane::AsyncSkeleton;
using membrane::Membrane;
using membrane::MemoryInterceptor;
using membrane::PatternOp;
using membrane::PatternRuntime;
using membrane::SyncSkeleton;
using membrane::TimingInterceptor;
using model::Protocol;
using MonitorEntry = monitor::RuntimeMonitor::Entry;

namespace {

/// Staging trampoline for the ULTRA_MERGE fast path.
const Message& stage_trampoline(void* pattern, const Message& m) {
  return static_cast<PatternRuntime*>(pattern)->stage(m);
}

// ---------------------------------------------------------------- SOLEIL

/// Full componentization: reified membranes, interceptor chains,
/// introspection and reconfiguration at membrane and functional level.
/// The only generation mode with *structural* runtime reconfiguration:
/// live plan deltas add and remove real components and re-target
/// asynchronous endpoints through the reified AsyncSkeletons.
class SoleilApplication final : public Application {
 public:
  SoleilApplication(const model::Architecture& arch, std::size_t partitions)
      : Application(arch, partitions) {
    build_contents();
    wire();
  }

  Mode mode() const noexcept override { return Mode::Soleil; }
  bool supports_membrane_introspection() const noexcept override {
    return true;
  }
  bool supports_reconfiguration() const noexcept override { return true; }
  bool supports_structural_reload() const noexcept override { return true; }

  membrane::Membrane* find_membrane(const std::string& component) override {
    auto it = membranes_.find(component);
    return it == membranes_.end() ? nullptr : it->second.get();
  }

  void start() override {
    started_ = true;
    for (auto& [name, m] : membranes_) m->lifecycle().start();
  }
  void stop() override {
    started_ = false;
    for (auto& [name, m] : membranes_) m->lifecycle().stop();
  }

  validate::Report rebind_sync(const std::string& client,
                               const std::string& port,
                               const std::string& server) override {
    PlannedBinding pb;
    validate::Report report = plan_sync_rebind(client, port, server, &pb);
    if (!report.ok()) return report;
    wire_sync_rebind(client, port, pb);
    return report;
  }

  validate::Report rebind_async(const std::string& client,
                                const std::string& port,
                                const std::string& server) override {
    validate::Report report;
    const model::BindingSpec* declared =
        assembly().binding_for({client, port});
    if (declared == nullptr ||
        declared->protocol != Protocol::Asynchronous) {
      report.add(validate::Severity::Error, "RECONF-ENDPOINTS",
                 client + "." + port + " -> " + server,
                 "port is not asynchronously bound");
      return report;
    }
    PlannedBinding pb;
    report = plan_rebind(client, port, server, Protocol::Asynchronous,
                         declared->buffer_size, &pb);
    if (!report.ok()) return report;
    retarget_async(client, port, pb, nullptr);
    return report;
  }

  bool set_component_started(const std::string& component,
                             bool started) override {
    auto it = membranes_.find(component);
    if (it == membranes_.end()) return false;
    if (started) {
      it->second->lifecycle().start();
    } else {
      it->second->lifecycle().stop();
    }
    return true;
  }

  /// Applies one validated plan delta at a quiescence point. Order
  /// matters for the conservation audit: additions first (so rebinds can
  /// target them), then added bindings, then rebinds and port removals
  /// (each drains its old buffer to the *still-started* old consumer
  /// before swapping), then component removals (drain remaining inbound
  /// buffers, stop, retire). Returns the number of messages the drains
  /// moved (0 when the pre-swap pump already emptied every buffer).
  std::uint64_t apply_plan_delta(const reconfig::PlanDelta& delta,
                                 const model::AssemblyPlan& target) override {
    std::uint64_t drained = 0;
    // Tenant envelopes before hot-adds: an admitted tenant's components
    // must register into *their* governor scope, not the default one.
    monitor().adopt_tenants(target);
    for (const auto& spec : delta.add_components) {
      PlannedComponent& pc = admit_component(spec);
      wire_component(pc);
      count_infra(membranes_.at(spec.name)->footprint_bytes());
      if (started_) membranes_.at(spec.name)->lifecycle().start();
    }
    for (const auto& spec : delta.add_bindings) {
      wire_binding(admit_binding(spec));
    }
    for (const auto& rb : delta.rebinds) {
      // Wire from the target spec directly (already validated by
      // plan_reload against the target plan): re-planning through
      // rebind_sync would resolve against the *pre-reload* snapshot and
      // miss servers added by this very delta.
      if (rb.protocol == Protocol::Synchronous) {
        wire_sync_rebind(rb.client.component, rb.client.interface,
                         resolve_binding_spec(rb.target));
      } else {
        retarget_async(rb.client.component, rb.client.interface,
                       resolve_binding_spec(rb.target), &drained);
      }
    }
    for (const auto& end : delta.remove_bindings) {
      auto it = async_ports_.find({end.component, end.interface});
      if (it != async_ports_.end()) {
        drained += drain_to(*it->second.buffer, it->second.server);
        async_ports_.erase(it);
      }
      runtime_of(end.component).content->port(end.interface).unbind();
      if (auto* planned = plan_.find_binding(end.component, end.interface)) {
        planned->retired = true;
      }
    }
    // Two-phase removal: first drain every buffer touching a removed
    // component while *all* lifecycles are still started and every server
    // entry still exists (a removed producer feeding a removed consumer
    // must not lose the messages between them), then dismantle.
    for (const auto& spec : delta.remove_components) {
      for (auto& [key, w] : async_ports_) {
        if (w.server == spec.name || key.first == spec.name) {
          drained += drain_to(*w.buffer, w.server);
        }
      }
    }
    for (const auto& spec : delta.remove_components) {
      drained += remove_component(spec.name);
    }
    commit_assembly(target);
    return drained;
  }

 private:
  struct AsyncWiring {
    MemoryInterceptor* mem = nullptr;
    AsyncSkeleton* skeleton = nullptr;
    comm::MessageBuffer* buffer = nullptr;
    std::string server;
    std::size_t target = 0;
  };

  /// Builds the membrane of one functional component: server-side
  /// interceptor chain (timing -> active/sync skeleton), monitor feed,
  /// dispatch entries. Shared by launch-time wiring and hot admission.
  void wire_component(const PlannedComponent& pc) {
    auto& rt = runtime_of(pc.component->name());
    auto membrane =
        std::make_unique<Membrane>(pc.component->name(), rt.content);
    MonitorEntry* mon = monitor_->find(pc.component->name());
    RTCF_ASSERT(mon != nullptr);
    auto& timing = membrane->add_interceptor<TimingInterceptor>(
        &monitor::RuntimeMonitor::record_activation_trampoline, mon);
    if (pc.active != nullptr) {
      auto& ai = membrane->add_interceptor<ActiveInterceptor>(
          &membrane->lifecycle(), rt.content);
      active_entries_[pc.component->name()] = &ai;
      rt.release_entry = [&ai] { ai.release(); };
      timing.set_next(&ai, &ai);
    } else {
      auto& ss = membrane->add_interceptor<SyncSkeleton>(
          &membrane->lifecycle(), rt.content);
      timing.set_next(nullptr, &ss);
    }
    server_sinks_[pc.component->name()] = &timing;
    server_invocables_[pc.component->name()] = &timing;
    // insert_or_assign: re-adding a previously removed name replaces the
    // erased membrane slot.
    membranes_.insert_or_assign(pc.component->name(), std::move(membrane));
  }

  /// Builds the client-side interceptor chain of one binding. Shared by
  /// launch-time wiring and hot admission.
  void wire_binding(const PlannedBinding& pb) {
    Membrane& client_membrane = *membranes_.at(pb.client->name());
    auto& client_rt = runtime_of(pb.client->name());
    comm::OutPort& port = client_rt.content->port(client_port_name(pb));
    PatternRuntime pattern =
        PatternRuntime::make(pb.op, pb.server_area, pb.staging_area);
    count_infra(pattern.slot_bytes());
    if (pb.protocol == Protocol::Asynchronous) {
      // Fail fast on an async binding into a passive server: delivery
      // needs an activation entry, which only active components have
      // (matching the pre-monitor assembly behaviour).
      RTCF_REQUIRE(active_entries_.count(pb.server->name()) != 0,
                   "asynchronous binding server '" + pb.server->name() +
                       "' is not an active component");
      auto& buffer =
          make_buffer(*pb.buffer_area, pb.buffer_size, pb.cross_partition);
      const std::size_t target = make_async_target(pb, buffer);
      auto* arg = make_notify_arg(target);
      auto& skeleton = client_membrane.add_interceptor<AsyncSkeleton>(
          &buffer, &ActivationManager::notify_trampoline, arg);
      skeleton.set_lifecycle_gate(&client_membrane.lifecycle());
      auto& mem = client_membrane.add_interceptor<MemoryInterceptor>(
          std::move(pattern));
      mem.set_lifecycle_gate(&client_membrane.lifecycle());
      mem.set_next(&skeleton, nullptr);
      auto& entry = client_membrane.add_interceptor<membrane::InterfaceEntry>(
          &client_membrane.lifecycle());
      entry.set_next(&mem, nullptr);
      port.bind_sink(&entry);
      async_ports_[{pb.client->name(), client_port_name(pb)}] =
          AsyncWiring{&mem, &skeleton, &buffer, pb.server->name(), target};
    } else {
      comm::IInvocable* server_entry =
          server_invocables_.at(pb.server->name());
      auto& mem = client_membrane.add_interceptor<MemoryInterceptor>(
          std::move(pattern));
      mem.set_lifecycle_gate(&client_membrane.lifecycle());
      mem.set_next(nullptr, server_entry);
      auto& entry = client_membrane.add_interceptor<membrane::InterfaceEntry>(
          &client_membrane.lifecycle());
      entry.set_next(nullptr, &mem);
      port.bind_invocable(&entry);
    }
  }

  /// Registers the consumer-side activation target of one async binding.
  std::size_t make_async_target(const PlannedBinding& pb,
                                comm::MessageBuffer& buffer) {
    comm::IMessageSink* server_entry = server_sinks_.at(pb.server->name());
    MonitorEntry* server_mon = monitor_->find(pb.server->name());
    const PlannedComponent& server_pc =
        *runtime_of(pb.server->name()).planned;
    const std::size_t target = manager_.add_target(
        server_pc.thread, make_gated_pump(buffer, *server_entry, server_mon),
        server_pc.partition);
    targets_by_server_.emplace(pb.server->name(), target);
    return target;
  }

  static std::string client_port_name(const PlannedBinding& pb) {
    return pb.binding != nullptr ? pb.binding->client.interface
                                 : std::string();
  }

  void wire_sync_rebind(const std::string& client, const std::string& port,
                        const PlannedBinding& pb) {
    comm::IInvocable* server_entry = nullptr;
    if (auto it = server_invocables_.find(pb.server->name());
        it != server_invocables_.end()) {
      server_entry = it->second;
    }
    RTCF_ASSERT(server_entry != nullptr);
    Membrane& client_membrane = *membranes_.at(client);
    auto& mem = client_membrane.add_interceptor<MemoryInterceptor>(
        PatternRuntime::make(pb.op, pb.server_area, pb.staging_area));
    mem.set_next(nullptr, server_entry);
    client_membrane.binding().rebind_invocable(port, &mem);
    if (auto* planned = plan_.find_binding(client, port)) {
      planned->server = pb.server;
      planned->op = pb.op;
      planned->server_area = pb.server_area;
      planned->staging_area = pb.staging_area;
      planned->cross_partition = pb.cross_partition;
    }
  }

  /// Pops everything out of `buffer` into `server`'s entry (used while the
  /// old consumer is still started — the drain half of drain-before-swap).
  std::uint64_t drain_to(comm::MessageBuffer& buffer,
                         const std::string& server) {
    std::uint64_t drained = 0;
    comm::IMessageSink* sink = server_sinks_.at(server);
    while (auto m = buffer.pop()) {
      sink->deliver(*m);
      ++drained;
    }
    return drained;
  }

  /// Drain-before-swap re-target of one async client port: the old buffer
  /// empties into the old consumer, then the AsyncSkeleton is pointed at a
  /// fresh buffer (SPSC when the new route crosses partitions) feeding the
  /// new server's activation entry, and the memory interceptor's staging
  /// pattern moves with the server's area.
  void retarget_async(const std::string& client, const std::string& port,
                      const PlannedBinding& pb, std::uint64_t* drained) {
    auto it = async_ports_.find({client, port});
    RTCF_REQUIRE(it != async_ports_.end(),
                 "port " + client + "." + port +
                     " has no asynchronous wiring to re-target");
    AsyncWiring& w = it->second;
    const std::uint64_t moved = drain_to(*w.buffer, w.server);
    if (drained != nullptr) *drained += moved;
    auto& buffer =
        make_buffer(*pb.buffer_area, pb.buffer_size, pb.cross_partition);
    const std::size_t target = make_async_target(pb, buffer);
    w.mem->reset_pattern(
        PatternRuntime::make(pb.op, pb.server_area, pb.staging_area));
    w.skeleton->retarget(&buffer, &ActivationManager::notify_trampoline,
                         make_notify_arg(target));
    w.buffer = &buffer;
    w.server = pb.server->name();
    w.target = target;
    if (auto* planned = plan_.find_binding(client, port)) {
      planned->server = pb.server;
      planned->protocol = pb.protocol;
      planned->buffer_size = pb.buffer_size;
      planned->op = pb.op;
      planned->server_area = pb.server_area;
      planned->staging_area = pb.staging_area;
      planned->buffer_area = pb.buffer_area;
      planned->cross_partition = pb.cross_partition;
    }
  }

  /// Removes one component live: drain its remaining inbound buffers to
  /// it (the drain audit — normally empty: the quiescence pump and the
  /// two-phase pre-drain in apply_plan_delta ran first), stop it through
  /// its lifecycle controller, retire its activation targets and plan
  /// slots, and dismantle its membrane.
  std::uint64_t remove_component(const std::string& name) {
    std::uint64_t drained = 0;
    for (auto& [key, w] : async_ports_) {
      if (w.server == name && server_sinks_.count(name) != 0) {
        drained += drain_to(*w.buffer, name);
      }
    }
    set_component_started(name, false);
    const auto range = targets_by_server_.equal_range(name);
    for (auto it = range.first; it != range.second; ++it) {
      manager_.retire_target(it->second);
    }
    targets_by_server_.erase(name);
    retire_component_runtime(name);
    // Outgoing async wiring dies with the component's membrane.
    for (auto it = async_ports_.begin(); it != async_ports_.end();) {
      it = it->first.first == name ? async_ports_.erase(it) : std::next(it);
    }
    active_entries_.erase(name);
    server_sinks_.erase(name);
    server_invocables_.erase(name);
    membranes_.erase(name);
    return drained;
  }

  void wire() {
    // Functional membranes with their server-side interceptors. Every
    // server entry is fronted by a TimingInterceptor feeding the runtime
    // monitor, so message-driven activations are observed per component
    // (periodic releases bypass it — the launcher records those with the
    // full release-to-completion picture).
    for (const PlannedComponent& pc : plan_.components) {
      wire_component(pc);
    }
    // Non-functional components are reified as membranes too: "the
    // structure of the latter is also reified at runtime, as well as the
    // ThreadDomain and MemoryArea composite components", each carrying its
    // real-time controller (§4.1, Fig. 6).
    for (const auto& owned : plan_.arch->components()) {
      if (owned->is_functional()) continue;
      auto membrane = std::make_unique<Membrane>(owned->name(), nullptr);
      for (const auto* sub : owned->subs()) {
        membrane->content_controller().add_sub(sub->name());
      }
      if (const auto* domain =
              dynamic_cast<const model::ThreadDomain*>(owned.get())) {
        auto& controller =
            membrane->add_controller<membrane::ThreadDomainController>(
                domain->type(), domain->priority());
        for (const auto* sub : domain->subs()) {
          if (const auto* active =
                  dynamic_cast<const model::ActiveComponent*>(sub)) {
            controller.attach_thread(&env_->thread_for(*active));
          }
        }
      } else if (const auto* area =
                     dynamic_cast<const model::MemoryAreaComponent*>(
                         owned.get())) {
        membrane->add_controller<membrane::MemoryAreaController>(
            &env_->area_runtime(*area));
      }
      membranes_.emplace(owned->name(), std::move(membrane));
    }
    // Bindings become interceptor chains on the client membrane.
    for (const PlannedBinding& pb : plan_.bindings) {
      wire_binding(pb);
    }
    for (const auto& [name, membrane] : membranes_) {
      count_infra(membrane->footprint_bytes());
    }
  }

  bool started_ = false;
  std::map<std::string, std::unique_ptr<Membrane>> membranes_;
  std::map<std::string, ActiveInterceptor*> active_entries_;
  /// Server-side entries with the timing interceptor in front: async
  /// delivery targets and synchronous invocation targets.
  std::map<std::string, comm::IMessageSink*> server_sinks_;
  std::map<std::string, comm::IInvocable*> server_invocables_;
  /// Client-side async wiring per (component, port): the re-target handle
  /// of the plan-delta engine and mode <Rebind>.
  std::map<std::pair<std::string, std::string>, AsyncWiring> async_ports_;
  /// Activation targets feeding each server (retired with the server).
  std::multimap<std::string, std::size_t> targets_by_server_;
};

// -------------------------------------------------------------- MERGE_ALL

/// Membrane merged into one shell per functional component.
class MergeAllApplication final : public Application {
 public:
  MergeAllApplication(const model::Architecture& arch,
                      std::size_t partitions)
      : Application(arch, partitions) {
    build_contents();
    wire();
  }

  Mode mode() const noexcept override { return Mode::MergeAll; }
  /// Reconfiguration stays available at the functional level (ports can be
  /// rebound through the shells); membrane structure is gone.
  bool supports_reconfiguration() const noexcept override { return true; }

  void start() override {
    for (auto& [name, shell] : shells_) shell->start();
  }
  void stop() override {
    for (auto& [name, shell] : shells_) shell->stop();
  }

  MergedShell* shell(const std::string& component) {
    auto it = shells_.find(component);
    return it == shells_.end() ? nullptr : it->second.get();
  }

  validate::Report rebind_sync(const std::string& client,
                               const std::string& port,
                               const std::string& server) override {
    PlannedBinding pb;
    validate::Report report = plan_sync_rebind(client, port, server, &pb);
    if (!report.ok()) return report;
    MergedShell& client_shell = *shells_.at(client);
    auto& endpoint = client_shell.add_endpoint();
    endpoint.pattern =
        PatternRuntime::make(pb.op, pb.server_area, pb.staging_area);
    endpoint.target = shells_.at(server).get();
    runtime_of(client).content->port(port).bind_invocable(&endpoint);
    return report;
  }

  bool set_component_started(const std::string& component,
                             bool started) override {
    auto it = shells_.find(component);
    if (it == shells_.end()) return false;
    if (started) {
      it->second->start();
    } else {
      it->second->stop();
    }
    return true;
  }

 private:
  void wire() {
    for (const PlannedComponent& pc : plan_.components) {
      auto& rt = runtime_of(pc.component->name());
      auto shell = std::make_unique<MergedShell>(rt.content);
      if (pc.active != nullptr) {
        MergedShell* raw = shell.get();
        rt.release_entry = [raw] { raw->release(); };
      }
      count_infra(sizeof(MergedShell));
      shells_.emplace(pc.component->name(), std::move(shell));
    }
    for (const PlannedBinding& pb : plan_.bindings) {
      MergedShell& client_shell = *shells_.at(pb.client->name());
      MergedShell& server_shell = *shells_.at(pb.server->name());
      comm::OutPort& port = runtime_of(pb.client->name())
                                .content->port(pb.binding->client.interface);
      auto& endpoint = client_shell.add_endpoint();
      endpoint.pattern =
          PatternRuntime::make(pb.op, pb.server_area, pb.staging_area);
      count_infra(sizeof(MergedShell::OutEndpoint) +
                  endpoint.pattern.slot_bytes());
      if (pb.protocol == Protocol::Asynchronous) {
        auto& buffer =
            make_buffer(*pb.buffer_area, pb.buffer_size, pb.cross_partition);
        MonitorEntry* server_mon = monitor_->find(pb.server->name());
        const PlannedComponent& server_pc =
            *runtime_of(pb.server->name()).planned;
        // Governor gate as in SOLEIL; the merged shell keeps the
        // activation manager, so shedding stays available. (ULTRA_MERGE's
        // flattened static plan compiles the hook away — it trades
        // adaptability for speed across the board.)
        const std::size_t target = manager_.add_target(
            server_pc.thread,
            make_gated_pump(buffer, server_shell, server_mon),
            server_pc.partition);
        endpoint.buffer = &buffer;
        endpoint.notify = &ActivationManager::notify_trampoline;
        endpoint.notify_arg = make_notify_arg(target);
        port.bind_sink(&endpoint);
      } else {
        endpoint.target = &server_shell;
        port.bind_invocable(&endpoint);
      }
    }
  }

  std::map<std::string, std::unique_ptr<MergedShell>> shells_;
};

// ------------------------------------------------------------ ULTRA_MERGE

/// Whole infrastructure flattened into a static plan: direct calls, no
/// per-component infrastructure objects, no reconfiguration.
class UltraMergeApplication final : public Application {
 public:
  UltraMergeApplication(const model::Architecture& arch,
                        std::size_t partitions)
      : Application(arch, partitions) {
    build_contents();
    wire();
  }

  Mode mode() const noexcept override { return Mode::UltraMerge; }

  /// Flattened static schedule: the generated ULTRA_MERGE code "takes into
  /// account the component activations" directly — no pending queue, no
  /// per-activation dispatch objects. Buffers are drained in binding order,
  /// looping until a full pass moves nothing (chains settle).
  void pump() override {
    bool moved = true;
    while (moved) {
      moved = false;
      for (auto& entry : drain_plan_) {
        while (auto m = entry.buffer->pop()) {
          rtsj::ContextGuard guard(entry.thread->context());
          entry.content->on_message(*m);
          moved = true;
        }
      }
    }
  }

  /// Partitioned static schedule: each worker drains only the entries whose
  /// server component is pinned to it (cross-partition buffers are SPSC, so
  /// the producer side needs no coordination).
  bool pump_partition(std::size_t partition) override {
    bool any = false;
    bool moved = true;
    while (moved) {
      moved = false;
      for (auto& entry : drain_plan_) {
        if (entry.partition != partition) continue;
        while (auto m = entry.buffer->pop()) {
          rtsj::ContextGuard guard(entry.thread->context());
          entry.content->on_message(*m);
          moved = true;
          any = true;
        }
      }
    }
    return any;
  }

 private:
  struct DrainEntry {
    comm::MessageBuffer* buffer;
    comm::Content* content;
    rtsj::RealtimeThread* thread;
    std::size_t partition;
  };
  /// Adapter invoking a content's synchronous entry (only materialized for
  /// bindings that need a pattern wrapper).
  struct ContentInvocable final : comm::IInvocable {
    comm::Content* content = nullptr;
    Message invoke(const Message& m) override {
      return content->on_invoke(m);
    }
  };

  struct PatternInvocable final : comm::IInvocable {
    PatternRuntime pattern;
    comm::IInvocable* next = nullptr;
    Message invoke(const Message& m) override {
      return pattern.call(*next, m);
    }
  };

  void wire() {
    for (const PlannedComponent& pc : plan_.components) {
      auto& rt = runtime_of(pc.component->name());
      if (pc.active != nullptr) {
        comm::Content* content = rt.content;
        rt.release_entry = [content] { content->on_release(); };
      }
    }
    for (const PlannedBinding& pb : plan_.bindings) {
      comm::OutPort& port = runtime_of(pb.client->name())
                                .content->port(pb.binding->client.interface);
      comm::Content* server_content = runtime_of(pb.server->name()).content;
      if (pb.protocol == Protocol::Asynchronous) {
        auto& buffer =
            make_buffer(*pb.buffer_area, pb.buffer_size, pb.cross_partition);
        // Static schedule instead of activation-manager dispatch: the
        // drain order is compiled into the application.
        const PlannedComponent& server_pc =
            *runtime_of(pb.server->name()).planned;
        drain_plan_.push_back(DrainEntry{&buffer, server_content,
                                         server_pc.thread,
                                         server_pc.partition});
        count_infra(sizeof(DrainEntry));
        if (pb.op == PatternOp::Direct) {
          port.bind_direct_buffer(&buffer, nullptr, nullptr);
        } else {
          patterns_.push_back(
              PatternRuntime::make(pb.op, pb.server_area, pb.staging_area));
          count_infra(sizeof(PatternRuntime) +
                      patterns_.back().slot_bytes());
          port.bind_direct_buffer(&buffer, nullptr, nullptr,
                                  &stage_trampoline, &patterns_.back());
        }
      } else {
        if (pb.op == PatternOp::Direct) {
          port.bind_direct_content(server_content);
        } else {
          auto& target = content_invocables_.emplace_back();
          target.content = server_content;
          auto& wrapper = pattern_invocables_.emplace_back();
          wrapper.pattern =
              PatternRuntime::make(pb.op, pb.server_area, pb.staging_area);
          wrapper.next = &target;
          count_infra(sizeof(ContentInvocable) + sizeof(PatternInvocable) +
                      wrapper.pattern.slot_bytes());
          port.bind_invocable(&wrapper);
        }
      }
    }
  }

  // Deques: stable addresses for bound adapters.
  std::deque<PatternRuntime> patterns_;
  std::deque<ContentInvocable> content_invocables_;
  std::deque<PatternInvocable> pattern_invocables_;
  std::vector<DrainEntry> drain_plan_;
};

}  // namespace

std::unique_ptr<Application> build_application(const model::Architecture& arch,
                                               Mode mode,
                                               std::size_t partitions) {
  std::unique_ptr<Application> app;
  switch (mode) {
    case Mode::Soleil:
      app = std::make_unique<SoleilApplication>(arch, partitions);
      break;
    case Mode::MergeAll:
      app = std::make_unique<MergeAllApplication>(arch, partitions);
      break;
    case Mode::UltraMerge:
      app = std::make_unique<UltraMergeApplication>(arch, partitions);
      break;
  }
  RTCF_ASSERT(app != nullptr);
  // All targets are registered during wire(); switch the dispatcher into
  // the mode the plan was partitioned for.
  app->activation_manager().configure_partitions(
      app->plan().partition_count);
  return app;
}

}  // namespace rtcf::soleil
