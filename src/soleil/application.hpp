// Assembled applications: the execution infrastructure Soleil generates.
//
// An Application is the runtime form of one validated architecture in one
// generation mode. The common machinery (runtime environment, plan,
// contents, activation manager) is shared; the modes differ in the
// dispatch structure they build on top — which is exactly the experimental
// variable of Fig. 7:
//
//   SOLEIL       reified membranes + interceptor chains, introspection and
//                reconfiguration at membrane and functional level;
//   MERGE_ALL    one merged shell per functional component, functional-level
//                reconfiguration only;
//   ULTRA_MERGE  one flattened static plan, no reconfiguration.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "comm/content.hpp"
#include "comm/message_buffer.hpp"
#include "membrane/membrane.hpp"
#include "model/assembly_plan.hpp"
#include "model/metamodel.hpp"
#include "monitor/runtime_monitor.hpp"
#include "runtime/environment.hpp"
#include "soleil/plan.hpp"
#include "validate/report.hpp"

namespace rtcf::reconfig {
struct PlanDelta;
}

namespace rtcf::soleil {

/// Run-to-completion activation dispatcher.
///
/// Asynchronous sends notify the consumer's activation target; pump()
/// drains pending activations in FIFO order, each executed under the
/// consumer's logical-thread context (the ActiveInterceptor's
/// run-to-completion model, §4.1). Notifications raised *during* a pump are
/// processed in the same drain, so one external trigger runs the whole
/// downstream transaction — matching the paper's "complete iteration".
///
/// Partitioned mode (configure_partitions(n > 1)): every target belongs to
/// one executive partition and carries a lock-free credit counter. notify()
/// increments the target's credits from whichever worker produced the
/// message; the owning partition's worker drains them in pump_partition(),
/// so cross-worker activation needs no locks and loses no notifications.
/// Single-partition mode keeps the exact FIFO deque dispatch of the
/// single-core executive.
class ActivationManager {
 public:
  using Work = std::function<void()>;

  struct NotifyArg {
    ActivationManager* manager;
    std::size_t target;
  };

  /// Registers an activation target; `thread` may be null (work runs on
  /// the caller's context). `partition` pins the target to an executive
  /// partition (ignored until configure_partitions). Late registration —
  /// after configure_partitions, for hot-added components — is legal at a
  /// quiescence point only (the per-partition index is not concurrently
  /// readable while it grows).
  std::size_t add_target(rtsj::RealtimeThread* thread, Work work,
                         std::size_t partition = 0);

  /// Permanently disables a target (live component removal): pending
  /// credits are dropped, future notifies are ignored, pump passes skip
  /// it. Only legal at a quiescence point after the target's buffer was
  /// drained — the drain audit, not this call, guarantees zero loss.
  void retire_target(std::size_t target);

  /// Switches to credit-based partitioned dispatch (n > 1) or back to the
  /// FIFO deque (n == 1). Call after all launch-time targets are
  /// registered and before any execution.
  void configure_partitions(std::size_t count);
  std::size_t partition_count() const noexcept { return partitions_; }

  void notify(std::size_t target);
  /// Trampoline with the signature membrane::NotifyFn expects.
  static void notify_trampoline(void* arg);

  /// Drains pending activations run-to-completion (all partitions; only
  /// safe single-threaded).
  void pump();
  /// Drains one partition's pending activations run-to-completion; safe to
  /// call concurrently for *different* partitions. Returns true when at
  /// least one activation ran.
  bool pump_partition(std::size_t partition);
  bool idle() const noexcept;
  std::uint64_t activation_count() const noexcept {
    return activations_.load(std::memory_order_relaxed);
  }

 private:
  struct Target {
    rtsj::RealtimeThread* thread;
    Work work;
    std::size_t partition = 0;
    /// Pending-activation count in partitioned mode (heap-boxed so targets
    /// stay movable during registration).
    std::unique_ptr<std::atomic<std::uint64_t>> credits;
    /// Set by retire_target (live component removal).
    bool retired = false;
  };

  void run_target(Target& target);

  std::vector<Target> targets_;
  std::deque<std::size_t> pending_;
  std::size_t partitions_ = 1;
  /// Target indices per partition, for pump_partition scans.
  std::vector<std::vector<std::size_t>> by_partition_;
  std::atomic<std::uint64_t> activations_{0};
};

/// Base of all assembled applications.
class Application {
 public:
  /// `partitions` > 1 builds a partitioned assembly: components are pinned
  /// to executive partitions by the plan, cross-partition asynchronous
  /// bindings get lock-free SPSC buffers, and activation dispatch is
  /// credit-based (see ActivationManager).
  explicit Application(const model::Architecture& arch,
                       std::size_t partitions = 1);
  virtual ~Application() = default;

  Application(const Application&) = delete;
  Application& operator=(const Application&) = delete;

  virtual Mode mode() const noexcept = 0;
  const char* mode_name() const noexcept { return to_string(mode()); }

  /// Lifecycle for the whole assembly (starts/stops every component).
  virtual void start();
  virtual void stop();

  /// Releases one active component (periodic entry) without draining
  /// downstream activations.
  void release(const std::string& component);
  /// Drains pending activations. ULTRA_MERGE overrides this with its
  /// flattened static schedule; the other modes dispatch through the
  /// activation manager.
  virtual void pump() { manager_.pump(); }
  /// Drains one partition's pending activations; safe to call concurrently
  /// for different partitions (the partitioned launcher's per-worker
  /// dispatch point). Returns true when anything ran.
  virtual bool pump_partition(std::size_t partition) {
    return manager_.pump_partition(partition);
  }
  /// One complete transaction: release + drain. This is what the Fig. 7
  /// benchmarks time.
  void iterate(const std::string& component);

  /// Resolves a component's release entry once. Calling the returned
  /// function releases the component without the per-call name lookup —
  /// which is what generated bootstrap code does; benchmarks should use
  /// this so name resolution is not billed as infrastructure overhead.
  std::function<void()> release_fn(const std::string& component);

  /// Introspection (availability depends on the mode).
  virtual membrane::Membrane* find_membrane(const std::string& component) {
    (void)component;
    return nullptr;
  }
  virtual bool supports_membrane_introspection() const noexcept {
    return false;
  }
  virtual bool supports_reconfiguration() const noexcept { return false; }

  // ---- runtime adaptation (§4.2) -----------------------------------------
  // "Every manipulation of RTSJ concepts is bounded by their specification
  // rules, so the reconfiguration process has to adhere to these
  // restrictions as well": rebinding re-validates the new connection before
  // touching any wiring.

  /// Rebinds the synchronous client port `port` of `client` to `server`'s
  /// synchronous entry. Returns the validation report for the *new*
  /// binding; wiring changes only when the report is clean. Unsupported
  /// modes return a report with a MODE-STATIC error.
  virtual validate::Report rebind_sync(const std::string& client,
                                       const std::string& port,
                                       const std::string& server);

  /// Rebinds the asynchronous client port `port` of `client` onto
  /// `server`'s activation entry: the old buffer is drained to the old
  /// consumer (zero loss), then the port's AsyncSkeleton is re-targeted
  /// onto a fresh buffer feeding the new server (SPSC when the binding now
  /// crosses partitions). Only legal at a quiescence point. Unsupported
  /// modes return a MODE-STATIC error.
  virtual validate::Report rebind_async(const std::string& client,
                                        const std::string& port,
                                        const std::string& server);

  /// Starts/stops one component at runtime. Returns false when the mode
  /// does not expose per-component lifecycle (ULTRA_MERGE).
  virtual bool set_component_started(const std::string& component,
                                     bool started);

  // ---- live reload (plan-delta engine) -----------------------------------

  /// True when the mode can apply structural plan deltas (add/remove real
  /// components) live. Only the fully reified SOLEIL membrane carries the
  /// controllers this needs.
  virtual bool supports_structural_reload() const noexcept { return false; }

  /// Applies a validated plan delta at a quiescence point: removals are
  /// stopped, drained and retired; additions are instantiated (content in
  /// its area, thread, telemetry, membrane) and wired; rebinds re-target
  /// ports sync or async. On return `assembly()` is `target`. Throws in
  /// modes without structural reload (check supports_structural_reload).
  /// Messages drained out of removed consumers' buffers are returned (the
  /// drain audit input; 0 when the pre-swap pump already emptied them).
  virtual std::uint64_t apply_plan_delta(const reconfig::PlanDelta& delta,
                                         const model::AssemblyPlan& target);

  /// Bytes of generated infrastructure (membranes, shells, interceptors,
  /// buffers, staging slots) — the Fig. 7c metric.
  std::size_t infrastructure_bytes() const noexcept { return infra_bytes_; }

  comm::Content* content(const std::string& component) const;
  rtsj::RealtimeThread* thread_of(const std::string& component) const;
  const Plan& plan() const noexcept { return plan_; }
  /// The immutable snapshot of the *currently running* assembly: the
  /// launch-time plan, replaced wholesale by every applied reload. This is
  /// what the plan-delta engine diffs a freshly loaded ADL against.
  const model::AssemblyPlan& assembly() const noexcept { return assembly_; }
  runtime::RuntimeEnvironment& environment() noexcept { return *env_; }
  ActivationManager& activation_manager() noexcept { return manager_; }
  /// Runtime monitor (telemetry, contracts, overload governor). Built for
  /// every mode: telemetry blocks live in each component's memory area;
  /// the SOLEIL membrane additionally feeds message-driven activations
  /// through its timing interceptors.
  monitor::RuntimeMonitor& monitor() noexcept { return *monitor_; }
  const monitor::RuntimeMonitor& monitor() const noexcept {
    return *monitor_;
  }
  const std::vector<std::unique_ptr<comm::MessageBuffer>>& buffers()
      const noexcept {
    return buffers_;
  }

 protected:
  /// Per-component runtime state shared across modes.
  struct ComponentRuntime {
    const PlannedComponent* planned = nullptr;
    comm::Content* content = nullptr;
    /// Periodic release entry (mode-specific gate + dispatch).
    std::function<void()> release_entry;
    /// Set once a live reload removed the component. The content object
    /// stays readable (counters survive for audits) but releases nothing.
    bool removed = false;
  };

  /// Instantiates contents (inside their areas) and declares their ports.
  void build_contents();

  // ---- hot admission (mode-independent half of a live reload) ------------

  /// Admits one added component into the running substrate: shadow
  /// metamodel object (the spec captured by value outlives any source
  /// architecture), RTSJ thread per its declared domain, content inside
  /// its area, monitor entry, plan slot. The generation mode wires its
  /// dispatch structure on top (membrane/shell).
  PlannedComponent& admit_component(const model::ComponentSpec& spec);

  /// Admits one added binding: shadow model::Binding plus the planned
  /// resolution from the spec's pattern/area placement.
  PlannedBinding& admit_binding(const model::BindingSpec& spec);

  /// Resolves a snapshot binding spec against the live plan (endpoints,
  /// pattern op, areas); the result's `binding` pointer is null — it
  /// describes wiring, not a declared binding.
  PlannedBinding resolve_binding_spec(const model::BindingSpec& spec);

  /// Resolves a snapshot area placement against this application's
  /// substrate (named areas of the launch architecture, or the
  /// heap/immortal singletons); throws PlanningError for unknown scoped
  /// areas — the delta validator rejects those reloads before apply.
  rtsj::MemoryArea& resolve_component_area(const model::ComponentSpec& spec);

  /// Marks a removed component's plan slot and runtime entry retired and
  /// unbinds its client ports. Lifecycle stop and dispatch detachment are
  /// the generation mode's job (it owns the membrane/shell).
  void retire_component_runtime(const std::string& name);

  /// Replaces the running snapshot (the final step of apply_plan_delta).
  void commit_assembly(const model::AssemblyPlan& target) {
    assembly_ = target;
  }

  /// `concurrent` selects the lock-free SPSC variant (cross-partition
  /// bindings); storage always comes from `area`.
  comm::MessageBuffer& make_buffer(rtsj::MemoryArea& area,
                                   std::size_t capacity,
                                   bool concurrent = false);

  /// Activation-target body shared by the generation modes that dispatch
  /// through the activation manager: pop one message from `buffer`,
  /// consult the overload governor for the consumer (`mon`, may be null),
  /// and either deliver through `sink` or drop the activation counted as
  /// shed. Dropping still pops, so degraded low-criticality consumers
  /// never backpressure real-time producers.
  ActivationManager::Work make_gated_pump(comm::MessageBuffer& buffer,
                                          comm::IMessageSink& sink,
                                          monitor::RuntimeMonitor::Entry* mon);
  ActivationManager::NotifyArg* make_notify_arg(std::size_t target);
  void count_infra(std::size_t bytes) noexcept { infra_bytes_ += bytes; }

  ComponentRuntime& runtime_of(const std::string& name);
  const ComponentRuntime& runtime_of(const std::string& name) const;

  /// Shared half of rebind_sync/rebind_async: validates the hypothetical
  /// binding against the RTSJ rules and, when legal, fills `out` with the
  /// planned pattern/areas (including the buffer area for asynchronous
  /// rebinds). Subclasses wire only on a clean report.
  validate::Report plan_rebind(const std::string& client,
                               const std::string& port,
                               const std::string& server,
                               model::Protocol protocol,
                               std::size_t buffer_size, PlannedBinding* out);
  validate::Report plan_sync_rebind(const std::string& client,
                                    const std::string& port,
                                    const std::string& server,
                                    PlannedBinding* out);

  std::unique_ptr<runtime::RuntimeEnvironment> env_;
  Plan plan_;
  /// Current-assembly snapshot; starts as plan_.assembly, replaced by
  /// every applied reload.
  model::AssemblyPlan assembly_;
  std::map<std::string, ComponentRuntime> runtimes_;
  ActivationManager manager_;
  std::vector<std::unique_ptr<comm::MessageBuffer>> buffers_;
  std::vector<std::unique_ptr<ActivationManager::NotifyArg>> notify_args_;
  /// Hot-added metamodel shadows: live reload captures added components
  /// and bindings by value, so the target architecture can be discarded;
  /// these deques give the plan stable objects to point at instead.
  std::deque<std::unique_ptr<model::Component>> dynamic_components_;
  std::deque<model::Binding> dynamic_bindings_;
  std::deque<std::unique_ptr<rtsj::RealtimeThread>> dynamic_threads_;
  /// Telemetry pointers reference areas owned by env_, which outlives the
  /// monitor (declared after env_, destroyed first).
  std::unique_ptr<monitor::RuntimeMonitor> monitor_;
  std::size_t infra_bytes_ = 0;
};

/// Builds an application for `arch` in `mode`. The architecture must
/// already be validated (build_application plans but does not re-run the
/// full rule engine) and must outlive the application. `partitions` > 1
/// assembles for the partitioned multi-worker executive.
std::unique_ptr<Application> build_application(const model::Architecture& arch,
                                               Mode mode,
                                               std::size_t partitions = 1);

}  // namespace rtcf::soleil
