#include "soleil/plan.hpp"

#include "validate/area_relation.hpp"
#include "validate/pattern_catalog.hpp"
#include "validate/validator.hpp"

namespace rtcf::soleil {

using model::ActiveComponent;
using model::Architecture;
using model::AreaType;
using model::Binding;
using model::Component;
using model::DomainType;
using model::MemoryAreaComponent;
using model::PassiveComponent;
using model::Protocol;
using validate::AreaRelation;

const char* to_string(Mode mode) noexcept {
  switch (mode) {
    case Mode::Soleil:
      return "SOLEIL";
    case Mode::MergeAll:
      return "MERGE_ALL";
    case Mode::UltraMerge:
      return "ULTRA_MERGE";
  }
  return "?";
}

const PlannedComponent* Plan::find_component(const std::string& name) const {
  for (const auto& c : components) {
    if (c.component->name() == name) return &c;
  }
  return nullptr;
}

namespace {

/// The common design-time scope ancestor of two scoped areas, or nullptr.
const MemoryAreaComponent* common_scope_ancestor(
    const Architecture& arch, const MemoryAreaComponent* a,
    const MemoryAreaComponent* b) {
  if (a == nullptr || b == nullptr) return nullptr;
  for (const auto* s = validate::design_parent_scope(arch, *a); s != nullptr;
       s = validate::design_parent_scope(arch, *s)) {
    for (const auto* t = b; t != nullptr;
         t = validate::design_parent_scope(arch, *t)) {
      if (s == t) return s;
    }
  }
  return nullptr;
}

bool executes_on_nhrt(const Architecture& arch, const Component& c) {
  for (const auto* domain : validate::executing_domains(arch, c)) {
    if (domain->type() == DomainType::NoHeapRealtime) return true;
  }
  return false;
}

}  // namespace

Plan make_plan(const Architecture& arch, runtime::RuntimeEnvironment& env) {
  Plan plan;
  plan.arch = &arch;

  for (const auto& owned : arch.components()) {
    if (!owned->is_functional()) continue;
    PlannedComponent pc;
    pc.component = owned.get();
    pc.area = &env.area_for(*owned);
    if (const auto* active = dynamic_cast<const ActiveComponent*>(owned.get())) {
      pc.active = active;
      pc.thread = &env.thread_for(*active);
      pc.content_class = active->content_class();
    } else {
      pc.content_class =
          static_cast<const PassiveComponent*>(owned.get())->content_class();
    }
    plan.components.push_back(pc);
  }

  for (const Binding& binding : arch.bindings()) {
    PlannedBinding pb;
    pb.binding = &binding;
    pb.client = arch.find(binding.client.component);
    pb.server = arch.find(binding.server.component);
    if (pb.client == nullptr || pb.server == nullptr) {
      throw PlanningError("binding endpoint not found: " +
                          binding.client.component + " -> " +
                          binding.server.component);
    }
    pb.protocol = binding.desc.protocol;
    pb.buffer_size = binding.desc.buffer_size;

    const MemoryAreaComponent* client_area_model =
        arch.memory_area_of(*pb.client);
    const MemoryAreaComponent* server_area_model =
        arch.memory_area_of(*pb.server);
    const AreaRelation relation =
        validate::relate_areas(arch, client_area_model, server_area_model);

    const bool client_no_heap = executes_on_nhrt(arch, *pb.client);
    const bool server_in_heap =
        server_area_model == nullptr ||
        server_area_model->type() == AreaType::Heap;

    std::string pattern_name = binding.desc.pattern;
    if (pattern_name.empty()) {
      validate::PatternQuery query;
      query.relation = relation;
      query.protocol = pb.protocol;
      query.client_no_heap = client_no_heap;
      query.server_in_heap = server_in_heap;
      query.common_scope_ancestor =
          common_scope_ancestor(arch, client_area_model, server_area_model) !=
          nullptr;
      pattern_name = validate::suggest_pattern(query);
      if (pattern_name.empty()) {
        throw PlanningError(
            "no RTSJ-legal communication pattern for binding " +
            binding.client.component + " -> " + binding.server.component +
            " (synchronous NHRT-to-heap?)");
      }
    }
    pb.op = membrane::pattern_op_from_name(pattern_name);

    rtsj::MemoryArea& immortal = rtsj::ImmortalMemory::instance();
    rtsj::MemoryArea& client_area = env.area_for(*pb.client);
    rtsj::MemoryArea& server_area = env.area_for(*pb.server);
    pb.server_area = &server_area;

    switch (pb.op) {
      case membrane::PatternOp::Direct:
      case membrane::PatternOp::ScopeEnter:
        pb.staging_area = nullptr;
        break;
      case membrane::PatternOp::DeepCopy:
      case membrane::PatternOp::WedgeThread:
        pb.staging_area = &server_area;
        break;
      case membrane::PatternOp::ImmortalForward:
        pb.staging_area = &immortal;
        break;
      case membrane::PatternOp::SharedScope: {
        const auto* shared = common_scope_ancestor(arch, client_area_model,
                                                   server_area_model);
        pb.staging_area =
            shared != nullptr ? &env.area_runtime(*shared) : &immortal;
        break;
      }
      case membrane::PatternOp::Handoff:
        pb.staging_area = &client_area;
        break;
    }

    if (pb.protocol == Protocol::Asynchronous) {
      // The buffer lives with the staged copy when the pattern stages one;
      // otherwise on the server side. Either way an NHRT participant must
      // never be handed heap storage, so heap placements fall back to
      // immortal memory.
      rtsj::MemoryArea* candidate =
          pb.staging_area != nullptr ? pb.staging_area : &server_area;
      const bool nhrt_involved =
          client_no_heap || executes_on_nhrt(arch, *pb.server);
      if (candidate->kind() == rtsj::AreaKind::Heap && nhrt_involved) {
        candidate = &immortal;
      }
      pb.buffer_area = candidate;
    }
    plan.bindings.push_back(pb);
  }
  return plan;
}

}  // namespace rtcf::soleil
