#include "soleil/plan.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "validate/area_relation.hpp"
#include "validate/pattern_catalog.hpp"
#include "validate/validator.hpp"

namespace rtcf::soleil {

using model::ActiveComponent;
using model::Architecture;
using model::AreaType;
using model::Binding;
using model::Component;
using model::DomainType;
using model::MemoryAreaComponent;
using model::PassiveComponent;
using model::Protocol;
using validate::AreaRelation;

const char* to_string(Mode mode) noexcept {
  switch (mode) {
    case Mode::Soleil:
      return "SOLEIL";
    case Mode::MergeAll:
      return "MERGE_ALL";
    case Mode::UltraMerge:
      return "ULTRA_MERGE";
  }
  return "?";
}

const PlannedComponent* Plan::find_component(const std::string& name) const {
  for (const auto& c : components) {
    if (c.component->name() == name) return &c;
  }
  return nullptr;
}

std::size_t Plan::partition_of(const std::string& name) const {
  const PlannedComponent* pc = find_component(name);
  if (pc == nullptr) {
    throw PlanningError("no planned component '" + name + "'");
  }
  return pc->partition;
}

namespace {

/// The common design-time scope ancestor of two scoped areas, or nullptr.
const MemoryAreaComponent* common_scope_ancestor(
    const Architecture& arch, const MemoryAreaComponent* a,
    const MemoryAreaComponent* b) {
  if (a == nullptr || b == nullptr) return nullptr;
  for (const auto* s = validate::design_parent_scope(arch, *a); s != nullptr;
       s = validate::design_parent_scope(arch, *s)) {
    for (const auto* t = b; t != nullptr;
         t = validate::design_parent_scope(arch, *t)) {
      if (s == t) return s;
    }
  }
  return nullptr;
}

bool executes_on_nhrt(const Architecture& arch, const Component& c) {
  for (const auto* domain : validate::executing_domains(arch, c)) {
    if (domain->type() == DomainType::NoHeapRealtime) return true;
  }
  return false;
}

}  // namespace

namespace {

/// Iterative union-find root lookup with path halving.
std::size_t uf_find(std::vector<std::size_t>& parent, std::size_t i) {
  while (parent[i] != i) {
    parent[i] = parent[parent[i]];
    i = parent[i];
  }
  return i;
}

/// Modeled CPU demand of one component: utilization for active components
/// with a declared cost (cost / period, with the sporadic MIT standing in
/// for the period), plus a small constant so zero-cost actives still spread
/// instead of piling onto one partition. Passive components weigh nothing —
/// they execute on their callers.
double component_weight(const PlannedComponent& pc) {
  if (pc.active == nullptr) return 0.0;
  double weight = 1e-3;
  const auto period = pc.active->period();
  const auto cost = pc.active->cost();
  if (!cost.is_zero() && period > rtsj::RelativeTime::zero()) {
    weight += static_cast<double>(cost.nanos()) /
              static_cast<double>(period.nanos());
  }
  return weight;
}

}  // namespace

void assign_partitions(Plan& plan, std::size_t partitions) {
  if (partitions == 0) partitions = 1;
  plan.partition_count = partitions;
  const std::size_t n = plan.components.size();

  // 1. Cluster components connected by synchronous bindings: a synchronous
  //    call executes the server on the client's worker, so both ends must
  //    be pinned together (this also keeps shared passive servers on one
  //    worker — no content-level data races).
  std::vector<std::size_t> parent(n);
  for (std::size_t i = 0; i < n; ++i) parent[i] = i;
  auto index_of = [&](const model::Component* c) -> std::size_t {
    for (std::size_t i = 0; i < n; ++i) {
      if (plan.components[i].component == c) return i;
    }
    return n;
  };
  for (const PlannedBinding& pb : plan.bindings) {
    if (pb.protocol != Protocol::Synchronous) continue;
    const std::size_t a = index_of(pb.client);
    const std::size_t b = index_of(pb.server);
    if (a == n || b == n) continue;
    // Union by smaller root so cluster identity is deterministic.
    const std::size_t ra = uf_find(parent, a);
    const std::size_t rb = uf_find(parent, b);
    if (ra != rb) parent[std::max(ra, rb)] = std::min(ra, rb);
  }

  // 2. Aggregate cluster weights (deterministic order: by root index).
  struct Cluster {
    std::size_t root;
    double weight = 0.0;
  };
  std::vector<Cluster> clusters;
  std::vector<std::size_t> cluster_of(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t root = uf_find(parent, i);
    std::size_t ci = clusters.size();
    for (std::size_t k = 0; k < clusters.size(); ++k) {
      if (clusters[k].root == root) {
        ci = k;
        break;
      }
    }
    if (ci == clusters.size()) clusters.push_back(Cluster{root, 0.0});
    cluster_of[i] = ci;
    clusters[ci].weight += component_weight(plan.components[i]);
  }

  // 3. Longest-processing-time-first bin packing: heaviest cluster onto the
  //    least-loaded partition; ties break towards the lower root index and
  //    the lower partition id, keeping the assignment fully deterministic.
  std::vector<std::size_t> order(clusters.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (clusters[a].weight != clusters[b].weight) {
                       return clusters[a].weight > clusters[b].weight;
                     }
                     return clusters[a].root < clusters[b].root;
                   });
  std::vector<double> load(partitions, 0.0);
  std::vector<std::size_t> cluster_partition(clusters.size(), 0);
  for (const std::size_t ci : order) {
    std::size_t best = 0;
    for (std::size_t p = 1; p < partitions; ++p) {
      if (load[p] < load[best]) best = p;
    }
    cluster_partition[ci] = best;
    load[best] += clusters[ci].weight;
  }
  for (std::size_t i = 0; i < n; ++i) {
    plan.components[i].partition = cluster_partition[cluster_of[i]];
  }

  // 4. Mark the bindings that now cross workers.
  for (PlannedBinding& pb : plan.bindings) {
    const std::size_t a = index_of(pb.client);
    const std::size_t b = index_of(pb.server);
    pb.cross_partition =
        a != n && b != n &&
        plan.components[a].partition != plan.components[b].partition;
    RTCF_ASSERT(!(pb.cross_partition &&
                  pb.protocol == Protocol::Synchronous));
  }
}

Plan make_plan(const Architecture& arch, runtime::RuntimeEnvironment& env,
               std::size_t partitions) {
  Plan plan;
  plan.arch = &arch;

  for (const auto& owned : arch.components()) {
    if (!owned->is_functional()) continue;
    PlannedComponent pc;
    pc.component = owned.get();
    pc.area = &env.area_for(*owned);
    if (const auto* active = dynamic_cast<const ActiveComponent*>(owned.get())) {
      pc.active = active;
      pc.thread = &env.thread_for(*active);
      pc.content_class = active->content_class();
      pc.criticality =
          active->criticality().value_or(model::Criticality::High);
      if (active->timing_contract()) {
        pc.contract = &*active->timing_contract();
      }
    } else {
      pc.content_class =
          static_cast<const PassiveComponent*>(owned.get())->content_class();
    }
    plan.components.push_back(pc);
  }

  for (const Binding& binding : arch.bindings()) {
    PlannedBinding pb;
    pb.binding = &binding;
    pb.client = arch.find(binding.client.component);
    pb.server = arch.find(binding.server.component);
    if (pb.client == nullptr || pb.server == nullptr) {
      throw PlanningError("binding endpoint not found: " +
                          binding.client.component + " -> " +
                          binding.server.component);
    }
    pb.protocol = binding.desc.protocol;
    pb.buffer_size = binding.desc.buffer_size;

    const MemoryAreaComponent* client_area_model =
        arch.memory_area_of(*pb.client);
    const MemoryAreaComponent* server_area_model =
        arch.memory_area_of(*pb.server);
    const AreaRelation relation =
        validate::relate_areas(arch, client_area_model, server_area_model);

    const bool client_no_heap = executes_on_nhrt(arch, *pb.client);
    const bool server_in_heap =
        server_area_model == nullptr ||
        server_area_model->type() == AreaType::Heap;

    std::string pattern_name = binding.desc.pattern;
    if (pattern_name.empty()) {
      validate::PatternQuery query;
      query.relation = relation;
      query.protocol = pb.protocol;
      query.client_no_heap = client_no_heap;
      query.server_in_heap = server_in_heap;
      query.common_scope_ancestor =
          common_scope_ancestor(arch, client_area_model, server_area_model) !=
          nullptr;
      pattern_name = validate::suggest_pattern(query);
      if (pattern_name.empty()) {
        throw PlanningError(
            "no RTSJ-legal communication pattern for binding " +
            binding.client.component + " -> " + binding.server.component +
            " (synchronous NHRT-to-heap?)");
      }
    }
    pb.op = membrane::pattern_op_from_name(pattern_name);

    rtsj::MemoryArea& immortal = rtsj::ImmortalMemory::instance();
    rtsj::MemoryArea& client_area = env.area_for(*pb.client);
    rtsj::MemoryArea& server_area = env.area_for(*pb.server);
    pb.server_area = &server_area;

    switch (pb.op) {
      case membrane::PatternOp::Direct:
      case membrane::PatternOp::ScopeEnter:
        pb.staging_area = nullptr;
        break;
      case membrane::PatternOp::DeepCopy:
      case membrane::PatternOp::WedgeThread:
        pb.staging_area = &server_area;
        break;
      case membrane::PatternOp::ImmortalForward:
        pb.staging_area = &immortal;
        break;
      case membrane::PatternOp::SharedScope: {
        const auto* shared = common_scope_ancestor(arch, client_area_model,
                                                   server_area_model);
        pb.staging_area =
            shared != nullptr ? &env.area_runtime(*shared) : &immortal;
        break;
      }
      case membrane::PatternOp::Handoff:
        pb.staging_area = &client_area;
        break;
    }

    if (pb.protocol == Protocol::Asynchronous) {
      // The buffer lives with the staged copy when the pattern stages one;
      // otherwise on the server side. Either way an NHRT participant must
      // never be handed heap storage, so heap placements fall back to
      // immortal memory.
      rtsj::MemoryArea* candidate =
          pb.staging_area != nullptr ? pb.staging_area : &server_area;
      const bool nhrt_involved =
          client_no_heap || executes_on_nhrt(arch, *pb.server);
      if (candidate->kind() == rtsj::AreaKind::Heap && nhrt_involved) {
        candidate = &immortal;
      }
      pb.buffer_area = candidate;
    }
    plan.bindings.push_back(pb);
  }
  assign_partitions(plan, partitions);
  return plan;
}

}  // namespace rtcf::soleil
