#include "soleil/plan.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "validate/area_relation.hpp"
#include "validate/pattern_catalog.hpp"
#include "validate/validator.hpp"

namespace rtcf::soleil {

using model::ActiveComponent;
using model::Architecture;
using model::AreaType;
using model::AssemblyPlan;
using model::AssemblyPlanBuilder;
using model::Binding;
using model::BindingSpec;
using model::Component;
using model::ComponentSpec;
using model::DomainType;
using model::MemoryAreaComponent;
using model::PassiveComponent;
using model::Protocol;
using validate::AreaRelation;

const char* to_string(Mode mode) noexcept {
  switch (mode) {
    case Mode::Soleil:
      return "SOLEIL";
    case Mode::MergeAll:
      return "MERGE_ALL";
    case Mode::UltraMerge:
      return "ULTRA_MERGE";
  }
  return "?";
}

const PlannedComponent* Plan::find_component(const std::string& name) const {
  for (const auto& c : components) {
    if (!c.retired && c.component->name() == name) return &c;
  }
  return nullptr;
}

PlannedComponent* Plan::find_component(const std::string& name) {
  for (auto& c : components) {
    if (!c.retired && c.component->name() == name) return &c;
  }
  return nullptr;
}

PlannedBinding* Plan::find_binding(const std::string& client,
                                   const std::string& port) {
  for (auto& b : bindings) {
    if (!b.retired && b.binding != nullptr &&
        b.binding->client.component == client &&
        b.binding->client.interface == port) {
      return &b;
    }
  }
  return nullptr;
}

std::size_t Plan::partition_of(const std::string& name) const {
  const PlannedComponent* pc = find_component(name);
  if (pc == nullptr) {
    throw PlanningError("no planned component '" + name + "'");
  }
  return pc->partition;
}

const MemoryAreaComponent* common_scope_ancestor(
    const Architecture& arch, const MemoryAreaComponent* a,
    const MemoryAreaComponent* b) {
  if (a == nullptr || b == nullptr) return nullptr;
  for (const auto* s = validate::design_parent_scope(arch, *a); s != nullptr;
       s = validate::design_parent_scope(arch, *s)) {
    for (const auto* t = b; t != nullptr;
         t = validate::design_parent_scope(arch, *t)) {
      if (s == t) return s;
    }
  }
  return nullptr;
}

namespace {

bool executes_on_nhrt(const Architecture& arch, const Component& c) {
  for (const auto* domain : validate::executing_domains(arch, c)) {
    if (domain->type() == DomainType::NoHeapRealtime) return true;
  }
  return false;
}

/// Iterative union-find root lookup with path halving.
std::size_t uf_find(std::vector<std::size_t>& parent, std::size_t i) {
  while (parent[i] != i) {
    parent[i] = parent[parent[i]];
    i = parent[i];
  }
  return i;
}

/// Modeled CPU demand of one component: utilization for active components
/// with a declared cost (cost / period, with the sporadic MIT standing in
/// for the period), plus a small constant so zero-cost actives still spread
/// instead of piling onto one partition. Passive components weigh nothing —
/// they execute on their callers.
double component_weight(const ComponentSpec& spec) {
  if (!spec.is_active()) return 0.0;
  double weight = 1e-3;
  if (!spec.cost.is_zero() && spec.period > rtsj::RelativeTime::zero()) {
    weight += static_cast<double>(spec.cost.nanos()) /
              static_cast<double>(spec.period.nanos());
  }
  return weight;
}

/// Snapshot area-placement name of a memory-area model object.
std::string area_placement_name(const MemoryAreaComponent* area) {
  return area == nullptr ? model::kAreaHeap : area->name();
}

/// True when a snapshot placement name resolves to heap storage.
bool placement_is_heap(const Architecture& arch, const std::string& name) {
  if (name == model::kAreaHeap) return true;
  if (name == model::kAreaImmortal || name == model::kAreaNone) return false;
  const auto* area = arch.find_as<MemoryAreaComponent>(name);
  return area != nullptr && area->type() == AreaType::Heap;
}

}  // namespace

void assign_partitions(AssemblyPlan& plan, std::size_t partitions) {
  if (partitions == 0) partitions = 1;
  AssemblyPlanBuilder builder{plan};
  builder.set_partition_count(partitions);
  auto& components = builder.components();
  const std::size_t n = components.size();

  // 1. Cluster components connected by synchronous bindings: a synchronous
  //    call executes the server on the client's worker, so both ends must
  //    be pinned together (this also keeps shared passive servers on one
  //    worker — no content-level data races).
  std::vector<std::size_t> parent(n);
  for (std::size_t i = 0; i < n; ++i) parent[i] = i;
  auto index_of = [&](const std::string& name) -> std::size_t {
    for (std::size_t i = 0; i < n; ++i) {
      if (components[i].name == name) return i;
    }
    return n;
  };
  for (const BindingSpec& b : plan.bindings()) {
    if (b.protocol != Protocol::Synchronous) continue;
    const std::size_t a = index_of(b.client.component);
    const std::size_t s = index_of(b.server.component);
    if (a == n || s == n) continue;
    // Union by smaller root so cluster identity is deterministic.
    const std::size_t ra = uf_find(parent, a);
    const std::size_t rb = uf_find(parent, s);
    if (ra != rb) parent[std::max(ra, rb)] = std::min(ra, rb);
  }

  // 2. Aggregate cluster weights (deterministic order: by root index).
  struct Cluster {
    std::size_t root;
    double weight = 0.0;
  };
  std::vector<Cluster> clusters;
  std::vector<std::size_t> cluster_of(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t root = uf_find(parent, i);
    std::size_t ci = clusters.size();
    for (std::size_t k = 0; k < clusters.size(); ++k) {
      if (clusters[k].root == root) {
        ci = k;
        break;
      }
    }
    if (ci == clusters.size()) clusters.push_back(Cluster{root, 0.0});
    cluster_of[i] = ci;
    clusters[ci].weight += component_weight(components[i]);
  }

  // 3. Longest-processing-time-first bin packing: heaviest cluster onto the
  //    least-loaded partition; ties break towards the lower root index and
  //    the lower partition id, keeping the assignment fully deterministic.
  std::vector<std::size_t> order(clusters.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (clusters[a].weight != clusters[b].weight) {
                       return clusters[a].weight > clusters[b].weight;
                     }
                     return clusters[a].root < clusters[b].root;
                   });
  std::vector<double> load(partitions, 0.0);
  std::vector<std::size_t> cluster_partition(clusters.size(), 0);
  for (const std::size_t ci : order) {
    std::size_t best = 0;
    for (std::size_t p = 1; p < partitions; ++p) {
      if (load[p] < load[best]) best = p;
    }
    cluster_partition[ci] = best;
    load[best] += clusters[ci].weight;
  }
  for (std::size_t i = 0; i < n; ++i) {
    components[i].partition = cluster_partition[cluster_of[i]];
  }

  // 4. Mark the bindings that now cross workers.
  for (BindingSpec& b : builder.bindings()) {
    const std::size_t a = index_of(b.client.component);
    const std::size_t s = index_of(b.server.component);
    b.cross_partition = a != n && s != n &&
                        components[a].partition != components[s].partition;
    RTCF_ASSERT(
        !(b.cross_partition && b.protocol == Protocol::Synchronous));
  }
}

AssemblyPlan snapshot_assembly(const Architecture& arch,
                               std::size_t partitions) {
  AssemblyPlan plan;
  AssemblyPlanBuilder builder{plan};

  for (const auto& owned : arch.components()) {
    if (!owned->is_functional()) continue;
    ComponentSpec spec;
    spec.name = owned->name();
    spec.kind = owned->kind();
    spec.swappable = owned->swappable();
    spec.interfaces = owned->interfaces();
    if (const auto* active =
            dynamic_cast<const ActiveComponent*>(owned.get())) {
      spec.activation = active->activation();
      spec.period = active->period();
      spec.cost = active->cost();
      spec.content_class = active->content_class();
      spec.criticality =
          active->criticality().value_or(model::Criticality::High);
      spec.contract = active->timing_contract();
      if (const auto* domain = arch.thread_domain_of(*owned)) {
        spec.thread_domain = domain->name();
        spec.domain_type = domain->type();
        spec.domain_priority = domain->priority();
      }
    } else {
      spec.content_class =
          static_cast<const PassiveComponent*>(owned.get())->content_class();
    }
    if (const auto* area = arch.memory_area_of(*owned)) {
      spec.memory_area = area->name();
      spec.area_type = area->type();
    }
    spec.executes_on_nhrt = executes_on_nhrt(arch, *owned);
    builder.components().push_back(std::move(spec));
  }

  for (const Binding& binding : arch.bindings()) {
    const Component* client = arch.find(binding.client.component);
    const Component* server = arch.find(binding.server.component);
    if (client == nullptr || server == nullptr) {
      throw PlanningError("binding endpoint not found: " +
                          binding.client.component + " -> " +
                          binding.server.component);
    }
    BindingSpec spec;
    spec.client = binding.client;
    spec.server = binding.server;
    spec.protocol = binding.desc.protocol;
    spec.buffer_size = binding.desc.buffer_size;

    const MemoryAreaComponent* client_area = arch.memory_area_of(*client);
    const MemoryAreaComponent* server_area = arch.memory_area_of(*server);
    const AreaRelation relation =
        validate::relate_areas(arch, client_area, server_area);
    const bool client_no_heap = executes_on_nhrt(arch, *client);
    const bool server_in_heap =
        server_area == nullptr || server_area->type() == AreaType::Heap;

    spec.pattern = binding.desc.pattern;
    if (spec.pattern.empty()) {
      validate::PatternQuery query;
      query.relation = relation;
      query.protocol = spec.protocol;
      query.client_no_heap = client_no_heap;
      query.server_in_heap = server_in_heap;
      query.common_scope_ancestor =
          common_scope_ancestor(arch, client_area, server_area) != nullptr;
      spec.pattern = validate::suggest_pattern(query);
      if (spec.pattern.empty()) {
        throw PlanningError(
            "no RTSJ-legal communication pattern for binding " +
            binding.client.component + " -> " + binding.server.component +
            " (synchronous NHRT-to-heap?)");
      }
    }

    switch (membrane::pattern_op_from_name(spec.pattern)) {
      case membrane::PatternOp::Direct:
      case membrane::PatternOp::ScopeEnter:
        spec.staging_area = model::kAreaNone;
        break;
      case membrane::PatternOp::DeepCopy:
      case membrane::PatternOp::WedgeThread:
        spec.staging_area = area_placement_name(server_area);
        break;
      case membrane::PatternOp::ImmortalForward:
        spec.staging_area = model::kAreaImmortal;
        break;
      case membrane::PatternOp::SharedScope: {
        const auto* shared =
            common_scope_ancestor(arch, client_area, server_area);
        spec.staging_area =
            shared != nullptr ? shared->name() : model::kAreaImmortal;
        break;
      }
      case membrane::PatternOp::Handoff:
        spec.staging_area = area_placement_name(client_area);
        break;
    }

    if (spec.protocol == Protocol::Asynchronous) {
      // The buffer lives with the staged copy when the pattern stages one;
      // otherwise on the server side. Either way an NHRT participant must
      // never be handed heap storage, so heap placements fall back to
      // immortal memory.
      std::string candidate = spec.staging_area != model::kAreaNone
                                  ? spec.staging_area
                                  : area_placement_name(server_area);
      const bool nhrt_involved =
          client_no_heap || executes_on_nhrt(arch, *server);
      if (nhrt_involved && placement_is_heap(arch, candidate)) {
        candidate = model::kAreaImmortal;
      }
      spec.buffer_area = std::move(candidate);
    }
    builder.bindings().push_back(std::move(spec));
  }

  for (const auto* area : arch.all_of<MemoryAreaComponent>()) {
    builder.areas().push_back(
        model::AreaSpec{area->name(), area->type(), area->size_bytes()});
  }
  builder.modes() = arch.modes();

  // Tenants snapshot with membership expanded: a MemoryArea/ThreadDomain
  // member pulls in every functional component it (transitively) encloses,
  // so downstream consumers never re-walk the component DAG. Unknown
  // member names are kept out of the expansion — the validator's
  // TENANT-MEMBER-UNKNOWN rule reports them against the declaration.
  for (const model::TenantDecl& decl : arch.tenants()) {
    model::TenantSpec tenant;
    tenant.name = decl.name;
    tenant.budget = decl.budget;
    tenant.criticality_floor = decl.criticality_floor;
    tenant.exports = decl.exports;
    tenant.imports = decl.imports;
    tenant.adl_line = decl.adl_line;
    for (const std::string& member : decl.members) {
      const Component* c = arch.find(member);
      if (c == nullptr) {
        // Unknown members ride along as component names so the validator's
        // TENANT-MEMBER-UNKNOWN rule can report them against the plan.
        tenant.components.push_back(member);
        continue;
      }
      switch (c->kind()) {
        case model::ComponentKind::MemoryArea:
          tenant.areas.push_back(member);
          break;
        case model::ComponentKind::ThreadDomain:
          tenant.domains.push_back(member);
          break;
        default:
          tenant.components.push_back(member);
          break;
      }
    }
    for (const auto& owned : arch.components()) {
      if (!owned->is_functional()) continue;
      if (decl.has_member(owned->name())) continue;
      const model::TenantDecl* owner = arch.tenant_of(owned->name());
      if (owner != nullptr && owner->name == decl.name) {
        tenant.components.push_back(owned->name());
      }
    }
    // Composites that enclose a member are part of the slice even when not
    // listed (the area/domain-scoping rules reason over the full set).
    for (const std::string& comp : tenant.components) {
      const Component* c = arch.find(comp);
      if (c == nullptr) continue;
      if (const auto* area = arch.memory_area_of(*c)) {
        if (!tenant.owns_area(area->name())) {
          tenant.areas.push_back(area->name());
        }
      }
      if (const auto* domain = arch.thread_domain_of(*c)) {
        if (std::find(tenant.domains.begin(), tenant.domains.end(),
                      domain->name()) == tenant.domains.end()) {
          tenant.domains.push_back(domain->name());
        }
      }
    }
    std::sort(tenant.components.begin(), tenant.components.end());
    std::sort(tenant.areas.begin(), tenant.areas.end());
    std::sort(tenant.domains.begin(), tenant.domains.end());
    builder.tenants().push_back(std::move(tenant));
  }

  assign_partitions(plan, partitions);
  return plan;
}

rtsj::MemoryArea* resolve_area_name(const std::string& name,
                                    const Architecture& arch,
                                    runtime::RuntimeEnvironment& env) {
  if (name == model::kAreaNone) return nullptr;
  if (name == model::kAreaImmortal) return &rtsj::ImmortalMemory::instance();
  if (name == model::kAreaHeap) return &rtsj::HeapMemory::instance();
  const auto* area = arch.find_as<MemoryAreaComponent>(name);
  if (area == nullptr) return nullptr;
  return &env.area_runtime(*area);
}

Plan make_plan(const Architecture& arch, runtime::RuntimeEnvironment& env,
               std::size_t partitions) {
  Plan plan;
  plan.arch = &arch;
  plan.assembly = snapshot_assembly(arch, partitions);
  plan.partition_count = plan.assembly.partition_count();

  for (const ComponentSpec& spec : plan.assembly.components()) {
    const Component* component = arch.find(spec.name);
    RTCF_ASSERT(component != nullptr);
    PlannedComponent pc;
    pc.component = component;
    pc.area = &env.area_for(*component);
    pc.partition = spec.partition;
    pc.content_class = spec.content_class;
    pc.criticality = spec.criticality;
    if (const auto* active = dynamic_cast<const ActiveComponent*>(component)) {
      pc.active = active;
      pc.thread = &env.thread_for(*active);
      if (active->timing_contract()) {
        pc.contract = &*active->timing_contract();
      }
    }
    plan.components.push_back(pc);
  }

  for (const BindingSpec& spec : plan.assembly.bindings()) {
    PlannedBinding pb;
    for (const Binding& binding : arch.bindings()) {
      if (binding.client == spec.client && binding.server == spec.server) {
        pb.binding = &binding;
        break;
      }
    }
    RTCF_ASSERT(pb.binding != nullptr);
    pb.client = arch.find(spec.client.component);
    pb.server = arch.find(spec.server.component);
    pb.protocol = spec.protocol;
    pb.buffer_size = spec.buffer_size;
    pb.op = membrane::pattern_op_from_name(spec.pattern);
    pb.server_area = &env.area_for(*pb.server);
    pb.staging_area = resolve_area_name(spec.staging_area, arch, env);
    pb.buffer_area = resolve_area_name(spec.buffer_area, arch, env);
    pb.cross_partition = spec.cross_partition;
    plan.bindings.push_back(pb);
  }
  return plan;
}

}  // namespace rtcf::soleil
