#include "soleil/application.hpp"

#include <stdexcept>

#include "comm/spsc_message_buffer.hpp"
#include "runtime/content_registry.hpp"
#include "util/assert.hpp"
#include "validate/area_relation.hpp"
#include "validate/pattern_catalog.hpp"
#include "validate/validator.hpp"

namespace rtcf::soleil {

std::size_t ActivationManager::add_target(rtsj::RealtimeThread* thread,
                                          Work work, std::size_t partition) {
  Target target;
  target.thread = thread;
  target.work = std::move(work);
  target.partition = partition;
  target.credits = std::make_unique<std::atomic<std::uint64_t>>(0);
  targets_.push_back(std::move(target));
  const std::size_t id = targets_.size() - 1;
  if (!by_partition_.empty()) {
    // Late registration (hot-added component at a quiescence point): the
    // dispatcher is already configured, so index the target immediately.
    RTCF_REQUIRE(partition < partitions_,
                 "activation target pinned to a partition out of range");
    by_partition_[partition].push_back(id);
  }
  return id;
}

void ActivationManager::configure_partitions(std::size_t count) {
  RTCF_REQUIRE(count > 0, "at least one partition");
  partitions_ = count;
  by_partition_.assign(count, {});
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    RTCF_REQUIRE(targets_[i].partition < count,
                 "activation target pinned to a partition out of range");
    by_partition_[targets_[i].partition].push_back(i);
  }
}

void ActivationManager::retire_target(std::size_t target) {
  RTCF_ASSERT(target < targets_.size());
  targets_[target].retired = true;
  targets_[target].credits->store(0, std::memory_order_release);
}

void ActivationManager::notify(std::size_t target) {
  RTCF_ASSERT(target < targets_.size());
  if (targets_[target].retired) return;
  if (partitions_ == 1) {
    pending_.push_back(target);
    return;
  }
  // Lock-free cross-worker handoff: the producer's message push
  // happens-before this release increment, and the consuming worker's
  // acquire decrement in pump_partition happens-before its buffer pop.
  targets_[target].credits->fetch_add(1, std::memory_order_release);
}

void ActivationManager::notify_trampoline(void* arg) {
  auto* na = static_cast<NotifyArg*>(arg);
  na->manager->notify(na->target);
}

void ActivationManager::run_target(Target& target) {
  activations_.fetch_add(1, std::memory_order_relaxed);
  if (target.thread != nullptr) {
    target.thread->run_with_context(target.work);
  } else {
    target.work();
  }
}

void ActivationManager::pump() {
  if (partitions_ == 1) {
    while (!pending_.empty()) {
      const std::size_t idx = pending_.front();
      pending_.pop_front();
      if (targets_[idx].retired) continue;
      run_target(targets_[idx]);
    }
    return;
  }
  // Single-threaded drive of a partitioned assembly (tests, final drain
  // after the workers joined): sweep partitions until a full pass is dry.
  bool moved = true;
  while (moved) {
    moved = false;
    for (std::size_t p = 0; p < partitions_; ++p) {
      moved = pump_partition(p) || moved;
    }
  }
}

bool ActivationManager::pump_partition(std::size_t partition) {
  if (partitions_ == 1) {
    RTCF_ASSERT(partition == 0);
    const std::uint64_t before = activation_count();
    pump();
    return activation_count() != before;
  }
  RTCF_ASSERT(partition < by_partition_.size());
  bool any = false;
  bool moved = true;
  // Keep sweeping this partition's targets until a full pass runs nothing:
  // activations raised *during* the sweep (downstream hops that stayed on
  // this worker) are drained in the same call, preserving the
  // run-to-completion transaction semantics per partition.
  while (moved) {
    moved = false;
    for (const std::size_t idx : by_partition_[partition]) {
      Target& target = targets_[idx];
      if (target.retired) continue;
      while (target.credits->load(std::memory_order_acquire) > 0) {
        target.credits->fetch_sub(1, std::memory_order_acq_rel);
        run_target(target);
        moved = true;
        any = true;
      }
    }
  }
  return any;
}

bool ActivationManager::idle() const noexcept {
  if (!pending_.empty()) return false;
  for (const Target& target : targets_) {
    if (target.credits->load(std::memory_order_acquire) > 0) return false;
  }
  return true;
}

Application::Application(const model::Architecture& arch,
                         std::size_t partitions)
    : env_(std::make_unique<runtime::RuntimeEnvironment>(arch)),
      plan_(make_plan(arch, *env_, partitions)),
      assembly_(plan_.assembly),
      monitor_(std::make_unique<monitor::RuntimeMonitor>()) {
  // Telemetry is part of the assembly, whatever the generation mode: every
  // functional component gets its block inside its own memory area, plus a
  // contract checker and a governor slot when the metamodel declares them.
  // Tenant envelopes first, so each slot lands in its tenant's scope.
  monitor_->adopt_tenants(assembly_);
  for (const PlannedComponent& pc : plan_.components) {
    rtsj::RelativeTime deadline;
    bool release_driven = false;
    if (pc.active != nullptr) {
      deadline = pc.thread->profile().effective_deadline();
      release_driven =
          pc.active->activation() == model::ActivationKind::Periodic;
    }
    monitor_->add_component(pc.component->name().c_str(), *pc.area,
                            pc.criticality, pc.contract, deadline,
                            release_driven);
  }
  count_infra(monitor_->telemetry_bytes());
}

void Application::build_contents() {
  auto& registry = runtime::ContentRegistry::instance();
  for (const PlannedComponent& pc : plan_.components) {
    ComponentRuntime rt;
    rt.planned = &pc;
    if (pc.content_class.empty()) {
      throw PlanningError("component '" + pc.component->name() +
                          "' names no content class");
    }
    rt.content = registry.create(pc.content_class, *pc.area);
    for (const auto& itf : pc.component->interfaces()) {
      if (itf.role == model::InterfaceRole::Client) {
        rt.content->add_port(itf.name);
      }
    }
    runtimes_.emplace(pc.component->name(), std::move(rt));
  }
}

comm::MessageBuffer& Application::make_buffer(rtsj::MemoryArea& area,
                                              std::size_t capacity,
                                              bool concurrent) {
  if (concurrent) {
    buffers_.push_back(
        std::make_unique<comm::SpscMessageBuffer>(area, capacity));
    count_infra(sizeof(comm::SpscMessageBuffer) +
                capacity * sizeof(comm::Message));
  } else {
    buffers_.push_back(std::make_unique<comm::MessageBuffer>(area, capacity));
    count_infra(sizeof(comm::MessageBuffer) +
                capacity * sizeof(comm::Message));
  }
  return *buffers_.back();
}

ActivationManager::Work Application::make_gated_pump(
    comm::MessageBuffer& buffer, comm::IMessageSink& sink,
    monitor::RuntimeMonitor::Entry* mon) {
  comm::MessageBuffer* buf = &buffer;
  comm::IMessageSink* out = &sink;
  return [buf, out, mon] {
    if (auto m = buf->pop()) {
      if (mon != nullptr && !mon->owner->admit_activation(*mon)) return;
      out->deliver(*m);
    }
  };
}

ActivationManager::NotifyArg* Application::make_notify_arg(
    std::size_t target) {
  notify_args_.push_back(std::make_unique<ActivationManager::NotifyArg>(
      ActivationManager::NotifyArg{&manager_, target}));
  count_infra(sizeof(ActivationManager::NotifyArg));
  return notify_args_.back().get();
}

Application::ComponentRuntime& Application::runtime_of(
    const std::string& name) {
  auto it = runtimes_.find(name);
  if (it == runtimes_.end()) {
    throw std::invalid_argument("unknown component '" + name + "'");
  }
  return it->second;
}

const Application::ComponentRuntime& Application::runtime_of(
    const std::string& name) const {
  auto it = runtimes_.find(name);
  if (it == runtimes_.end()) {
    throw std::invalid_argument("unknown component '" + name + "'");
  }
  return it->second;
}

void Application::start() {
  for (auto& [name, rt] : runtimes_) rt.content->on_start();
}

void Application::stop() {
  for (auto& [name, rt] : runtimes_) rt.content->on_stop();
}

void Application::release(const std::string& component) {
  ComponentRuntime& rt = runtime_of(component);
  RTCF_REQUIRE(rt.release_entry != nullptr,
               "component '" + component + "' has no release entry "
               "(passive component?)");
  if (rt.planned->thread != nullptr) {
    rt.planned->thread->run_with_context(rt.release_entry);
  } else {
    rt.release_entry();
  }
}

void Application::iterate(const std::string& component) {
  release(component);
  pump();  // Virtual: ULTRA_MERGE substitutes its static drain schedule.
}

std::function<void()> Application::release_fn(const std::string& component) {
  ComponentRuntime& rt = runtime_of(component);
  RTCF_REQUIRE(rt.release_entry != nullptr,
               "component '" + component + "' has no release entry");
  rtsj::RealtimeThread* thread = rt.planned->thread;
  // Copy the entry so the returned function is self-contained.
  std::function<void()> entry = rt.release_entry;
  if (thread == nullptr) return entry;
  return [thread, entry = std::move(entry)] {
    thread->run_with_context(entry);
  };
}

validate::Report Application::rebind_sync(const std::string& client,
                                          const std::string& port,
                                          const std::string& server) {
  (void)port;
  validate::Report report;
  report.add(validate::Severity::Error, "MODE-STATIC", client + " -> " + server,
             std::string(mode_name()) +
                 " infrastructure is static; rebinding is not available");
  return report;
}

validate::Report Application::rebind_async(const std::string& client,
                                           const std::string& port,
                                           const std::string& server) {
  (void)port;
  validate::Report report;
  report.add(validate::Severity::Error, "MODE-STATIC", client + " -> " + server,
             std::string(mode_name()) +
                 " does not reify asynchronous endpoints; async rebinding "
                 "is not available");
  return report;
}

std::uint64_t Application::apply_plan_delta(const reconfig::PlanDelta& delta,
                                            const model::AssemblyPlan& target) {
  (void)delta;
  (void)target;
  RTCF_REQUIRE(false, std::string(mode_name()) +
                          " cannot apply structural plan deltas; check "
                          "supports_structural_reload() before reloading");
  return 0;
}

bool Application::set_component_started(const std::string& component,
                                        bool started) {
  (void)component;
  (void)started;
  return false;
}

validate::Report Application::plan_rebind(const std::string& client,
                                          const std::string& port,
                                          const std::string& server,
                                          model::Protocol protocol,
                                          std::size_t buffer_size,
                                          PlannedBinding* out) {
  validate::Report report;
  const std::string subject = client + "." + port + " -> " + server;
  const PlannedComponent* pc_client = plan_.find_component(client);
  const PlannedComponent* pc_server = plan_.find_component(server);
  // Specs come from the running snapshot, so hot-added endpoints resolve
  // exactly like launch-declared ones.
  const model::ComponentSpec* spec_client = assembly_.find(client);
  const model::ComponentSpec* spec_server = assembly_.find(server);
  if (pc_client == nullptr || pc_server == nullptr ||
      spec_client == nullptr || spec_server == nullptr) {
    report.add(validate::Severity::Error, "RECONF-ENDPOINTS", subject,
               "unknown component");
    return report;
  }
  comm::Content* client_content = runtime_of(client).content;
  bool port_found = false;
  for (std::size_t i = 0; i < client_content->port_count(); ++i) {
    if (client_content->port(i).name() == port) port_found = true;
  }
  if (!port_found) {
    report.add(validate::Severity::Error, "RECONF-ENDPOINTS", subject,
               "client has no port '" + port + "'");
    return report;
  }
  if (protocol == model::Protocol::Asynchronous &&
      !spec_server->is_active()) {
    report.add(validate::Severity::Error, "RECONF-ASYNC-SERVER", subject,
               "asynchronous rebind server is not an active component");
    return report;
  }

  const model::Architecture& arch = *plan_.arch;
  const auto area_model = [&](const std::string& name) {
    return name.empty() ? nullptr
                        : arch.find_as<model::MemoryAreaComponent>(name);
  };
  const model::MemoryAreaComponent* client_area =
      area_model(spec_client->memory_area);
  const model::MemoryAreaComponent* server_area =
      area_model(spec_server->memory_area);
  const model::MemoryAreaComponent* shared =
      common_scope_ancestor(arch, client_area, server_area);

  validate::PatternQuery query;
  query.relation = validate::relate_areas(arch, client_area, server_area);
  query.protocol = protocol;
  query.client_no_heap = spec_client->executes_on_nhrt;
  query.server_in_heap = server_area == nullptr ||
                         server_area->type() == model::AreaType::Heap;
  query.common_scope_ancestor = shared != nullptr;
  const std::string pattern = validate::suggest_pattern(query);
  if (pattern.empty()) {
    report.add(validate::Severity::Error, "RECONF-NHRT-HEAP", subject,
               "no RTSJ-legal pattern exists for the new binding "
               "(synchronous NHRT client into heap state?)");
    return report;
  }
  report.add(validate::Severity::Info, "RECONF-PATTERN", subject,
             "rebinding with pattern '" + pattern + "'");
  if (out != nullptr) {
    out->client = pc_client->component;
    out->server = pc_server->component;
    out->protocol = protocol;
    out->buffer_size = buffer_size;
    out->op = membrane::pattern_op_from_name(pattern);
    out->server_area = pc_server->area;
    switch (out->op) {
      case membrane::PatternOp::Direct:
      case membrane::PatternOp::ScopeEnter:
        out->staging_area = nullptr;
        break;
      case membrane::PatternOp::ImmortalForward:
        out->staging_area = &rtsj::ImmortalMemory::instance();
        break;
      default:
        out->staging_area = pc_server->area;
        break;
    }
    out->cross_partition = pc_client->partition != pc_server->partition;
    if (protocol == model::Protocol::Asynchronous) {
      rtsj::MemoryArea* candidate = out->staging_area != nullptr
                                        ? out->staging_area
                                        : out->server_area;
      if (candidate->kind() == rtsj::AreaKind::Heap &&
          (spec_client->executes_on_nhrt || spec_server->executes_on_nhrt)) {
        candidate = &rtsj::ImmortalMemory::instance();
      }
      out->buffer_area = candidate;
    }
  }
  return report;
}

validate::Report Application::plan_sync_rebind(const std::string& client,
                                               const std::string& port,
                                               const std::string& server,
                                               PlannedBinding* out) {
  return plan_rebind(client, port, server, model::Protocol::Synchronous, 0,
                     out);
}

rtsj::MemoryArea& Application::resolve_component_area(
    const model::ComponentSpec& spec) {
  if (!spec.memory_area.empty()) {
    if (rtsj::MemoryArea* area =
            resolve_area_name(spec.memory_area, *plan_.arch, *env_)) {
      return *area;
    }
  }
  // Areas the running assembly does not have degrade to the primordial
  // singletons — except scopes, which cannot be instantiated live (the
  // delta validator rejects those reloads; this is the defensive fence).
  switch (spec.area_type) {
    case model::AreaType::Immortal:
      return rtsj::ImmortalMemory::instance();
    case model::AreaType::Heap:
      return rtsj::HeapMemory::instance();
    case model::AreaType::Scoped:
      break;
  }
  if (spec.memory_area.empty()) return rtsj::HeapMemory::instance();
  throw PlanningError("component '" + spec.name +
                      "' deploys into scoped area '" + spec.memory_area +
                      "', which the running assembly did not create");
}

soleil::PlannedComponent& Application::admit_component(
    const model::ComponentSpec& spec) {
  RTCF_REQUIRE(plan_.find_component(spec.name) == nullptr,
               "component '" + spec.name + "' is already live");
  model::Component* shadow = nullptr;
  model::ActiveComponent* active = nullptr;
  if (spec.is_active()) {
    auto owned = std::make_unique<model::ActiveComponent>(
        spec.name, spec.activation, spec.period);
    owned->set_cost(spec.cost);
    owned->set_content_class(spec.content_class);
    owned->set_criticality(spec.criticality);
    if (spec.contract) owned->set_timing_contract(*spec.contract);
    active = owned.get();
    shadow = owned.get();
    dynamic_components_.push_back(std::move(owned));
  } else {
    auto owned = std::make_unique<model::PassiveComponent>(spec.name);
    owned->set_content_class(spec.content_class);
    shadow = owned.get();
    dynamic_components_.push_back(std::move(owned));
  }
  shadow->set_swappable(spec.swappable);
  for (const auto& itf : spec.interfaces) shadow->add_interface(itf);

  rtsj::MemoryArea& area = resolve_component_area(spec);
  PlannedComponent pc;
  pc.component = shadow;
  pc.active = active;
  pc.area = &area;
  pc.content_class = spec.content_class;
  pc.criticality = spec.criticality;
  pc.partition = spec.partition;
  if (active != nullptr) {
    if (active->timing_contract()) pc.contract = &*active->timing_contract();
    const rtsj::ReleaseProfile profile =
        spec.activation == model::ActivationKind::Periodic
            ? rtsj::ReleaseProfile::periodic(spec.period, spec.cost)
            : rtsj::ReleaseProfile::sporadic(spec.period, spec.cost);
    std::unique_ptr<rtsj::RealtimeThread> thread;
    switch (spec.domain_type) {
      case model::DomainType::NoHeapRealtime:
        thread = std::make_unique<rtsj::NoHeapRealtimeThread>(
            spec.name, spec.domain_priority, profile, &area);
        break;
      case model::DomainType::Realtime:
        thread = std::make_unique<rtsj::RealtimeThread>(
            spec.name, rtsj::ThreadKind::Realtime, spec.domain_priority,
            profile, &area);
        break;
      case model::DomainType::Regular:
        thread = std::make_unique<rtsj::RealtimeThread>(
            spec.name, rtsj::ThreadKind::Regular, spec.domain_priority,
            profile, &area);
        break;
    }
    pc.thread = thread.get();
    dynamic_threads_.push_back(std::move(thread));
  }
  plan_.components.push_back(pc);
  PlannedComponent& planned = plan_.components.back();

  rtsj::RelativeTime deadline;
  bool release_driven = false;
  if (planned.active != nullptr) {
    deadline = planned.thread->profile().effective_deadline();
    release_driven = spec.activation == model::ActivationKind::Periodic;
  }
  monitor_->add_component(planned.component->name().c_str(), *planned.area,
                          planned.criticality, planned.contract, deadline,
                          release_driven);

  ComponentRuntime rt;
  rt.planned = &planned;
  if (spec.content_class.empty()) {
    throw PlanningError("component '" + spec.name +
                        "' names no content class");
  }
  rt.content = runtime::ContentRegistry::instance().create(
      spec.content_class, *planned.area);
  for (const auto& itf : spec.interfaces) {
    if (itf.role == model::InterfaceRole::Client) {
      rt.content->add_port(itf.name);
    }
  }
  // insert_or_assign: a component re-added under a name that was removed
  // earlier supersedes the retired runtime entry (the old content object
  // stays in its area until the area is reclaimed).
  runtimes_.insert_or_assign(spec.name, std::move(rt));
  return planned;
}

soleil::PlannedBinding Application::resolve_binding_spec(
    const model::BindingSpec& spec) {
  PlannedComponent* client = plan_.find_component(spec.client.component);
  PlannedComponent* server = plan_.find_component(spec.server.component);
  RTCF_REQUIRE(client != nullptr && server != nullptr,
               "binding endpoint not live: " + spec.client.component +
                   " -> " + spec.server.component);
  PlannedBinding pb;
  pb.client = client->component;
  pb.server = server->component;
  pb.protocol = spec.protocol;
  pb.buffer_size = spec.buffer_size;
  pb.op = membrane::pattern_op_from_name(spec.pattern);
  pb.server_area = server->area;
  pb.staging_area = resolve_area_name(spec.staging_area, *plan_.arch, *env_);
  pb.buffer_area = resolve_area_name(spec.buffer_area, *plan_.arch, *env_);
  if (spec.protocol == model::Protocol::Asynchronous) {
    RTCF_REQUIRE(pb.buffer_area != nullptr,
                 "binding " + spec.client.component + " -> " +
                     spec.server.component +
                     " has no resolvable buffer area");
  }
  pb.cross_partition = spec.cross_partition;
  return pb;
}

soleil::PlannedBinding& Application::admit_binding(
    const model::BindingSpec& spec) {
  PlannedBinding pb = resolve_binding_spec(spec);
  model::Binding shadow;
  shadow.client = spec.client;
  shadow.server = spec.server;
  shadow.desc.protocol = spec.protocol;
  shadow.desc.buffer_size = spec.buffer_size;
  shadow.desc.pattern = spec.pattern;
  dynamic_bindings_.push_back(std::move(shadow));
  pb.binding = &dynamic_bindings_.back();
  plan_.bindings.push_back(pb);
  return plan_.bindings.back();
}

void Application::retire_component_runtime(const std::string& name) {
  PlannedComponent* pc = plan_.find_component(name);
  RTCF_REQUIRE(pc != nullptr, "no live component '" + name + "' to retire");
  auto it = runtimes_.find(name);
  if (it != runtimes_.end()) {
    it->second.removed = true;
    it->second.release_entry = nullptr;
    // The content's client ports must never fire into infrastructure the
    // reload is about to dismantle.
    for (std::size_t i = 0; i < it->second.content->port_count(); ++i) {
      it->second.content->port(i).unbind();
    }
  }
  for (auto& pb : plan_.bindings) {
    if (!pb.retired &&
        (pb.client == pc->component || pb.server == pc->component)) {
      pb.retired = true;
    }
  }
  pc->retired = true;
}

comm::Content* Application::content(const std::string& component) const {
  return runtime_of(component).content;
}

rtsj::RealtimeThread* Application::thread_of(
    const std::string& component) const {
  return runtime_of(component).planned->thread;
}

}  // namespace rtcf::soleil
