#include "soleil/application.hpp"

#include <stdexcept>

#include "comm/spsc_message_buffer.hpp"
#include "runtime/content_registry.hpp"
#include "util/assert.hpp"
#include "validate/area_relation.hpp"
#include "validate/pattern_catalog.hpp"
#include "validate/validator.hpp"

namespace rtcf::soleil {

std::size_t ActivationManager::add_target(rtsj::RealtimeThread* thread,
                                          Work work, std::size_t partition) {
  Target target;
  target.thread = thread;
  target.work = std::move(work);
  target.partition = partition;
  target.credits = std::make_unique<std::atomic<std::uint64_t>>(0);
  targets_.push_back(std::move(target));
  return targets_.size() - 1;
}

void ActivationManager::configure_partitions(std::size_t count) {
  RTCF_REQUIRE(count > 0, "at least one partition");
  partitions_ = count;
  by_partition_.assign(count, {});
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    RTCF_REQUIRE(targets_[i].partition < count,
                 "activation target pinned to a partition out of range");
    by_partition_[targets_[i].partition].push_back(i);
  }
}

void ActivationManager::notify(std::size_t target) {
  RTCF_ASSERT(target < targets_.size());
  if (partitions_ == 1) {
    pending_.push_back(target);
    return;
  }
  // Lock-free cross-worker handoff: the producer's message push
  // happens-before this release increment, and the consuming worker's
  // acquire decrement in pump_partition happens-before its buffer pop.
  targets_[target].credits->fetch_add(1, std::memory_order_release);
}

void ActivationManager::notify_trampoline(void* arg) {
  auto* na = static_cast<NotifyArg*>(arg);
  na->manager->notify(na->target);
}

void ActivationManager::run_target(Target& target) {
  activations_.fetch_add(1, std::memory_order_relaxed);
  if (target.thread != nullptr) {
    target.thread->run_with_context(target.work);
  } else {
    target.work();
  }
}

void ActivationManager::pump() {
  if (partitions_ == 1) {
    while (!pending_.empty()) {
      const std::size_t idx = pending_.front();
      pending_.pop_front();
      run_target(targets_[idx]);
    }
    return;
  }
  // Single-threaded drive of a partitioned assembly (tests, final drain
  // after the workers joined): sweep partitions until a full pass is dry.
  bool moved = true;
  while (moved) {
    moved = false;
    for (std::size_t p = 0; p < partitions_; ++p) {
      moved = pump_partition(p) || moved;
    }
  }
}

bool ActivationManager::pump_partition(std::size_t partition) {
  if (partitions_ == 1) {
    RTCF_ASSERT(partition == 0);
    const std::uint64_t before = activation_count();
    pump();
    return activation_count() != before;
  }
  RTCF_ASSERT(partition < by_partition_.size());
  bool any = false;
  bool moved = true;
  // Keep sweeping this partition's targets until a full pass runs nothing:
  // activations raised *during* the sweep (downstream hops that stayed on
  // this worker) are drained in the same call, preserving the
  // run-to-completion transaction semantics per partition.
  while (moved) {
    moved = false;
    for (const std::size_t idx : by_partition_[partition]) {
      Target& target = targets_[idx];
      while (target.credits->load(std::memory_order_acquire) > 0) {
        target.credits->fetch_sub(1, std::memory_order_acq_rel);
        run_target(target);
        moved = true;
        any = true;
      }
    }
  }
  return any;
}

bool ActivationManager::idle() const noexcept {
  if (!pending_.empty()) return false;
  for (const Target& target : targets_) {
    if (target.credits->load(std::memory_order_acquire) > 0) return false;
  }
  return true;
}

Application::Application(const model::Architecture& arch,
                         std::size_t partitions)
    : env_(std::make_unique<runtime::RuntimeEnvironment>(arch)),
      plan_(make_plan(arch, *env_, partitions)),
      monitor_(std::make_unique<monitor::RuntimeMonitor>()) {
  // Telemetry is part of the assembly, whatever the generation mode: every
  // functional component gets its block inside its own memory area, plus a
  // contract checker and a governor slot when the metamodel declares them.
  for (const PlannedComponent& pc : plan_.components) {
    rtsj::RelativeTime deadline;
    bool release_driven = false;
    if (pc.active != nullptr) {
      deadline = pc.thread->profile().effective_deadline();
      release_driven =
          pc.active->activation() == model::ActivationKind::Periodic;
    }
    monitor_->add_component(pc.component->name().c_str(), *pc.area,
                            pc.criticality, pc.contract, deadline,
                            release_driven);
  }
  count_infra(monitor_->telemetry_bytes());
}

void Application::build_contents() {
  auto& registry = runtime::ContentRegistry::instance();
  for (const PlannedComponent& pc : plan_.components) {
    ComponentRuntime rt;
    rt.planned = &pc;
    if (pc.content_class.empty()) {
      throw PlanningError("component '" + pc.component->name() +
                          "' names no content class");
    }
    rt.content = registry.create(pc.content_class, *pc.area);
    for (const auto& itf : pc.component->interfaces()) {
      if (itf.role == model::InterfaceRole::Client) {
        rt.content->add_port(itf.name);
      }
    }
    runtimes_.emplace(pc.component->name(), std::move(rt));
  }
}

comm::MessageBuffer& Application::make_buffer(rtsj::MemoryArea& area,
                                              std::size_t capacity,
                                              bool concurrent) {
  if (concurrent) {
    buffers_.push_back(
        std::make_unique<comm::SpscMessageBuffer>(area, capacity));
    count_infra(sizeof(comm::SpscMessageBuffer) +
                capacity * sizeof(comm::Message));
  } else {
    buffers_.push_back(std::make_unique<comm::MessageBuffer>(area, capacity));
    count_infra(sizeof(comm::MessageBuffer) +
                capacity * sizeof(comm::Message));
  }
  return *buffers_.back();
}

ActivationManager::Work Application::make_gated_pump(
    comm::MessageBuffer& buffer, comm::IMessageSink& sink,
    monitor::RuntimeMonitor::Entry* mon) {
  comm::MessageBuffer* buf = &buffer;
  comm::IMessageSink* out = &sink;
  return [buf, out, mon] {
    if (auto m = buf->pop()) {
      if (mon != nullptr && !mon->owner->admit_activation(*mon)) return;
      out->deliver(*m);
    }
  };
}

ActivationManager::NotifyArg* Application::make_notify_arg(
    std::size_t target) {
  notify_args_.push_back(std::make_unique<ActivationManager::NotifyArg>(
      ActivationManager::NotifyArg{&manager_, target}));
  count_infra(sizeof(ActivationManager::NotifyArg));
  return notify_args_.back().get();
}

Application::ComponentRuntime& Application::runtime_of(
    const std::string& name) {
  auto it = runtimes_.find(name);
  if (it == runtimes_.end()) {
    throw std::invalid_argument("unknown component '" + name + "'");
  }
  return it->second;
}

const Application::ComponentRuntime& Application::runtime_of(
    const std::string& name) const {
  auto it = runtimes_.find(name);
  if (it == runtimes_.end()) {
    throw std::invalid_argument("unknown component '" + name + "'");
  }
  return it->second;
}

void Application::start() {
  for (auto& [name, rt] : runtimes_) rt.content->on_start();
}

void Application::stop() {
  for (auto& [name, rt] : runtimes_) rt.content->on_stop();
}

void Application::release(const std::string& component) {
  ComponentRuntime& rt = runtime_of(component);
  RTCF_REQUIRE(rt.release_entry != nullptr,
               "component '" + component + "' has no release entry "
               "(passive component?)");
  if (rt.planned->thread != nullptr) {
    rt.planned->thread->run_with_context(rt.release_entry);
  } else {
    rt.release_entry();
  }
}

void Application::iterate(const std::string& component) {
  release(component);
  pump();  // Virtual: ULTRA_MERGE substitutes its static drain schedule.
}

std::function<void()> Application::release_fn(const std::string& component) {
  ComponentRuntime& rt = runtime_of(component);
  RTCF_REQUIRE(rt.release_entry != nullptr,
               "component '" + component + "' has no release entry");
  rtsj::RealtimeThread* thread = rt.planned->thread;
  // Copy the entry so the returned function is self-contained.
  std::function<void()> entry = rt.release_entry;
  if (thread == nullptr) return entry;
  return [thread, entry = std::move(entry)] {
    thread->run_with_context(entry);
  };
}

validate::Report Application::rebind_sync(const std::string& client,
                                          const std::string& port,
                                          const std::string& server) {
  (void)port;
  validate::Report report;
  report.add(validate::Severity::Error, "MODE-STATIC", client + " -> " + server,
             std::string(mode_name()) +
                 " infrastructure is static; rebinding is not available");
  return report;
}

bool Application::set_component_started(const std::string& component,
                                        bool started) {
  (void)component;
  (void)started;
  return false;
}

validate::Report Application::plan_sync_rebind(const std::string& client,
                                               const std::string& port,
                                               const std::string& server,
                                               PlannedBinding* out) {
  validate::Report report;
  const std::string subject = client + "." + port + " -> " + server;
  const PlannedComponent* pc_client = plan_.find_component(client);
  const PlannedComponent* pc_server = plan_.find_component(server);
  if (pc_client == nullptr || pc_server == nullptr) {
    report.add(validate::Severity::Error, "RECONF-ENDPOINTS", subject,
               "unknown component");
    return report;
  }
  comm::Content* client_content = runtime_of(client).content;
  bool port_found = false;
  for (std::size_t i = 0; i < client_content->port_count(); ++i) {
    if (client_content->port(i).name() == port) port_found = true;
  }
  if (!port_found) {
    report.add(validate::Severity::Error, "RECONF-ENDPOINTS", subject,
               "client has no port '" + port + "'");
    return report;
  }

  const model::Architecture& arch = *plan_.arch;
  model::Binding hypothetical;
  hypothetical.client = {client, port};
  hypothetical.server = {server, port};
  hypothetical.desc.protocol = model::Protocol::Synchronous;
  const std::string pattern =
      validate::resolve_binding_pattern(arch, hypothetical);
  if (pattern.empty()) {
    report.add(validate::Severity::Error, "RECONF-NHRT-HEAP", subject,
               "no RTSJ-legal pattern exists for the new binding "
               "(synchronous NHRT client into heap state?)");
    return report;
  }
  report.add(validate::Severity::Info, "RECONF-PATTERN", subject,
             "rebinding with pattern '" + pattern + "'");
  if (out != nullptr) {
    out->client = pc_client->component;
    out->server = pc_server->component;
    out->protocol = model::Protocol::Synchronous;
    out->op = membrane::pattern_op_from_name(pattern);
    out->server_area = pc_server->area;
    switch (out->op) {
      case membrane::PatternOp::Direct:
      case membrane::PatternOp::ScopeEnter:
        out->staging_area = nullptr;
        break;
      case membrane::PatternOp::ImmortalForward:
        out->staging_area = &rtsj::ImmortalMemory::instance();
        break;
      default:
        out->staging_area = pc_server->area;
        break;
    }
  }
  return report;
}

comm::Content* Application::content(const std::string& component) const {
  return runtime_of(component).content;
}

rtsj::RealtimeThread* Application::thread_of(
    const std::string& component) const {
  return runtime_of(component).planned->thread;
}

}  // namespace rtcf::soleil
