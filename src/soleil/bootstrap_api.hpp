// The bootstrap API that generated code programs against (§3.3
// "Initialization Procedures": "the generated code has to be responsible
// also for bootstrapping procedures ... RTSJ itself introduces a high
// level of complexity into the bootstrapping process").
//
// The CodeEmitter emits `gen/Bootstrap.cpp` files whose statements are
// calls on a BootstrapContext. This header provides that interface plus a
// concrete implementation backed by the same substrate the runtime
// assemblies use, so an emitted bootstrap sequence can be executed (and is
// executed, in bootstrap_test.cpp) — closing the loop between the
// generative and the in-memory halves of Soleil.
//
// Ordering contract (enforced): memory areas first (immortal/scopes/heap),
// then thread domains, then threads, then contents, then wiring, then
// start. Violations throw BootstrapError, mirroring the RTSJ boot
// complexity the generated code encapsulates.
#pragma once

#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "comm/content.hpp"
#include "comm/message_buffer.hpp"
#include "membrane/patterns.hpp"
#include "model/metamodel.hpp"
#include "runtime/environment.hpp"

namespace rtcf::soleil {

class BootstrapError : public std::runtime_error {
 public:
  explicit BootstrapError(const std::string& message)
      : std::runtime_error("bootstrap: " + message) {}
};

/// Execution context for a generated bootstrap sequence.
class BootstrapContext {
 public:
  /// The architecture the sequence was generated from; used to resolve
  /// component attributes the emitted calls reference by name.
  explicit BootstrapContext(const model::Architecture& arch);
  ~BootstrapContext();

  BootstrapContext(const BootstrapContext&) = delete;
  BootstrapContext& operator=(const BootstrapContext&) = delete;

  // ---- phase 1: memory areas ---------------------------------------------
  void use_immortal(const std::string& area_component);
  void use_heap(const std::string& area_component);
  void create_scope(const std::string& area_name, std::size_t bytes);

  // ---- phase 2: thread domains and threads --------------------------------
  void create_domain(const std::string& name, const std::string& type,
                     int priority);
  void create_thread(const std::string& component,
                     const std::string& domain);

  // ---- phase 3: contents ---------------------------------------------------
  void create_content(const std::string& component,
                      const std::string& content_class,
                      const std::string& area_component);

  // ---- wiring primitives referenced by membrane constructors --------------
  comm::Content* content(const std::string& component);
  comm::MessageBuffer& make_buffer(const std::string& server_component,
                                   std::size_t capacity);
  membrane::PatternRuntime make_pattern(const std::string& pattern_name,
                                        const std::string& server_component);
  /// Synchronous entry of a bootstrapped component (lifecycle-free direct
  /// adapter; the full SOLEIL chains are built by the membrane classes).
  comm::IInvocable* server_entry(const std::string& component);
  /// Opaque notification argument for AsyncSkeleton construction; the
  /// bootstrap-level default is "no notification" (pull-driven drains).
  void* notify_arg(const std::string& component);

  // ---- phase 4: start ------------------------------------------------------
  void start_all();
  void start_all_via_lifecycle_controllers() { start_all(); }

  // ---- introspection -------------------------------------------------------
  /// Ordered log of every bootstrap operation ("create_scope cscope 28672",
  /// ...), for tests and audit trails.
  const std::vector<std::string>& log() const noexcept { return log_; }
  rtsj::MemoryArea& area(const std::string& area_component);
  rtsj::RealtimeThread& thread(const std::string& component);
  bool started() const noexcept { return started_; }

 private:
  enum class Phase { Areas, Domains, Threads, Contents, Wiring, Started };
  void advance_phase(Phase at_most);
  void record(std::string entry) { log_.push_back(std::move(entry)); }

  struct ContentSlot {
    comm::Content* content = nullptr;
    std::unique_ptr<comm::IInvocable> entry;
  };

  const model::Architecture& arch_;
  runtime::RuntimeEnvironment env_;
  Phase phase_ = Phase::Areas;
  bool started_ = false;
  std::map<std::string, std::string> domains_;  // name -> "type/prio" echo
  std::map<std::string, ContentSlot> contents_;
  std::vector<std::unique_ptr<comm::MessageBuffer>> buffers_;
  std::vector<std::string> log_;
};

}  // namespace rtcf::soleil
