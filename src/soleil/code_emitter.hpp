// Soleil's source emitter: the generative-programming half of §4.3.
//
// The paper's toolchain (Juliac backend + Spoon transformations) generates
// Java source for the execution infrastructure — membrane classes, glue
// and bootstrap — at three optimization levels. This emitter reproduces
// that step for C++: given a validated architecture it renders the source
// of the infrastructure that the runtime assemblies in assemblies.cpp
// build in memory. The *structure* of the output is the point:
//
//   SOLEIL       one membrane class per component (functional and
//                non-functional) + a bootstrap translation unit;
//   MERGE_ALL    one merged class per *functional* component (membrane
//                logic inlined) + bootstrap;
//   ULTRA_MERGE  a single translation unit holding the whole static
//                application.
//
// Generated and hand-written code stay in clearly separated entities
// (§5.2's code-generation requirements): user content classes are only
// *referenced*, never re-emitted.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "model/metamodel.hpp"
#include "soleil/plan.hpp"

namespace rtcf::soleil {

/// One emitted source file.
struct GeneratedFile {
  std::string path;      ///< Relative path, e.g. "gen/MonitoringSystemMembrane.hpp".
  std::string contents;  ///< Complete file text.

  std::size_t line_count() const;
};

/// The complete output of one emission run.
struct GeneratedCode {
  Mode mode = Mode::Soleil;
  std::vector<GeneratedFile> files;

  const GeneratedFile* find(const std::string& path) const;
  /// Total lines across all files (the paper's "code compactness" axis).
  std::size_t total_lines() const;
  /// Total bytes across all files.
  std::size_t total_bytes() const;
};

/// Emits the execution infrastructure source for `arch` in `mode`.
/// Deterministic: equal inputs produce byte-identical output.
GeneratedCode emit_infrastructure(const model::Architecture& arch, Mode mode);

}  // namespace rtcf::soleil
