// The hand-written object-oriented baseline of §5.1 ("denoted as OO, is the
// manually developed object-oriented application").
//
// Deliberately framework-free: plain classes holding direct pointers to
// each other, plain preallocated ring buffers for the asynchronous hops,
// and a hand-rolled drain loop. It performs byte-for-byte the same
// functional work as the framework variants (same Message type, same
// payloads, same threshold logic), so any timing difference against
// SOLEIL / MERGE_ALL / ULTRA_MERGE is pure infrastructure overhead — the
// Fig. 7 comparison.
#pragma once

#include <cstdint>

#include "comm/message.hpp"
#include "scenario/production_scenario.hpp"
#include "util/ring_buffer.hpp"

namespace rtcf::baseline {

class OoConsole {
 public:
  comm::Message report(const comm::Message& request);
  std::uint64_t reports() const noexcept { return reports_; }
  double checksum() const noexcept { return checksum_; }

 private:
  std::uint64_t reports_ = 0;
  double checksum_ = 0.0;
};

class OoAuditLog {
 public:
  void consume(const comm::Message& message);
  std::uint64_t records() const noexcept { return records_; }
  double checksum() const noexcept { return checksum_; }

 private:
  std::uint64_t records_ = 0;
  double checksum_ = 0.0;
};

class OoMonitoringSystem {
 public:
  OoMonitoringSystem(OoConsole& console,
                     util::RingBuffer<comm::Message>& audit_buffer)
      : console_(&console), audit_buffer_(&audit_buffer) {}

  void on_measurement(const comm::Message& message);
  std::uint64_t processed() const noexcept { return processed_; }
  std::uint64_t anomalies() const noexcept { return anomalies_; }

 private:
  OoConsole* console_;
  util::RingBuffer<comm::Message>* audit_buffer_;
  std::uint64_t processed_ = 0;
  std::uint64_t anomalies_ = 0;
};

class OoProductionLine {
 public:
  explicit OoProductionLine(util::RingBuffer<comm::Message>& monitor_buffer)
      : monitor_buffer_(&monitor_buffer) {}

  void release();
  std::uint64_t produced() const noexcept { return seq_; }

 private:
  util::RingBuffer<comm::Message>* monitor_buffer_;
  std::uint64_t seq_ = 0;
};

/// The wired baseline application.
class OoApplication {
 public:
  OoApplication();

  /// One complete transaction, identical in work to
  /// Application::iterate("ProductionLine").
  void iterate();

  scenario::ScenarioCounters counters() const;

  /// Bytes of infrastructure the hand-written variant needs (the two ring
  /// buffers plus the component objects) — the OO bar of Fig. 7c.
  std::size_t infrastructure_bytes() const noexcept;

 private:
  void drain();

  util::RingBuffer<comm::Message> monitor_buffer_{10};
  util::RingBuffer<comm::Message> audit_buffer_{10};
  OoConsole console_;
  OoAuditLog audit_;
  OoMonitoringSystem monitoring_{console_, audit_buffer_};
  OoProductionLine production_{monitor_buffer_};
};

}  // namespace rtcf::baseline
