#include "baseline/oo_production_line.hpp"

namespace rtcf::baseline {

using comm::Message;
using namespace scenario;

Message OoConsole::report(const Message& request) {
  const auto alarm = request.load<Alarm>();
  ++reports_;
  checksum_ += alarm.value;
  Message ack;
  ack.type_id = kAckType;
  ack.sequence = request.sequence;
  return ack;
}

void OoAuditLog::consume(const Message& message) {
  const auto record = message.load<AuditRecord>();
  ++records_;
  checksum_ += record.value;
}

void OoMonitoringSystem::on_measurement(const Message& message) {
  const auto m = message.load<Measurement>();
  ++processed_;
  const bool anomaly = m.value > kAnomalyThreshold;
  if (anomaly) {
    ++anomalies_;
    Alarm alarm{m.value, m.seq};
    Message request;
    request.type_id = kAlarmType;
    request.sequence = m.seq;
    request.store(alarm);
    (void)console_->report(request);
  }
  AuditRecord record{m.value, m.seq, anomaly};
  Message audit;
  audit.type_id = kAuditType;
  audit.sequence = m.seq;
  audit.store(record);
  audit_buffer_->push(audit);
}

void OoProductionLine::release() {
  Measurement m;
  m.seq = seq_;
  m.value = measurement_value(seq_);
  ++seq_;
  Message msg;
  msg.type_id = kMeasurementType;
  msg.sequence = m.seq;
  msg.store(m);
  monitor_buffer_->push(msg);
}

OoApplication::OoApplication() = default;

void OoApplication::drain() {
  while (auto msg = monitor_buffer_.pop()) {
    monitoring_.on_measurement(*msg);
  }
  while (auto msg = audit_buffer_.pop()) {
    audit_.consume(*msg);
  }
}

void OoApplication::iterate() {
  production_.release();
  drain();
}

scenario::ScenarioCounters OoApplication::counters() const {
  ScenarioCounters c;
  c.produced = production_.produced();
  c.processed = monitoring_.processed();
  c.anomalies = monitoring_.anomalies();
  c.console_reports = console_.reports();
  c.audit_records = audit_.records();
  c.console_checksum = console_.checksum();
  c.audit_checksum = audit_.checksum();
  return c;
}

std::size_t OoApplication::infrastructure_bytes() const noexcept {
  // The hand-written variant still needs its two bounded buffers (slots +
  // bookkeeping); the component objects carry only functional state.
  return sizeof(monitor_buffer_) + sizeof(audit_buffer_) +
         2 * 10 * sizeof(Message);
}

}  // namespace rtcf::baseline
