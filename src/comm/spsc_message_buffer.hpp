// Lock-free single-producer/single-consumer variant of MessageBuffer.
//
// Carries cross-worker asynchronous bindings in the partitioned executive:
// the client component's worker pushes, the server component's worker pops,
// and neither ever blocks or allocates. Head and tail are free-running
// atomic counters (index = counter % capacity), so `size()` is exact from
// either side's perspective and full/empty need no sacrificial slot.
//
// Storage is still carved from the binding's RTSJ memory area at assembly
// time, and overflow still sheds the newest message and counts the drop —
// identical observable semantics to the single-threaded base, minus FIFO
// interleaving guarantees *across* buffers.
#pragma once

#include <atomic>

#include "comm/message_buffer.hpp"

namespace rtcf::comm {

/// Wait-free SPSC message ring with storage in a memory area.
///
/// Exactly one thread may push and exactly one thread may pop at any time
/// (they may be the same thread). Counters are safe to read from anywhere.
class SpscMessageBuffer final : public MessageBuffer {
 public:
  SpscMessageBuffer(rtsj::MemoryArea& area, std::size_t capacity)
      : MessageBuffer(area, capacity) {}

  bool push(const Message& message) noexcept override {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) == capacity_) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    slots_[tail % capacity_] = message;
    tail_.store(tail + 1, std::memory_order_release);
    enqueued_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  std::optional<Message> pop() noexcept override {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return std::nullopt;
    Message out = slots_[head % capacity_];
    head_.store(head + 1, std::memory_order_release);
    return out;
  }

  void clear() noexcept override {
    // Drain through the consumer side so the producer's view stays
    // coherent; only legal when callers are quiesced, like the base.
    while (pop().has_value()) {
    }
  }

  std::size_t size() const noexcept override {
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(tail - head);
  }

  std::uint64_t enqueued_total() const noexcept override {
    return enqueued_.load(std::memory_order_relaxed);
  }
  std::uint64_t dropped_total() const noexcept override {
    return dropped_.load(std::memory_order_relaxed);
  }

  bool concurrent() const noexcept override { return true; }

 private:
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> tail_{0};
  std::atomic<std::uint64_t> enqueued_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace rtcf::comm
