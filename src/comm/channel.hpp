// Length-prefixed control channels: the byte-stream transport under the
// distributed reconfiguration protocol (src/dist).
//
// A channel moves *frames* — small typed byte payloads — between exactly
// two endpoints, in order, reliably. Two transports implement the same
// interface:
//
//   * LoopbackChannel  — an in-process pair of bounded-latency queues, for
//                        tests and single-process multi-node examples;
//   * TcpChannel       — a real socket with the wire framing documented in
//                        docs/PROTOCOL.md (u32 little-endian length prefix,
//                        u16 protocol version, u16 frame type, payload).
//
// Channels are deliberately dumb: no topics, no fan-out, no retransmission
// policy. Everything protocol-shaped (transactions, prepare/commit,
// serialized plans) lives above, in src/dist, so a second implementation
// only has to reproduce the framing here and the payload encodings in
// docs/PROTOCOL.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "rtsj/time/time.hpp"

namespace rtcf::comm {

/// Protocol version stamped into every frame header. Receivers reject
/// frames from a different major version (kWireVersion is the only
/// version so far).
inline constexpr std::uint16_t kWireVersion = 1;

/// One typed message on a control channel. The payload encoding depends on
/// the type and is specified in docs/PROTOCOL.md; the channel layer treats
/// it as opaque bytes.
struct Frame {
  /// Frame type discriminator (see dist::FrameType for the reconfiguration
  /// protocol's assignments).
  std::uint16_t type = 0;
  /// Opaque payload bytes (encoding per type).
  std::vector<std::uint8_t> payload;
};

/// A non-owning view of contiguous payload bytes: one piece of a
/// scatter-gather send. The bytes must stay valid until the send returns.
struct ByteSpan {
  const std::uint8_t* data = nullptr;  ///< First byte.
  std::size_t size = 0;                ///< Byte count.
};

/// A frame payload view: type plus payload span, the zero-copy analogue of
/// Frame for callers that already hold the encoded bytes.
struct FrameView {
  std::uint16_t type = 0;  ///< Frame type discriminator.
  ByteSpan payload;        ///< Encoded payload bytes (not owned).
};

/// Transport memory handed out by Channel::reserve_frame: the caller
/// encodes a frame payload directly at `data` and then commits. When
/// `in_place` is true, `data` points into the transport's own memory (a
/// shm ring) and committing publishes with zero further copies; when
/// false, the transport lent a bounce buffer and commit performs the one
/// unavoidable copy (a wrapped ring reservation).
struct FrameReservation {
  std::uint8_t* data = nullptr;  ///< Where the payload must be encoded.
  std::size_t size = 0;          ///< Reserved payload capacity.
  bool in_place = false;         ///< True: data is transport memory.
};

/// A reliable, ordered, bidirectional frame channel between two endpoints.
class Channel {
 public:
  /// Closes nothing by itself; concrete transports close in their own
  /// destructors.
  virtual ~Channel() = default;

  /// Sends one frame. Returns false when the channel is closed or the
  /// peer is unreachable; blocking behaviour is transport-specific (the
  /// loopback never blocks, TCP may block on a full socket buffer).
  virtual bool send(const Frame& frame) = 0;

  /// Move-enabled send: transports that queue frames (the loopback) steal
  /// the payload instead of deep-copying it. The default forwards to the
  /// copying overload, so transports that serialize to a wire lose
  /// nothing by not overriding.
  virtual bool send(Frame&& frame) {
    return send(static_cast<const Frame&>(frame));
  }

  /// Scatter-gather send: one frame whose payload is the concatenation of
  /// `count` spans, byte-identical on the wire to send() with the
  /// assembled payload. The default assembles a Frame; TcpChannel
  /// overrides with writev so the payload bytes go from the caller's
  /// buffer to the socket with no intermediate copy.
  virtual bool send_spans(std::uint16_t type, const ByteSpan* spans,
                          std::size_t count);

  /// Reserves transport memory for one frame of `payload_size` bytes so
  /// the caller can encode directly into it (shm ring: the frame is built
  /// in the ring). Returns false when the transport does not support
  /// reservations or is closed — the caller falls back to send_spans with
  /// its own buffer. A successful reservation MUST be resolved with
  /// commit_frame or abort_frame before any other send on this channel;
  /// channels have a single writer (docs/DATAPLANE.md §7) so no further
  /// locking is implied.
  virtual bool reserve_frame(std::uint16_t type, std::size_t payload_size,
                             FrameReservation& out);

  /// Publishes the reserved frame with its first `used` payload bytes
  /// (used <= reserved size). Returns false when the channel closed
  /// between reserve and commit.
  virtual bool commit_frame(std::size_t used);

  /// Releases the current reservation without publishing anything.
  virtual void abort_frame();

  /// Receives the next frame, waiting up to `timeout` (zero = poll without
  /// waiting). Returns false on timeout or when the channel is closed and
  /// drained.
  virtual bool receive(Frame& frame, rtsj::RelativeTime timeout) = 0;

  /// Closes the channel; pending receives on either side unblock.
  virtual void close() = 0;

  /// True until close() is called on either endpoint.
  virtual bool open() const = 0;
};

/// In-process transport: a pair of endpoints sharing two frame queues.
class LoopbackChannel final : public Channel {
 public:
  /// Creates a connected pair; frames sent on one endpoint are received on
  /// the other, in order.
  static std::pair<std::shared_ptr<LoopbackChannel>,
                   std::shared_ptr<LoopbackChannel>>
  make_pair();

  using Channel::send;
  bool send(const Frame& frame) override;
  /// Moves the payload into the queue — no deep copy for callers done
  /// with the frame (the control plane's make_*() temporaries).
  bool send(Frame&& frame) override;
  bool receive(Frame& frame, rtsj::RelativeTime timeout) override;
  void close() override;
  bool open() const override;

 private:
  struct Shared;
  explicit LoopbackChannel(std::shared_ptr<Shared> shared, bool side);

  std::shared_ptr<Shared> shared_;
  /// Which of the two directional queues this endpoint sends into.
  bool side_ = false;
};

/// TCP transport with the docs/PROTOCOL.md framing. Connection setup is
/// synchronous and out of band (the distributed protocol assumes the
/// operator wires the cluster before coordinating transitions).
class TcpChannel final : public Channel {
 public:
  /// Listens on `port` (0 picks an ephemeral port, readable via
  /// bound_port()) and accepts exactly one peer on the first receive/
  /// accept_one() call.
  static std::unique_ptr<TcpChannel> listen(std::uint16_t port);
  /// Connects to a listening endpoint. Returns nullptr on failure.
  static std::unique_ptr<TcpChannel> connect(const std::string& host,
                                             std::uint16_t port);

  /// Closes the socket (and the listening socket, if any).
  ~TcpChannel() override;

  /// The locally bound port (listening endpoints; 0 otherwise).
  std::uint16_t bound_port() const noexcept { return bound_port_; }
  /// Blocks until a peer connects (listening endpoints). Returns false on
  /// failure or when already connected.
  bool accept_one();

  using Channel::send;
  bool send(const Frame& frame) override;
  /// Gathers the 8-byte frame header and the payload spans into one
  /// writev so nothing is re-staged in user space before the socket.
  bool send_spans(std::uint16_t type, const ByteSpan* spans,
                  std::size_t count) override;
  bool receive(Frame& frame, rtsj::RelativeTime timeout) override;
  /// Thread-safe shutdown: marks the channel closed and shuts the socket
  /// down so a blocked receiver unblocks, but defers the actual ::close
  /// to the destructor — the fd number must not be recycled while
  /// another thread may still be inside poll()/recv() on it.
  void close() override;
  bool open() const override;

 private:
  TcpChannel() = default;

  bool ensure_peer();
  bool read_exact(std::uint8_t* data, std::size_t size,
                  rtsj::RelativeTime timeout);

  int listen_fd_ = -1;
  int fd_ = -1;
  std::uint16_t bound_port_ = 0;
  /// Set by close() (possibly from another thread); polled by the
  /// receive loops.
  std::atomic<bool> closed_{false};
  std::mutex send_mutex_;
};

}  // namespace rtcf::comm
