// Shared-memory ring transport: the co-located fast path of the data
// plane (docs/DATAPLANE.md §5).
//
// A ShmRingChannel is a comm::Channel over one POSIX shared-memory region
// holding two SPSC byte rings, one per direction. Records reuse the TCP
// framing byte-for-byte (u32 length, u16 framing version, u16 frame type,
// payload), so the layer above cannot tell the transports apart — but a
// frame crosses the "wire" as two memcpys and two atomic stores, no
// syscalls on the hot path.
//
// Roles are asymmetric only at setup: create() makes and truncates the
// region (and unlinks it on destruction), attach() maps an existing one
// and validates its magic/layout. Each endpoint writes exactly one ring
// and reads the other, which is what keeps the rings single-producer/
// single-consumer without locks. A reader that finds an implausible
// record header (torn size, bad framing version) closes the channel —
// the stream position is unrecoverable, exactly like the TCP transport's
// framing-violation rule.
//
// Peers negotiate the region name at HELLO time (dist::HelloInfo's
// shm_token); the region layout is normative in docs/DATAPLANE.md so a
// second implementation can map it.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "comm/channel.hpp"

namespace rtcf::comm {

/// A comm::Channel over a shared-memory region with two SPSC byte rings.
class ShmRingChannel final : public Channel {
 public:
  /// Fixed region-header size; ring 0's data starts at this offset and
  /// ring 1's at kHeaderBytes + capacity (layout: docs/DATAPLANE.md §5).
  static constexpr std::size_t kHeaderBytes = 64;
  /// Region magic ("RTCFsmr1" little-endian) at offset 0.
  static constexpr std::uint64_t kMagic = 0x31726d7366435452ull;
  /// Region layout version at offset 8; attach() rejects others.
  static constexpr std::uint32_t kLayoutVersion = 1;

  /// Creates the region under `name` (a shm_open name, "/rtcf...."),
  /// with `capacity` data bytes per direction, and returns the creator
  /// endpoint. `send_stall` bounds how long a send spins on a full ring
  /// before failing (and closing). Returns nullptr when the region cannot
  /// be created (exists already, no /dev/shm, ...).
  static std::unique_ptr<ShmRingChannel> create(
      const std::string& name, std::size_t capacity,
      rtsj::RelativeTime send_stall = rtsj::RelativeTime::milliseconds(2000));
  /// Maps an existing region and returns the attacher endpoint. Returns
  /// nullptr when the region does not exist (yet) or fails validation —
  /// callers retry while the creator races them (HELLO negotiation).
  static std::unique_ptr<ShmRingChannel> attach(
      const std::string& name,
      rtsj::RelativeTime send_stall = rtsj::RelativeTime::milliseconds(2000));

  /// Unmaps; the creator endpoint also unlinks the region name.
  ~ShmRingChannel() override;

  /// Sends one frame: spins (yielding) while the ring lacks space, up to
  /// the send-stall bound, then fails and closes. Returns false when the
  /// frame can never fit or the channel is closed.
  bool send(const Frame& frame) override;
  /// Reserves ring space for one frame so the caller encodes the payload
  /// *in the ring* (zero further copies when the reservation does not
  /// wrap; a wrapping reservation hands out a bounce buffer that commit
  /// copies in, still one copy total). Waits for space like send().
  bool reserve_frame(std::uint16_t type, std::size_t payload_size,
                     FrameReservation& out) override;
  /// Writes the record header and publishes the reserved frame's first
  /// `used` payload bytes.
  bool commit_frame(std::size_t used) override;
  /// Drops the reservation; the ring's published position is untouched.
  void abort_frame() override;
  /// Receives the next frame, waiting up to `timeout` (zero = one poll).
  /// A torn or implausible record header closes the channel.
  bool receive(Frame& frame, rtsj::RelativeTime timeout) override;
  /// Marks the region closed; both endpoints observe it.
  void close() override;
  /// True until either endpoint closes.
  bool open() const override;

  /// The region's shm_open name.
  const std::string& name() const noexcept { return name_; }
  /// Data bytes per direction.
  std::size_t capacity() const noexcept;

 private:
  ShmRingChannel() = default;

  /// Waits (yielding) until the send ring has `total` free bytes; returns
  /// the head position to write at, or false on close/stall.
  bool wait_for_space(std::size_t total, std::uint64_t& head);

  std::string name_;
  void* region_ = nullptr;
  std::size_t mapped_bytes_ = 0;
  bool creator_ = false;
  rtsj::RelativeTime send_stall_{};

  // In-flight reservation (single writer per channel; no locking).
  bool pending_active_ = false;
  bool pending_in_place_ = false;
  std::uint64_t pending_head_ = 0;
  std::uint16_t pending_type_ = 0;
  /// Bounce buffer for reservations that would wrap the ring edge; keeps
  /// its capacity across frames so the fallback does not allocate either.
  std::vector<std::uint8_t> scratch_;
};

}  // namespace rtcf::comm
