#include "comm/message_buffer.hpp"

#include "util/assert.hpp"

namespace rtcf::comm {

MessageBuffer::MessageBuffer(rtsj::MemoryArea& area, std::size_t capacity)
    : area_(area), capacity_(capacity) {
  RTCF_REQUIRE(capacity > 0, "message buffer capacity must be positive");
  void* storage = area.allocate(sizeof(Message) * capacity, alignof(Message));
  slots_ = new (storage) Message[capacity];
}

bool MessageBuffer::push(const Message& message) noexcept {
  if (full()) {
    ++dropped_;
    return false;
  }
  slots_[tail_] = message;
  tail_ = (tail_ + 1 == capacity_) ? 0 : tail_ + 1;
  ++size_;
  ++enqueued_;
  return true;
}

std::optional<Message> MessageBuffer::pop() noexcept {
  if (empty()) return std::nullopt;
  Message out = slots_[head_];
  head_ = (head_ + 1 == capacity_) ? 0 : head_ + 1;
  --size_;
  return out;
}

void MessageBuffer::clear() noexcept {
  head_ = tail_ = 0;
  size_ = 0;
}

}  // namespace rtcf::comm
