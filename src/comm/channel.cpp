#include "comm/channel.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstring>

namespace rtcf::comm {

// ---- Channel defaults ------------------------------------------------------

bool Channel::send_spans(std::uint16_t type, const ByteSpan* spans,
                         std::size_t count) {
  Frame frame;
  frame.type = type;
  std::size_t total = 0;
  for (std::size_t i = 0; i < count; ++i) total += spans[i].size;
  frame.payload.reserve(total);
  for (std::size_t i = 0; i < count; ++i) {
    frame.payload.insert(frame.payload.end(), spans[i].data,
                         spans[i].data + spans[i].size);
  }
  return send(std::move(frame));
}

bool Channel::reserve_frame(std::uint16_t /*type*/,
                            std::size_t /*payload_size*/,
                            FrameReservation& /*out*/) {
  return false;  // transport has no caller-addressable memory
}

bool Channel::commit_frame(std::size_t /*used*/) { return false; }

void Channel::abort_frame() {}

// ---- LoopbackChannel -------------------------------------------------------

struct LoopbackChannel::Shared {
  std::mutex mutex;
  std::condition_variable cv;
  /// queues[0]: frames travelling side false -> side true; queues[1] the
  /// reverse direction.
  std::deque<Frame> queues[2];
  bool closed = false;
};

LoopbackChannel::LoopbackChannel(std::shared_ptr<Shared> shared, bool side)
    : shared_(std::move(shared)), side_(side) {}

std::pair<std::shared_ptr<LoopbackChannel>, std::shared_ptr<LoopbackChannel>>
LoopbackChannel::make_pair() {
  auto shared = std::make_shared<Shared>();
  // make_shared cannot reach the private constructor; the channel is tiny,
  // so the extra allocation is irrelevant (control plane only).
  return {std::shared_ptr<LoopbackChannel>(
              new LoopbackChannel(shared, false)),
          std::shared_ptr<LoopbackChannel>(new LoopbackChannel(shared, true))};
}

bool LoopbackChannel::send(const Frame& frame) {
  const std::lock_guard<std::mutex> lock(shared_->mutex);
  if (shared_->closed) return false;
  shared_->queues[side_ ? 1 : 0].push_back(frame);
  shared_->cv.notify_all();
  return true;
}

bool LoopbackChannel::send(Frame&& frame) {
  const std::lock_guard<std::mutex> lock(shared_->mutex);
  if (shared_->closed) return false;
  shared_->queues[side_ ? 1 : 0].push_back(std::move(frame));
  shared_->cv.notify_all();
  return true;
}

bool LoopbackChannel::receive(Frame& frame, rtsj::RelativeTime timeout) {
  std::unique_lock<std::mutex> lock(shared_->mutex);
  auto& queue = shared_->queues[side_ ? 0 : 1];
  if (queue.empty() && !shared_->closed && timeout.nanos() > 0) {
    shared_->cv.wait_for(lock, std::chrono::nanoseconds(timeout.nanos()),
                         [&] { return !queue.empty() || shared_->closed; });
  }
  if (queue.empty()) return false;
  frame = std::move(queue.front());
  queue.pop_front();
  return true;
}

void LoopbackChannel::close() {
  const std::lock_guard<std::mutex> lock(shared_->mutex);
  shared_->closed = true;
  shared_->cv.notify_all();
}

bool LoopbackChannel::open() const {
  const std::lock_guard<std::mutex> lock(shared_->mutex);
  return !shared_->closed;
}

// ---- TcpChannel ------------------------------------------------------------

namespace {

void store_u32(std::uint8_t* out, std::uint32_t v) {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
  out[2] = static_cast<std::uint8_t>(v >> 16);
  out[3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint32_t load_u32(const std::uint8_t* in) {
  return static_cast<std::uint32_t>(in[0]) |
         static_cast<std::uint32_t>(in[1]) << 8 |
         static_cast<std::uint32_t>(in[2]) << 16 |
         static_cast<std::uint32_t>(in[3]) << 24;
}

void store_u16(std::uint8_t* out, std::uint16_t v) {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
}

std::uint16_t load_u16(const std::uint8_t* in) {
  return static_cast<std::uint16_t>(
      static_cast<std::uint16_t>(in[0]) |
      static_cast<std::uint16_t>(static_cast<std::uint16_t>(in[1]) << 8));
}

/// Upper bound on one frame, against corrupt/hostile length prefixes.
constexpr std::uint32_t kMaxFrameBytes = 64u * 1024u * 1024u;

}  // namespace

std::unique_ptr<TcpChannel> TcpChannel::listen(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return nullptr;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 1) != 0) {
    ::close(fd);
    return nullptr;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return nullptr;
  }
  auto channel = std::unique_ptr<TcpChannel>(new TcpChannel());
  channel->listen_fd_ = fd;
  channel->bound_port_ = ntohs(addr.sin_port);
  return channel;
}

std::unique_ptr<TcpChannel> TcpChannel::connect(const std::string& host,
                                                std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return nullptr;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return nullptr;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  auto channel = std::unique_ptr<TcpChannel>(new TcpChannel());
  channel->fd_ = fd;
  return channel;
}

TcpChannel::~TcpChannel() {
  close();
  // The destructor is the only place the fd numbers are released: by the
  // time it runs no other thread may touch this channel, so the kernel
  // recycling the numbers is safe here (and only here).
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

bool TcpChannel::accept_one() {
  if (fd_ >= 0) return true;
  if (listen_fd_ < 0 || closed_) return false;
  const int fd = ::accept(listen_fd_, nullptr, nullptr);
  if (fd < 0) return false;
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  return true;
}

bool TcpChannel::ensure_peer() {
  if (fd_ >= 0) return true;
  return accept_one();
}

bool TcpChannel::send(const Frame& frame) {
  const std::lock_guard<std::mutex> lock(send_mutex_);
  if (closed_ || !ensure_peer()) return false;
  // Wire layout (docs/PROTOCOL.md): u32 length of everything after the
  // prefix, then u16 wire version, u16 frame type, payload bytes.
  std::vector<std::uint8_t> buffer(8 + frame.payload.size());
  store_u32(buffer.data(),
            static_cast<std::uint32_t>(4 + frame.payload.size()));
  store_u16(buffer.data() + 4, kWireVersion);
  store_u16(buffer.data() + 6, frame.type);
  if (!frame.payload.empty()) {
    std::memcpy(buffer.data() + 8, frame.payload.data(),
                frame.payload.size());
  }
  std::size_t sent = 0;
  while (sent < buffer.size()) {
    const ssize_t n =
        ::send(fd_, buffer.data() + sent, buffer.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool TcpChannel::send_spans(std::uint16_t type, const ByteSpan* spans,
                            std::size_t count) {
  const std::lock_guard<std::mutex> lock(send_mutex_);
  if (closed_ || !ensure_peer()) return false;
  std::size_t payload_size = 0;
  for (std::size_t i = 0; i < count; ++i) payload_size += spans[i].size;
  // Same wire layout as send(): the header is the only byte staging this
  // path does; payload spans go to the socket from where they already are.
  std::uint8_t header[8];
  store_u32(header, static_cast<std::uint32_t>(4 + payload_size));
  store_u16(header + 4, kWireVersion);
  store_u16(header + 6, type);
  constexpr std::size_t kMaxIov = 16;
  iovec iov[kMaxIov];
  std::size_t iov_count = 0;
  iov[iov_count++] = {header, sizeof(header)};
  for (std::size_t i = 0; i < count; ++i) {
    if (spans[i].size == 0) continue;
    if (iov_count == kMaxIov) return false;  // caller exceeded the contract
    iov[iov_count++] = {const_cast<std::uint8_t*>(spans[i].data),
                        spans[i].size};
  }
  // Partial writes restart the vector at the first unfinished iovec with
  // an adjusted base, exactly like the byte loop in send(). sendmsg
  // rather than writev so MSG_NOSIGNAL still suppresses SIGPIPE.
  std::size_t at = 0;
  while (at < iov_count) {
    msghdr msg{};
    msg.msg_iov = iov + at;
    msg.msg_iovlen = iov_count - at;
    const ssize_t n = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
    if (n <= 0) return false;
    std::size_t done = static_cast<std::size_t>(n);
    while (at < iov_count && done >= iov[at].iov_len) {
      done -= iov[at].iov_len;
      ++at;
    }
    if (at < iov_count && done > 0) {
      iov[at].iov_base = static_cast<std::uint8_t*>(iov[at].iov_base) + done;
      iov[at].iov_len -= done;
    }
  }
  return true;
}

bool TcpChannel::read_exact(std::uint8_t* data, std::size_t size,
                            rtsj::RelativeTime timeout) {
  std::size_t got = 0;
  auto& clock = rtsj::SteadyClock::instance();
  const auto deadline = clock.now() + timeout;
  // Once a frame is underway the peer has committed to finishing it, so
  // mid-frame reads get a grace period beyond the caller's timeout — but
  // a *bounded* one: a stalled peer must not wedge the receiver forever
  // (the channel is closed below; a half-frame is unrecoverable anyway).
  const auto stall_deadline =
      deadline + rtsj::RelativeTime::milliseconds(2000);
  while (got < size) {
    if (closed_) return false;
    const auto now = clock.now();
    if (got > 0 && now >= stall_deadline) {
      close();  // stream desynchronized mid-frame: unrecoverable
      return false;
    }
    pollfd pfd{fd_, POLLIN, 0};
    const auto remaining = (got > 0 ? stall_deadline : deadline) - now;
    const int wait_ms = static_cast<int>(std::min<std::int64_t>(
        std::max<std::int64_t>(remaining.nanos(), 0) / 1000000, 100));
    const int ready = ::poll(&pfd, 1, wait_ms);
    if (ready < 0) return false;
    if (ready == 0) {
      if (got == 0 && clock.now() >= deadline) {
        return false;  // clean timeout between frames
      }
      continue;  // re-check closed_/deadlines, keep waiting
    }
    const ssize_t n = ::recv(fd_, data + got, size - got, 0);
    if (n <= 0) return false;  // peer closed or error
    got += static_cast<std::size_t>(n);
  }
  return true;
}

bool TcpChannel::receive(Frame& frame, rtsj::RelativeTime timeout) {
  if (closed_) return false;
  if (fd_ < 0) {
    // Listening endpoint with no peer yet: wait for the connection only
    // as long as the caller's timeout allows — receive() must never
    // out-wait its contract (a serve loop polling with timeout 0 would
    // otherwise block in accept() forever and become unjoinable).
    if (listen_fd_ < 0) return false;
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int wait_ms = static_cast<int>(
        std::max<std::int64_t>(timeout.nanos(), 0) / 1000000);
    if (::poll(&pfd, 1, wait_ms) <= 0) return false;
    if (!accept_one()) return false;
  }
  std::uint8_t header[8];
  if (!read_exact(header, 4, timeout)) return false;
  const std::uint32_t length = load_u32(header);
  if (length < 4 || length > kMaxFrameBytes) {
    // Framing violation: the stream position is lost for good (the next
    // read would interpret payload bytes as a header). Close rather than
    // hand back garbage frames forever.
    close();
    return false;
  }
  if (!read_exact(header + 4, 4, rtsj::RelativeTime::milliseconds(1000))) {
    return false;
  }
  if (load_u16(header + 4) != kWireVersion) {
    close();  // same: version mismatch mid-stream is unrecoverable
    return false;
  }
  frame.type = load_u16(header + 6);
  // Read the payload straight into the caller's frame: a caller that
  // recycles its Frame (the serve loops do) reuses the vector's capacity
  // and the steady-state receive path stops allocating.
  frame.payload.resize(length - 4);
  if (!frame.payload.empty() &&
      !read_exact(frame.payload.data(), frame.payload.size(),
                  rtsj::RelativeTime::milliseconds(1000))) {
    return false;
  }
  return true;
}

void TcpChannel::close() {
  closed_.store(true, std::memory_order_release);
  // Shutdown unblocks a receiver inside recv() (it returns 0) without
  // releasing the fd number; the receive loops observe closed_ on their
  // next poll tick. Listening sockets cannot be shut down — the
  // bounded-poll receive path re-checks closed_ instead.
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

bool TcpChannel::open() const {
  return !closed_.load(std::memory_order_acquire);
}

}  // namespace rtcf::comm
