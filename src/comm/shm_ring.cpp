#include "comm/shm_ring.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstring>
#include <new>
#include <thread>

namespace rtcf::comm {

namespace {

/// One direction's positions: monotonic byte counters, so `head - tail`
/// is the unread byte count and wrap is a plain modulo on access.
struct Ring {
  std::atomic<std::uint64_t> head;  ///< Bytes published by the writer.
  std::atomic<std::uint64_t> tail;  ///< Bytes consumed by the reader.
};

/// The region header (offsets are normative; docs/DATAPLANE.md §5).
struct Region {
  std::atomic<std::uint64_t> magic;  // offset 0
  std::uint32_t layout_version;     // offset 8
  std::uint32_t capacity;           // offset 12
  std::atomic<std::uint32_t> closed;  // offset 16
  std::uint32_t reserved;           // offset 20
  Ring rings[2];                    // offset 24: [0] creator->attacher,
                                    // offset 40: [1] attacher->creator
  std::uint64_t pad;                // offset 56; data begins at 64
};

static_assert(sizeof(Region) == ShmRingChannel::kHeaderBytes,
              "region header layout is normative");
static_assert(offsetof(Region, closed) == 16, "closed flag at offset 16");
static_assert(offsetof(Region, rings) == 24, "ring block at offset 24");
static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "shared-memory ring positions must be lock-free");

/// Record header: identical bytes to the TCP framing.
constexpr std::size_t kRecordHeader = 8;

void store_u32(std::uint8_t* out, std::uint32_t v) {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
  out[2] = static_cast<std::uint8_t>(v >> 16);
  out[3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint32_t load_u32(const std::uint8_t* in) {
  return static_cast<std::uint32_t>(in[0]) |
         static_cast<std::uint32_t>(in[1]) << 8 |
         static_cast<std::uint32_t>(in[2]) << 16 |
         static_cast<std::uint32_t>(in[3]) << 24;
}

void store_u16(std::uint8_t* out, std::uint16_t v) {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
}

std::uint16_t load_u16(const std::uint8_t* in) {
  return static_cast<std::uint16_t>(
      static_cast<std::uint16_t>(in[0]) |
      static_cast<std::uint16_t>(static_cast<std::uint16_t>(in[1]) << 8));
}

/// Copies `count` bytes into the ring at logical position `pos`,
/// wrapping at `capacity`.
void ring_write(std::uint8_t* data, std::size_t capacity, std::uint64_t pos,
                const std::uint8_t* src, std::size_t count) {
  const std::size_t at = static_cast<std::size_t>(pos % capacity);
  const std::size_t first = std::min(count, capacity - at);
  std::memcpy(data + at, src, first);
  if (first < count) std::memcpy(data, src + first, count - first);
}

/// Copies `count` bytes out of the ring at logical position `pos`.
void ring_read(const std::uint8_t* data, std::size_t capacity,
               std::uint64_t pos, std::uint8_t* dst, std::size_t count) {
  const std::size_t at = static_cast<std::size_t>(pos % capacity);
  const std::size_t first = std::min(count, capacity - at);
  std::memcpy(dst, data + at, first);
  if (first < count) std::memcpy(dst + first, data, count - first);
}

}  // namespace

std::unique_ptr<ShmRingChannel> ShmRingChannel::create(
    const std::string& name, std::size_t capacity,
    rtsj::RelativeTime send_stall) {
  if (capacity < 2 * kRecordHeader) return nullptr;
  const int fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  if (fd < 0) return nullptr;
  const std::size_t bytes = kHeaderBytes + 2 * capacity;
  if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    ::close(fd);
    ::shm_unlink(name.c_str());
    return nullptr;
  }
  void* region =
      ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps the region alive
  if (region == MAP_FAILED) {
    ::shm_unlink(name.c_str());
    return nullptr;
  }
  auto* hdr = new (region) Region();
  hdr->layout_version = kLayoutVersion;
  hdr->capacity = static_cast<std::uint32_t>(capacity);
  hdr->closed.store(0, std::memory_order_relaxed);
  hdr->rings[0].head.store(0, std::memory_order_relaxed);
  hdr->rings[0].tail.store(0, std::memory_order_relaxed);
  hdr->rings[1].head.store(0, std::memory_order_relaxed);
  hdr->rings[1].tail.store(0, std::memory_order_relaxed);
  // The magic is published last (release): an attacher that sees it sees
  // an initialized header.
  hdr->magic.store(kMagic, std::memory_order_release);
  auto channel = std::unique_ptr<ShmRingChannel>(new ShmRingChannel());
  channel->name_ = name;
  channel->region_ = region;
  channel->mapped_bytes_ = bytes;
  channel->creator_ = true;
  channel->send_stall_ = send_stall;
  return channel;
}

std::unique_ptr<ShmRingChannel> ShmRingChannel::attach(
    const std::string& name, rtsj::RelativeTime send_stall) {
  const int fd = ::shm_open(name.c_str(), O_RDWR, 0600);
  if (fd < 0) return nullptr;
  struct stat st {};
  if (::fstat(fd, &st) != 0 ||
      static_cast<std::size_t>(st.st_size) < kHeaderBytes) {
    ::close(fd);
    return nullptr;
  }
  const std::size_t bytes = static_cast<std::size_t>(st.st_size);
  void* region =
      ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (region == MAP_FAILED) return nullptr;
  auto* hdr = static_cast<Region*>(region);
  const std::uint64_t magic = hdr->magic.load(std::memory_order_acquire);
  if (magic != kMagic || hdr->layout_version != kLayoutVersion ||
      bytes != kHeaderBytes + 2 * static_cast<std::size_t>(hdr->capacity)) {
    ::munmap(region, bytes);
    return nullptr;
  }
  auto channel = std::unique_ptr<ShmRingChannel>(new ShmRingChannel());
  channel->name_ = name;
  channel->region_ = region;
  channel->mapped_bytes_ = bytes;
  channel->creator_ = false;
  channel->send_stall_ = send_stall;
  return channel;
}

ShmRingChannel::~ShmRingChannel() {
  close();
  if (region_ != nullptr) {
    ::munmap(region_, mapped_bytes_);
    region_ = nullptr;
  }
  if (creator_) ::shm_unlink(name_.c_str());
}

std::size_t ShmRingChannel::capacity() const noexcept {
  return static_cast<const Region*>(region_)->capacity;
}

bool ShmRingChannel::wait_for_space(std::size_t total, std::uint64_t& head) {
  auto* hdr = static_cast<Region*>(region_);
  Ring& ring = hdr->rings[creator_ ? 0 : 1];
  const std::size_t capacity = hdr->capacity;
  if (total > capacity) return false;  // can never fit
  auto& clock = rtsj::SteadyClock::instance();
  const auto deadline = clock.now() + send_stall_;
  head = ring.head.load(std::memory_order_relaxed);
  while (true) {
    if (hdr->closed.load(std::memory_order_acquire) != 0) return false;
    const std::uint64_t tail = ring.tail.load(std::memory_order_acquire);
    if (capacity - static_cast<std::size_t>(head - tail) >= total) {
      return true;
    }
    if (clock.now() >= deadline) {
      // The reader has stalled past the bound; fail loudly rather than
      // wedge the sender (mirrors the TCP transport's stall deadline).
      close();
      return false;
    }
    std::this_thread::yield();
  }
}

bool ShmRingChannel::send(const Frame& frame) {
  auto* hdr = static_cast<Region*>(region_);
  Ring& ring = hdr->rings[creator_ ? 0 : 1];
  std::uint8_t* data = static_cast<std::uint8_t*>(region_) + kHeaderBytes +
                       (creator_ ? 0 : hdr->capacity);
  const std::size_t capacity = hdr->capacity;
  const std::size_t total = kRecordHeader + frame.payload.size();
  std::uint64_t head = 0;
  if (!wait_for_space(total, head)) return false;
  std::uint8_t header[kRecordHeader];
  store_u32(header, static_cast<std::uint32_t>(4 + frame.payload.size()));
  store_u16(header + 4, kWireVersion);
  store_u16(header + 6, frame.type);
  ring_write(data, capacity, head, header, kRecordHeader);
  if (!frame.payload.empty()) {
    ring_write(data, capacity, head + kRecordHeader, frame.payload.data(),
               frame.payload.size());
  }
  ring.head.store(head + total, std::memory_order_release);
  return true;
}

bool ShmRingChannel::reserve_frame(std::uint16_t type,
                                   std::size_t payload_size,
                                   FrameReservation& out) {
  auto* hdr = static_cast<Region*>(region_);
  std::uint8_t* data = static_cast<std::uint8_t*>(region_) + kHeaderBytes +
                       (creator_ ? 0 : hdr->capacity);
  const std::size_t capacity = hdr->capacity;
  std::uint64_t head = 0;
  if (!wait_for_space(kRecordHeader + payload_size, head)) return false;
  pending_active_ = true;
  pending_head_ = head;
  pending_type_ = type;
  // The payload starts right after the record header. When those bytes
  // are contiguous (no wrap across the ring edge) the caller encodes
  // straight into shared memory; otherwise it encodes into the scratch
  // bounce buffer and commit performs the ring's wrap-aware copy.
  const std::size_t at =
      static_cast<std::size_t>((head + kRecordHeader) % capacity);
  pending_in_place_ = at + payload_size <= capacity;
  if (pending_in_place_) {
    out.data = data + at;
  } else {
    if (scratch_.size() < payload_size) scratch_.resize(payload_size);
    out.data = scratch_.data();
  }
  out.size = payload_size;
  out.in_place = pending_in_place_;
  return true;
}

bool ShmRingChannel::commit_frame(std::size_t used) {
  if (!pending_active_) return false;
  pending_active_ = false;
  auto* hdr = static_cast<Region*>(region_);
  if (hdr->closed.load(std::memory_order_acquire) != 0) return false;
  Ring& ring = hdr->rings[creator_ ? 0 : 1];
  std::uint8_t* data = static_cast<std::uint8_t*>(region_) + kHeaderBytes +
                       (creator_ ? 0 : hdr->capacity);
  const std::size_t capacity = hdr->capacity;
  std::uint8_t header[kRecordHeader];
  store_u32(header, static_cast<std::uint32_t>(4 + used));
  store_u16(header + 4, kWireVersion);
  store_u16(header + 6, pending_type_);
  ring_write(data, capacity, pending_head_, header, kRecordHeader);
  if (!pending_in_place_ && used > 0) {
    ring_write(data, capacity, pending_head_ + kRecordHeader,
               scratch_.data(), used);
  }
  ring.head.store(pending_head_ + kRecordHeader + used,
                  std::memory_order_release);
  return true;
}

void ShmRingChannel::abort_frame() { pending_active_ = false; }

bool ShmRingChannel::receive(Frame& frame, rtsj::RelativeTime timeout) {
  auto* hdr = static_cast<Region*>(region_);
  Ring& ring = hdr->rings[creator_ ? 1 : 0];
  const std::uint8_t* data = static_cast<const std::uint8_t*>(region_) +
                             kHeaderBytes + (creator_ ? hdr->capacity : 0);
  const std::size_t capacity = hdr->capacity;
  auto& clock = rtsj::SteadyClock::instance();
  const auto deadline = clock.now() + timeout;
  const std::uint64_t tail = ring.tail.load(std::memory_order_relaxed);
  while (true) {
    const std::uint64_t head = ring.head.load(std::memory_order_acquire);
    const std::size_t available = static_cast<std::size_t>(head - tail);
    if (available >= kRecordHeader) {
      std::uint8_t header[kRecordHeader];
      ring_read(data, capacity, tail, header, kRecordHeader);
      const std::uint32_t length = load_u32(header);
      // Torn-size / corruption guard: a record the writer could not have
      // published legally desynchronizes the stream for good — close,
      // exactly like the TCP framing-violation rule.
      if (length < 4 || length + 4 > capacity ||
          load_u16(header + 4) != kWireVersion ||
          available < 4 + static_cast<std::size_t>(length)) {
        close();
        return false;
      }
      frame.type = load_u16(header + 6);
      frame.payload.resize(length - 4);
      if (!frame.payload.empty()) {
        ring_read(data, capacity, tail + kRecordHeader, frame.payload.data(),
                  frame.payload.size());
      }
      ring.tail.store(tail + 4 + length, std::memory_order_release);
      return true;
    }
    if (hdr->closed.load(std::memory_order_acquire) != 0) return false;
    if (clock.now() >= deadline) return false;
    std::this_thread::yield();
  }
}

void ShmRingChannel::close() {
  if (region_ == nullptr) return;
  static_cast<Region*>(region_)->closed.store(1, std::memory_order_release);
}

bool ShmRingChannel::open() const {
  if (region_ == nullptr) return false;
  return static_cast<const Region*>(region_)->closed.load(
             std::memory_order_acquire) == 0;
}

}  // namespace rtcf::comm
