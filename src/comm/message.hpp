// Fixed-capacity message values exchanged across functional interfaces.
//
// RTSJ systems avoid allocation on hot paths: a message here is a flat
// 96-byte POD passed by value (or staged into preallocated buffers), so
// sending never allocates and never creates cross-scope references. All
// four evaluation variants (OO baseline and the three generation modes)
// move exactly this type, which keeps the Fig. 7 comparison about
// infrastructure cost only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace rtcf::comm {

/// A flat, trivially copyable message.
struct Message {
  static constexpr std::size_t kPayloadCapacity = 64;

  std::uint32_t type_id = 0;   ///< Application-defined discriminator.
  std::uint32_t size = 0;      ///< Valid payload bytes.
  std::int64_t timestamp_ns = 0;  ///< Producer timestamp (virtual or wall).
  std::uint64_t sequence = 0;  ///< Producer sequence number.
  std::byte payload[kPayloadCapacity] = {};

  /// Serializes a trivially copyable value into the payload.
  template <typename T>
  void store(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "message payloads must be trivially copyable");
    static_assert(sizeof(T) <= kPayloadCapacity,
                  "payload exceeds message capacity");
    std::memcpy(payload, &value, sizeof(T));
    size = sizeof(T);
  }

  /// Deserializes the payload back into a value.
  template <typename T>
  T load() const {
    static_assert(std::is_trivially_copyable_v<T>,
                  "message payloads must be trivially copyable");
    static_assert(sizeof(T) <= kPayloadCapacity,
                  "payload exceeds message capacity");
    T value;
    std::memcpy(&value, payload, sizeof(T));
    return value;
  }
};

static_assert(std::is_trivially_copyable_v<Message>);

/// One-way message consumer: the server side of an asynchronous binding.
class IMessageSink {
 public:
  virtual ~IMessageSink() = default;
  virtual void deliver(const Message& message) = 0;
};

/// Request/response invocation: the server side of a synchronous binding.
class IInvocable {
 public:
  virtual ~IInvocable() = default;
  virtual Message invoke(const Message& request) = 0;
};

}  // namespace rtcf::comm
