#include "comm/buffer_pool.hpp"

#include <algorithm>
#include <utility>

namespace rtcf::comm {

std::size_t BufferPool::class_for(std::size_t size) {
  for (std::size_t c = 0; c < kClassCount; ++c) {
    if (size <= kClassSizes[c]) return c;
  }
  return kClassCount;
}

std::vector<std::uint8_t> BufferPool::acquire(std::size_t size) {
  const std::size_t c = class_for(size);
  std::vector<std::uint8_t> buffer;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.outstanding;
    stats_.high_water = std::max(stats_.high_water, stats_.outstanding);
    if (c < kClassCount && !free_[c].empty()) {
      ++stats_.hits;
      buffer = std::move(free_[c].back());
      free_[c].pop_back();
    } else {
      ++stats_.misses;
      if (c == kClassCount) ++stats_.oversize;
    }
  }
  if (buffer.capacity() == 0 && c < kClassCount) {
    buffer.reserve(kClassSizes[c]);
  }
  buffer.resize(size);
  return buffer;
}

void BufferPool::release(std::vector<std::uint8_t>&& buffer) {
  const std::size_t capacity = buffer.capacity();
  // Class the buffer by what it can hold: the largest class it fully
  // covers, so a recycled buffer always satisfies the class it sits in.
  std::size_t c = kClassCount;
  for (std::size_t i = kClassCount; i-- > 0;) {
    if (capacity >= kClassSizes[i]) {
      c = i;
      break;
    }
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  if (stats_.outstanding > 0) --stats_.outstanding;
  if (c == kClassCount || free_[c].size() >= max_free_per_class_) {
    ++stats_.discarded;
    return;  // buffer frees on scope exit
  }
  buffer.clear();
  free_[c].push_back(std::move(buffer));
}

BufferPool::Stats BufferPool::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace rtcf::comm
