// Bounded message buffer backing asynchronous bindings.
//
// The buffer's storage is carved out of an RTSJ memory area at assembly
// time (the paper's `BindDesc bufferSize` attribute decides the capacity,
// the Soleil planner decides the area), after which push/pop never
// allocate. Overflow drops the newest message and counts it — sporadic
// consumers with a minimum interarrival time are *expected* to shed load.
#pragma once

#include <cstdint>
#include <optional>

#include "comm/message.hpp"
#include "rtsj/memory/memory_area.hpp"

namespace rtcf::comm {

/// Fixed-capacity FIFO of Message values with storage in a memory area.
class MessageBuffer {
 public:
  /// Allocates `capacity` message slots inside `area`.
  MessageBuffer(rtsj::MemoryArea& area, std::size_t capacity);

  MessageBuffer(const MessageBuffer&) = delete;
  MessageBuffer& operator=(const MessageBuffer&) = delete;

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  bool full() const noexcept { return size_ == capacity_; }

  /// Enqueues a copy of `message`; returns false and counts a drop when
  /// full.
  bool push(const Message& message) noexcept;
  std::optional<Message> pop() noexcept;
  void clear() noexcept;

  std::uint64_t enqueued_total() const noexcept { return enqueued_; }
  std::uint64_t dropped_total() const noexcept { return dropped_; }

  /// The memory area holding the slots (introspection / tests).
  const rtsj::MemoryArea& area() const noexcept { return area_; }

 private:
  rtsj::MemoryArea& area_;
  Message* slots_;
  std::size_t capacity_;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
  std::size_t size_ = 0;
  std::uint64_t enqueued_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace rtcf::comm
