// Bounded message buffers backing asynchronous bindings.
//
// A buffer's storage is carved out of an RTSJ memory area at assembly
// time (the paper's `BindDesc bufferSize` attribute decides the capacity,
// the Soleil planner decides the area), after which push/pop never
// allocate. Overflow drops the *newest* message (the one being pushed) and
// counts it — sporadic consumers with a minimum interarrival time are
// *expected* to shed load.
//
// Two variants share this interface:
//   * MessageBuffer      — the single-threaded base, used when producer and
//                          consumer run on the same executive worker (the
//                          run-to-completion dispatcher guarantees they
//                          never race);
//   * SpscMessageBuffer  — lock-free single-producer/single-consumer ring
//                          (spsc_message_buffer.hpp) carrying cross-worker
//                          asynchronous bindings in the partitioned
//                          executive.
#pragma once

#include <cstdint>
#include <optional>

#include "comm/message.hpp"
#include "rtsj/memory/memory_area.hpp"

namespace rtcf::comm {

/// Fixed-capacity FIFO of Message values with storage in a memory area.
class MessageBuffer {
 public:
  /// Allocates `capacity` message slots inside `area`.
  MessageBuffer(rtsj::MemoryArea& area, std::size_t capacity);
  virtual ~MessageBuffer() = default;

  MessageBuffer(const MessageBuffer&) = delete;
  MessageBuffer& operator=(const MessageBuffer&) = delete;

  std::size_t capacity() const noexcept { return capacity_; }
  virtual std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size() == 0; }
  bool full() const noexcept { return size() == capacity_; }

  /// Enqueues a copy of `message`; returns false and counts a drop when
  /// full (the pushed — newest — message is the one shed).
  virtual bool push(const Message& message) noexcept;
  virtual std::optional<Message> pop() noexcept;
  /// Discards queued messages. Not safe while a concurrent producer or
  /// consumer is active.
  virtual void clear() noexcept;

  virtual std::uint64_t enqueued_total() const noexcept { return enqueued_; }
  virtual std::uint64_t dropped_total() const noexcept { return dropped_; }

  /// True when push and pop may be called from two different OS threads
  /// (one producer, one consumer) without external synchronization.
  virtual bool concurrent() const noexcept { return false; }

  /// The memory area holding the slots (introspection / tests).
  const rtsj::MemoryArea& area() const noexcept { return area_; }

 protected:
  rtsj::MemoryArea& area_;
  Message* slots_;
  std::size_t capacity_;

 private:
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
  std::size_t size_ = 0;
  std::uint64_t enqueued_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace rtcf::comm
