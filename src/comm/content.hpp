// The user-facing programming model: content classes and output ports.
//
// Developers implement only component *content* (§3.3 step 1: "developers
// implement only component content classes"); everything else — thread and
// memory management, cross-scope communication, activation — is generated
// infrastructure. A content class overrides the hooks relevant to its
// component type and calls out through its declared client ports.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "comm/message.hpp"
#include "comm/message_buffer.hpp"

namespace rtcf::comm {

class Content;

/// Client-side stub for one declared client interface. The infrastructure
/// binds it according to the generation mode:
///   * SOLEIL      — to the head of an interceptor chain (several reified
///                   hops);
///   * MERGE_ALL   — to the target component's merged shell (one hop);
///   * ULTRA_MERGE — to a flattened fast path (direct buffer push or direct
///                   content invocation, no infrastructure objects).
class OutPort {
 public:
  explicit OutPort(std::string name) : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }
  bool bound() const noexcept {
    return sink_ != nullptr || invocable_ != nullptr ||
           fast_ != FastPath::None;
  }

  /// Asynchronous one-way send. Unbound ports drop (counted by caller's
  /// tests via bound()).
  void send(const Message& message);
  /// Synchronous request/response.
  Message call(const Message& request);

  /// Optional in-place transform applied before a fast-path push (the
  /// ULTRA_MERGE spelling of a memory pattern's staging copy).
  using TransformFn = const Message& (*)(void*, const Message&);

  // -- wiring API (BindingController / assembly) --------------------------
  void bind_sink(IMessageSink* sink) noexcept {
    sink_ = sink;
    fast_ = FastPath::None;
  }
  void bind_invocable(IInvocable* invocable) noexcept {
    invocable_ = invocable;
    fast_ = FastPath::None;
  }
  /// ULTRA_MERGE fast path: push straight into `buffer` and tick `notify`.
  void bind_direct_buffer(MessageBuffer* buffer, void (*notify)(void*),
                          void* notify_arg, TransformFn transform = nullptr,
                          void* transform_arg = nullptr) noexcept {
    buffer_ = buffer;
    notify_ = notify;
    notify_arg_ = notify_arg;
    transform_ = transform;
    transform_arg_ = transform_arg;
    fast_ = FastPath::DirectBuffer;
  }
  /// ULTRA_MERGE fast path: invoke the server content directly.
  void bind_direct_content(Content* target) noexcept {
    target_ = target;
    fast_ = FastPath::DirectInvoke;
  }
  void unbind() noexcept {
    sink_ = nullptr;
    invocable_ = nullptr;
    buffer_ = nullptr;
    target_ = nullptr;
    notify_ = nullptr;
    transform_ = nullptr;
    fast_ = FastPath::None;
  }

 private:
  enum class FastPath { None, DirectBuffer, DirectInvoke };

  std::string name_;
  FastPath fast_ = FastPath::None;
  IMessageSink* sink_ = nullptr;
  IInvocable* invocable_ = nullptr;
  MessageBuffer* buffer_ = nullptr;
  Content* target_ = nullptr;
  void (*notify_)(void*) = nullptr;
  void* notify_arg_ = nullptr;
  TransformFn transform_ = nullptr;
  void* transform_arg_ = nullptr;
};

/// Base class for user-implemented component logic. Active components get
/// on_release (periodic) / on_message (sporadic); passive components get
/// on_invoke; all get lifecycle hooks.
class Content {
 public:
  virtual ~Content() = default;

  /// Lifecycle (driven by the LifecycleController / launcher).
  virtual void on_start() {}
  virtual void on_stop() {}

  /// One periodic release (run-to-completion).
  virtual void on_release() {}
  /// One sporadic release triggered by a message arrival.
  virtual void on_message(const Message& message) { (void)message; }
  /// Synchronous server invocation (passive components).
  virtual Message on_invoke(const Message& request) {
    (void)request;
    return Message{};
  }

  /// Client port lookup by declared name; throws std::invalid_argument for
  /// unknown ports.
  OutPort& port(const std::string& name);
  /// Fast indexed lookup (indices follow declaration order in the ADL).
  OutPort& port(std::size_t index) { return ports_.at(index); }
  std::size_t port_count() const noexcept { return ports_.size(); }

  /// Called by the assembly while wiring; not for user code.
  OutPort& add_port(std::string name);

 private:
  std::vector<OutPort> ports_;
};

}  // namespace rtcf::comm
