// Recycling arena for frame payload buffers (docs/DATAPLANE.md "Zero-copy
// path"). The data plane's fallback send path and the inbox's deferred
// BATCH frames both need byte vectors at high rates; without a pool every
// frame costs a malloc/free pair on the hot path. The pool keeps freed
// buffers in per-size-class freelists (the sysmem-style negotiated-pool
// idea scaled down to one process), so steady-state traffic runs entirely
// on recycled memory — `misses` stops moving, which is exactly what the
// bench's `allocs_per_msg == 0` gate measures.
//
// Design points:
//   * fixed slab classes (256 B .. 1 MiB): a request rounds up to the
//     smallest class that fits, so recycled capacity is always reusable;
//   * oversize requests (> largest class) are allocated exactly and
//     counted, never pooled — they indicate a misconfigured batch size;
//   * bounded freelists: at most `max_free_per_class` parked buffers per
//     class, the rest is returned to the allocator (`discarded`);
//   * thread-safe: acquire/release take a mutex — the pool is shared by
//     the executive (flush path) and serve (receive path) threads, and a
//     single uncontended lock is far cheaper than the allocator round it
//     replaces.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

namespace rtcf::comm {

/// A recycling pool of payload byte vectors with fixed slab classes.
class BufferPool {
 public:
  /// Slab capacities a request is rounded up to.
  static constexpr std::size_t kClassSizes[] = {256, 4096, 65536,
                                                1u << 20};
  /// Number of slab classes.
  static constexpr std::size_t kClassCount =
      sizeof(kClassSizes) / sizeof(kClassSizes[0]);

  /// Pool counters; all monotonically increasing except outstanding.
  struct Stats {
    std::uint64_t hits = 0;       ///< Acquires served from a freelist.
    std::uint64_t misses = 0;     ///< Acquires that had to allocate.
    std::uint64_t oversize = 0;   ///< Misses beyond the largest class.
    std::uint64_t discarded = 0;  ///< Releases dropped (freelist full or
                                  ///< capacity below every class).
    std::uint64_t outstanding = 0;  ///< Buffers acquired and not released.
    std::uint64_t high_water = 0;   ///< Max outstanding ever observed.
  };

  /// A pool keeping at most `max_free_per_class` parked buffers per class.
  explicit BufferPool(std::size_t max_free_per_class = 32)
      : max_free_per_class_(max_free_per_class) {}

  /// Returns a vector of exactly `size` bytes whose capacity is the
  /// enclosing slab class (or exactly `size` when oversize). Contents are
  /// unspecified-but-zeroed per vector semantics; callers encode over it.
  std::vector<std::uint8_t> acquire(std::size_t size);

  /// Returns a buffer to its slab class's freelist (classed by capacity).
  /// Buffers the pool cannot reuse are freed and counted as discarded.
  void release(std::vector<std::uint8_t>&& buffer);

  /// A snapshot of the counters.
  Stats stats() const;

 private:
  /// Index of the smallest class with capacity >= size, or kClassCount
  /// when oversize.
  static std::size_t class_for(std::size_t size);

  const std::size_t max_free_per_class_;
  mutable std::mutex mutex_;
  std::vector<std::vector<std::uint8_t>> free_[kClassCount];
  Stats stats_;
};

}  // namespace rtcf::comm
