#include "comm/content.hpp"

#include <stdexcept>

#include "util/assert.hpp"

namespace rtcf::comm {

void OutPort::send(const Message& message) {
  switch (fast_) {
    case FastPath::DirectBuffer: {
      const Message& out = transform_ != nullptr
                               ? transform_(transform_arg_, message)
                               : message;
      buffer_->push(out);
      if (notify_ != nullptr) notify_(notify_arg_);
      return;
    }
    case FastPath::DirectInvoke:
      // One-way send over a synchronous fast path degenerates to invoke.
      target_->on_message(message);
      return;
    case FastPath::None:
      break;
  }
  if (sink_ == nullptr) {
    throw std::logic_error("port '" + name_ + "' is not bound for send()");
  }
  sink_->deliver(message);
}

Message OutPort::call(const Message& request) {
  if (fast_ == FastPath::DirectInvoke) {
    return target_->on_invoke(request);
  }
  if (invocable_ == nullptr) {
    throw std::logic_error("port '" + name_ + "' is not bound for call()");
  }
  return invocable_->invoke(request);
}

OutPort& Content::port(const std::string& name) {
  for (auto& p : ports_) {
    if (p.name() == name) return p;
  }
  throw std::invalid_argument("unknown port '" + name + "'");
}

OutPort& Content::add_port(std::string name) {
  return ports_.emplace_back(std::move(name));
}

}  // namespace rtcf::comm
