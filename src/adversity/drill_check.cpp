#include "adversity/drill_check.hpp"

#include <exception>
#include <sstream>

#include "adl/loader.hpp"
#include "dist/plan_codec.hpp"
#include "model/assembly_plan.hpp"
#include "soleil/plan.hpp"
#include "validate/distribution.hpp"
#include "validate/tenancy.hpp"
#include "validate/validator.hpp"

namespace rtcf::adversity {

std::string Violation::to_string() const {
  return invariant + " [" + subject + "]: " + detail;
}

namespace {

void check_one_valid(const model::Architecture& arch,
                     const validate::NodeMap& map, const std::string& label,
                     std::vector<Violation>& out) {
  validate::Report report = validate::validate(arch);
  const model::AssemblyPlan plan =
      soleil::snapshot_assembly(arch, /*partitions=*/1);
  const validate::Report dist_report =
      validate::validate_distribution(plan, map);
  for (const validate::Diagnostic& d : dist_report.diagnostics()) {
    report.add(d.severity, d.rule, d.subject, d.message);
  }
  // The TENANT-* rule family rides the same gate: a generated tenant
  // topology that breaks isolation is a generator bug.
  const validate::Report tenancy_report = validate::validate_tenancy(plan);
  for (const validate::Diagnostic& d : tenancy_report.diagnostics()) {
    report.add(d.severity, d.rule, d.subject, d.message);
  }
  if (report.ok()) return;
  for (const validate::Diagnostic& d : report.diagnostics()) {
    if (d.severity != validate::Severity::Error) continue;
    out.push_back({"GEN-VALID", label,
                   d.rule + " on " + d.subject + ": " + d.message});
  }
}

void check_one_plan_roundtrip(const model::Architecture& arch,
                              const std::string& label,
                              std::vector<Violation>& out) {
  try {
    const std::vector<std::uint8_t> bytes =
        dist::encode_plan(soleil::snapshot_assembly(arch, /*partitions=*/1));
    const std::vector<std::uint8_t> again =
        dist::encode_plan(dist::decode_plan(bytes));
    if (again != bytes) {
      out.push_back({"CODEC-ROUNDTRIP", label,
                     "re-encoded plan differs from the original bytes ("
                     + std::to_string(bytes.size()) + " vs "
                     + std::to_string(again.size()) + " bytes)"});
    }
  } catch (const std::exception& e) {
    out.push_back({"CODEC-ROUNDTRIP", label,
                   std::string("plan codec threw: ") + e.what()});
  }
}

void check_one_adl_roundtrip(const model::Architecture& arch,
                             const std::string& label,
                             std::vector<Violation>& out) {
  try {
    const std::string text = adl::save_architecture(arch);
    const model::Architecture reloaded = adl::load_architecture(text);
    const std::string again = adl::save_architecture(reloaded);
    if (again != text) {
      out.push_back({"ADL-ROUNDTRIP", label,
                     "save(load(save(arch))) is not byte-identical"});
    }
  } catch (const std::exception& e) {
    out.push_back({"ADL-ROUNDTRIP", label,
                   std::string("round-trip threw: ") + e.what()});
  }
}

}  // namespace

void check_generated_valid(const Scenario& scenario,
                           std::vector<Violation>& out) {
  check_one_valid(scenario.arch, scenario.node_map, "base", out);
  for (std::size_t i = 0; i < scenario.reload_targets.size(); ++i) {
    check_one_valid(scenario.reload_targets[i], scenario.node_map,
                    "target" + std::to_string(i), out);
  }
}

void check_codec_roundtrip(const Scenario& scenario,
                           const ProtoResult& proto,
                           std::vector<Violation>& out) {
  check_one_plan_roundtrip(scenario.arch, "base", out);
  for (std::size_t i = 0; i < scenario.reload_targets.size(); ++i) {
    check_one_plan_roundtrip(scenario.reload_targets[i],
                             "target" + std::to_string(i), out);
  }
  for (const OpOutcome& op : proto.ops) {
    for (const auto& [node, bytes] : op.node_deltas) {
      const std::string label =
          "op" + std::to_string(op.index) + "/" + node;
      try {
        const std::vector<std::uint8_t> again =
            dist::encode_delta(dist::decode_delta(bytes));
        if (again != bytes) {
          out.push_back({"CODEC-ROUNDTRIP", label,
                         "re-encoded slice delta differs from the "
                         "transmitted bytes"});
        }
      } catch (const std::exception& e) {
        out.push_back({"CODEC-ROUNDTRIP", label,
                       std::string("delta codec threw: ") + e.what()});
      }
    }
  }
}

void check_adl_roundtrip(const Scenario& scenario,
                         std::vector<Violation>& out) {
  check_one_adl_roundtrip(scenario.arch, "base", out);
  for (std::size_t i = 0; i < scenario.reload_targets.size(); ++i) {
    check_one_adl_roundtrip(scenario.reload_targets[i],
                            "target" + std::to_string(i), out);
  }
}

void check_protocol(const ProtoResult& proto, std::vector<Violation>& out) {
  for (const OpOutcome& op : proto.ops) {
    const std::string label = "op" + std::to_string(op.index);
    bool first = true;
    std::uint64_t epoch = 0;
    for (const auto& [node, e] : op.epochs_after) {
      if (first) {
        epoch = e;
        first = false;
      } else if (e != epoch) {
        std::ostringstream os;
        os << "live nodes disagree after the op:";
        for (const auto& [n2, e2] : op.epochs_after) {
          os << " " << n2 << "=" << e2;
        }
        out.push_back({"PROTO-EPOCH-AGREEMENT", label, os.str()});
        break;
      }
    }
    if (op.commit_expected && !op.committed) {
      out.push_back({"PROTO-COMMIT-EXPECTED", label,
                     "no non-benign fault touched this op, yet it "
                     "aborted: " + op.reason});
    }
  }
  for (const ProtoNode& node : proto.nodes) {
    if (node.wedged) {
      out.push_back({"PROTO-WEDGED", node.name,
                     "parked-prepared at drill end — the presumed-abort "
                     "timer never fired"});
    }
    // A drained-and-evicted node legitimately keeps its last epoch and
    // snapshot; only members are held to the coordinator's view.
    if (!node.alive || !node.member) continue;
    const auto epoch_it = proto.coord_epochs.find(node.name);
    if (epoch_it != proto.coord_epochs.end() &&
        epoch_it->second != node.epoch) {
      out.push_back({"PROTO-EPOCH-AGREEMENT", node.name,
                     "coordinator sees epoch " +
                         std::to_string(epoch_it->second) +
                         ", node reports " + std::to_string(node.epoch)});
    }
    const auto snap_it = proto.coord_snapshots.find(node.name);
    if (snap_it != proto.coord_snapshots.end() &&
        snap_it->second != node.snapshot) {
      out.push_back({"PROTO-SNAPSHOT-AGREEMENT", node.name,
                     "coordinator's snapshot bytes differ from the "
                     "node's running snapshot"});
    }
  }
}

void check_membership(const ProtoResult& proto,
                      std::vector<Violation>& out) {
  // Every applied event must have passed the MEMBER-* rules.
  for (const std::string& err : proto.membership_errors) {
    out.push_back({"MEMBERSHIP-CONVERGES", "membership", err});
  }
  // The final view, the per-node member flags, and the coordinator's
  // per-node view must tell one story.
  const auto in_view = [&proto](const std::string& name) {
    for (const std::string& member : proto.final_members) {
      if (member == name) return true;
    }
    return false;
  };
  for (const ProtoNode& node : proto.nodes) {
    if (in_view(node.name) != node.member) {
      out.push_back({"MEMBERSHIP-CONVERGES", node.name,
                     node.member
                         ? "node believes it is a member but the final "
                           "view does not list it"
                         : "final view lists a node that was evicted"});
    }
    if (node.member && proto.coord_epochs.count(node.name) == 0) {
      out.push_back({"MEMBERSHIP-CONVERGES", node.name,
                     "member missing from the coordinator's epoch view"});
    }
    if (!node.member && proto.coord_epochs.count(node.name) != 0) {
      out.push_back({"MEMBERSHIP-CONVERGES", node.name,
                     "evicted node still in the coordinator's epoch "
                     "view"});
    }
  }
  // Live members converge on one cluster epoch, whatever churn happened.
  bool first = true;
  std::uint64_t epoch = 0;
  for (const ProtoNode& node : proto.nodes) {
    if (!node.alive || !node.member) continue;
    if (first) {
      epoch = node.epoch;
      first = false;
    } else if (node.epoch != epoch) {
      std::ostringstream os;
      os << "live members disagree at drill end:";
      for (const ProtoNode& n : proto.nodes) {
        if (n.alive && n.member) os << " " << n.name << "=" << n.epoch;
      }
      out.push_back({"MEMBERSHIP-CONVERGES", node.name, os.str()});
      break;
    }
  }
}

void check_sim(const SimAudit& audit, std::vector<Violation>& out) {
  const auto overloaded = [&audit](const std::string& tenant) {
    for (const std::string& name : audit.overloaded_tenants) {
      if (name == tenant) return true;
    }
    return false;
  };
  // TENANT-ISOLATION, governor side: degradation decisions may only name
  // tenants an overload fault actually targeted.
  for (const std::string& tenant : audit.governor_transition_tenants) {
    if (!overloaded(tenant)) {
      out.push_back({"TENANT-ISOLATION", tenant.empty() ? "<default>"
                                                        : tenant,
                     "governor level transition for a tenant no overload "
                     "fault targeted"});
    }
  }
  for (const SimAudit::TaskSample& t : audit.tasks) {
    const std::string label = t.node + "/" + t.component;
    if (t.sporadic) {
      const std::uint64_t accounted =
          t.rejected_arrivals + t.disabled_arrivals + t.shed_releases +
          t.releases_completed + t.pending_arrivals + t.queued_jobs;
      if (t.arrivals_posted != accounted) {
        std::ostringstream os;
        os << "posted " << t.arrivals_posted << " != rejected "
           << t.rejected_arrivals << " + disabled " << t.disabled_arrivals
           << " + shed " << t.shed_releases << " + completed "
           << t.releases_completed << " + pending " << t.pending_arrivals
           << " + queued " << t.queued_jobs << " (= " << accounted << ")";
        out.push_back({"SIM-CONSERVATION", label, os.str()});
      }
    }
    if (t.untouched_periodic && t.deadline_misses != 0) {
      out.push_back({"SIM-DEADLINE-UNTOUCHED", label,
                     std::to_string(t.deadline_misses) +
                         " deadline miss(es) on a component no fault, "
                         "mode, or delta touched"});
    }
    // TENANT-ISOLATION, task side: a bystander tenant's releases are
    // never shed, whatever happened in the overloaded tenant.
    if (!t.tenant.empty() && !t.tenant_overloaded && t.shed_releases != 0) {
      out.push_back({"TENANT-ISOLATION", label,
                     std::to_string(t.shed_releases) +
                         " release(s) of tenant '" + t.tenant +
                         "' shed while only other tenants were "
                         "overloaded"});
    }
  }
  // DATA-CONSERVATION: every message a route accepted is delivered,
  // declaredly dropped, or still queued — at any instant, including a
  // horizon that cuts a starved queue mid-flight.
  for (std::size_t r = 0; r < audit.routes.size(); ++r) {
    const dist::RouteSimStats& s = audit.routes[r];
    const std::uint64_t accounted =
        s.delivered + s.chaos_dropped + s.overflow_dropped + s.queued;
    if (s.offered != accounted) {
      std::ostringstream os;
      os << "offered " << s.offered << " != delivered " << s.delivered
         << " + chaos-dropped " << s.chaos_dropped << " + overflow-dropped "
         << s.overflow_dropped << " + queued " << s.queued << " (= "
         << accounted << ")";
      out.push_back({"DATA-CONSERVATION", "route" + std::to_string(r),
                     os.str()});
    }
  }
}

}  // namespace rtcf::adversity
