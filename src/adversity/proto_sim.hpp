// Analytic model of the two-phase reconfiguration protocol under faults.
//
// run_protocol() executes a scenario's reconfiguration ops against the
// protocol rules of docs/PROTOCOL.md in pure virtual time: PREPARE frames
// and votes are events with link latencies, the coordinator decides at the
// prepare deadline, decisions are durable before the first decision frame
// leaves, and a prepared node presumed-aborts when no decision arrives
// within its decision timeout. The fault timeline perturbs exactly those
// events — a straggler delays one vote past the deadline, a channel drop
// loses one frame, a coordinator crash truncates a send sweep.
//
// Every vote runs the *real* node-side checks: the received slice delta is
// decoded with the real codec, re-derived from the node's own snapshot
// with reconfig::diff_plans, byte-compared against the coordinator's
// encoding, and passed through check_delta_rules. The model's state (per
// node: epoch + canonical snapshot bytes) feeds the drill's mechanical
// invariants (drill_check.hpp): unanimous epoch agreement among live
// nodes, snapshot agreement after every commit, fault-free ops always
// commit, and no node left parked-prepared at drill end (the liveness
// tripwire that catches a skipped presumed-abort timer).
//
// Membership churn (MemberJoin / MemberLeave faults) runs through the
// real validate::MembershipView transitions: a join admits a spare with
// an empty slice and resyncs its epoch from the cluster, a leave drains
// the node's assignments and evicts it — each step validated by the
// MEMBER-* rules, each adoption bumping the membership epoch. Events are
// applied at op boundaries in virtual time; the MEMBERSHIP-CONVERGES
// invariant audits the final view (docs/MEMBERSHIP.md).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "adversity/arch_gen.hpp"
#include "adversity/chaos.hpp"
#include "rtsj/time/time.hpp"
#include "validate/report.hpp"

namespace rtcf::adversity {

/// Protocol timing model. Defaults are sized against the chaos layer's
/// fault magnitudes: a straggler delay (6-12ms) always misses the prepare
/// deadline, a benign channel delay (<=2ms) never does, and recovery of a
/// durable decision (recovery_delay + link_latency) always lands before
/// any prepared node's presumed-abort timer (decision_timeout) expires.
struct ProtoOptions {
  rtsj::RelativeTime link_latency = rtsj::RelativeTime::microseconds(200);
  rtsj::RelativeTime prepare_timeout = rtsj::RelativeTime::milliseconds(5);
  rtsj::RelativeTime decision_timeout = rtsj::RelativeTime::milliseconds(20);
  /// Standby takeover delay after a coordinator crash with a durable
  /// decision.
  rtsj::RelativeTime recovery_delay = rtsj::RelativeTime::milliseconds(2);
  /// Deliberate bug injection (tools/drill --inject-bug): a node that
  /// voted PREPARE_OK never starts its presumed-abort timer. A
  /// coordinator crash mid-PREPARE then wedges it forever — which the
  /// PROTO-WEDGED invariant must catch.
  bool bug_skip_presumed_abort = false;
};

/// Final state of one node after the drill.
struct ProtoNode {
  std::string name;
  bool alive = true;
  /// Still in the membership view: false after an applied drain-leave
  /// (unlike a crash, which kills the node but keeps it a member).
  bool member = true;
  rtsj::AbsoluteTime crashed_at{};  ///< Valid when !alive.
  std::uint64_t epoch = 0;
  /// Parked-prepared with no decision and no presumed-abort timer — only
  /// reachable under bug_skip_presumed_abort.
  bool wedged = false;
  /// Canonical encoding of the node's running slice snapshot.
  std::vector<std::uint8_t> snapshot;
};

/// What happened to one reconfiguration op.
struct OpOutcome {
  std::size_t index = 0;
  ReconfigOp op;
  bool committed = false;
  /// A standby coordinator finished a durable decision.
  bool recovery_used = false;
  /// Descriptions of the control faults applied to this op.
  std::vector<std::string> faults;
  /// True when nothing excuses an abort: no fault at all, or only benign
  /// ones (channel delay / duplicate / coordinator crash mid-COMMIT, which
  /// recovery must absorb), every node alive and none wedged. The
  /// PROTO-COMMIT-EXPECTED invariant asserts committed whenever this is
  /// set.
  bool commit_expected = true;
  std::string reason;               ///< "committed" or the abort cause.
  rtsj::AbsoluteTime applied_at{};  ///< Last apply instant (committed).
  /// Live-node epochs after the op settled (the agreement check input).
  std::map<std::string, std::uint64_t> epochs_after;
  /// Canonical per-node slice deltas (committed reloads) — replayed onto
  /// the task simulator through the real codec.
  std::map<std::string, std::vector<std::uint8_t>> node_deltas;
  /// Virtual-time event log (the artifact of a red drill).
  std::vector<std::string> log;
};

/// The protocol half of one drill.
struct ProtoResult {
  std::vector<ProtoNode> nodes;  ///< Cluster order, final states.
  /// Coordinator's per-node epoch view after the last op.
  std::map<std::string, std::uint64_t> coord_epochs;
  /// Coordinator's per-node snapshot view (canonical bytes).
  std::map<std::string, std::vector<std::uint8_t>> coord_snapshots;
  std::vector<OpOutcome> ops;
  /// Cluster mode after the last committed transition ("" = initial).
  std::string final_mode;
  /// Membership epoch after every applied join/leave event (0 = the
  /// launch view was never changed; docs/MEMBERSHIP.md §1).
  std::uint64_t membership_epoch = 0;
  /// The final membership view's node list.
  std::vector<std::string> final_members;
  /// Join/leave events actually applied (each one validated through the
  /// MEMBER-* rules before adoption).
  std::size_t membership_events_applied = 0;
  /// MEMBER-* failures raised while applying events. Must be empty — the
  /// MEMBERSHIP-CONVERGES invariant treats any entry as a finding.
  std::vector<std::string> membership_errors;
  /// Virtual-time membership event log (joins the drill artifact).
  std::vector<std::string> membership_log;
};

/// Runs every op of `scenario` under `timeline`. Deterministic: pure
/// virtual-time arithmetic, no clocks, no threads.
ProtoResult run_protocol(const Scenario& scenario,
                         const FaultTimeline& timeline,
                         const ProtoOptions& options = {});

}  // namespace rtcf::adversity
