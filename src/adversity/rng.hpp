// Deterministic, platform-independent PRNG for the adversity engine.
//
// Every drill must replay bit-for-bit from a single uint64 seed — on any
// toolchain. std::mt19937 is portable but the std distributions are
// implementation-defined (libstdc++ and libc++ disagree on
// uniform_int_distribution), so all derivations here use exact 64-bit
// arithmetic only: a SplitMix64 core plus modulo-bounded ranges. Modulo
// bias is irrelevant for drill diversity and keeps the stream identical
// everywhere.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "util/assert.hpp"

namespace rtcf::adversity {

/// SplitMix64 stream (Steele/Lea/Flood mixing constants).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Integer in [lo, hi], inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    RTCF_ASSERT(lo <= hi);
    const std::uint64_t span = hi - lo + 1;
    return span == 0 ? next() : lo + next() % span;
  }

  /// True with probability num/den.
  bool chance(std::uint64_t num, std::uint64_t den) {
    RTCF_ASSERT(den != 0);
    return next() % den < num;
  }

  /// One element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    RTCF_ASSERT(!v.empty());
    return v[next() % v.size()];
  }

  /// An independent derived stream — one per link, per op, per subsystem —
  /// so adding a draw in one consumer never shifts another consumer's
  /// stream (the property that keeps failing seeds replayable across
  /// drill-engine refactors). FNV-1a over the tag, folded into the
  /// current state.
  Rng split(std::string_view tag) const noexcept {
    std::uint64_t h = 0xCBF29CE484222325ULL ^ state_;
    for (const char c : tag) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001B3ULL;
    }
    return Rng(h);
  }

 private:
  std::uint64_t state_;
};

}  // namespace rtcf::adversity
