// Seeded random architecture + workload generator (the drill's subject).
//
// From a single uint64 seed, emits an arbitrary-but-valid distributed
// scenario: a component graph with sync/async bindings, scoped-memory
// placements, thread-domain priorities, timing-contract mixes, a mode
// graph with rebinds, a node map, a paired workload script (arrival
// bursts, MIT-violating spikes), and a timeline of reconfiguration ops
// (cluster mode transitions and reload targets mutated from the base
// architecture). Reproducible bit-for-bit: the same seed yields a
// byte-identical adl::save_architecture() rendering on every platform.
//
// Validity is by construction, not by retry: the generator's recipe keeps
// every emitted architecture inside the rule engine's error-free region
// (warnings are allowed, errors never) —
//   * memory areas and thread domains are per-node (no DIST-*-SPAN cuts),
//   * synchronous bindings stay intra-node and intra-area (a legal
//     'direct' pattern always exists),
//   * every sporadic active has an incoming asynchronous trigger binding,
//   * utilization is kept low enough that every mode passes RTA,
//   * mode-managed and reload-mutated components are declared swappable,
//   * rebinds are node-local onto same-signature same-area servers,
//   * tenants own whole nodes (scoping by construction), every
//     cross-tenant binding gets a matching capability export/import, and
//     budgets are derived from the members with headroom.
// The drill (drill.hpp) still *checks* validate() + the DIST-* rules on
// every generated plan — a generator that drifts out of the valid region
// is itself a finding.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/metamodel.hpp"
#include "rtsj/time/time.hpp"
#include "validate/distribution.hpp"

namespace rtcf::adversity {

/// Generator knobs. Defaults produce 2-4 nodes with 2-5 functional
/// components each — small enough for a 200-seed CI sweep, varied enough
/// to exercise every rule family.
struct GenConfig {
  std::size_t min_nodes = 2;
  std::size_t max_nodes = 4;
  std::size_t min_components_per_node = 2;
  std::size_t max_components_per_node = 5;
  std::size_t max_ops = 3;
  /// Upper bound on tenants per scenario (1-3 emitted; each tenant owns a
  /// union of whole nodes, so area/domain scoping holds by construction).
  /// 0 disables tenancy entirely.
  std::size_t max_tenants = 3;
  /// Virtual-time horizon of one drill.
  rtsj::AbsoluteTime horizon =
      rtsj::AbsoluteTime() + rtsj::RelativeTime::milliseconds(250);
};

/// One scripted arrival burst for a sporadic component. `spacing` below
/// the component's minimum interarrival time is a deliberate spike — the
/// excess arrivals are MIT-rejected, which the drill counts as a declared
/// drop policy, not message loss.
struct ArrivalBurst {
  std::string component;
  rtsj::AbsoluteTime start{};
  rtsj::RelativeTime spacing{};
  std::uint32_t count = 0;
};

/// The workload script paired with a generated architecture.
struct Workload {
  std::vector<ArrivalBurst> bursts;
};

/// One scheduled cluster reconfiguration.
struct ReconfigOp {
  enum class Kind {
    ModeTransition,  ///< Two-phase transition to `mode`.
    Reload,          ///< Two-phase reload onto reload_targets[target].
  };
  Kind kind = Kind::ModeTransition;
  std::string mode;        ///< ModeTransition only.
  std::size_t target = 0;  ///< Reload only: index into reload_targets.
  rtsj::AbsoluteTime at{};  ///< Virtual instant the coordinator starts it.
};

/// Everything one seed generates.
struct Scenario {
  std::uint64_t seed = 0;
  model::Architecture arch;  ///< Base (launch-time) global architecture.
  validate::NodeMap node_map;
  Workload workload;
  /// Reconfiguration ops in ascending `at` order, spaced far enough apart
  /// that one transition always settles (commit, abort, or presumed abort)
  /// before the next begins.
  std::vector<ReconfigOp> ops;
  /// Reload targets, each mutated from its predecessor (targets[0] from
  /// `arch`): add a standalone component, remove a swappable one, or
  /// re-period one — always still valid, always a legal delta.
  std::vector<model::Architecture> reload_targets;
  rtsj::AbsoluteTime horizon{};
};

/// Generates the scenario for `seed`. Deterministic and platform-
/// independent: same seed, same bytes.
Scenario generate_scenario(std::uint64_t seed, const GenConfig& config = {});

/// All content-class names referenced by the scenario (base architecture
/// and every reload target) — the drill registers them in the
/// ContentRegistry so the DELTA-CONTENT-UNKNOWN rule sees a truthful
/// class set.
std::vector<std::string> content_classes(const Scenario& scenario);

}  // namespace rtcf::adversity
