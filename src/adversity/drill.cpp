#include "adversity/drill.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <utility>

#include "adversity/rng.hpp"
#include "comm/content.hpp"
#include "dist/cluster_sim.hpp"
#include "dist/plan_codec.hpp"
#include "dist/slice.hpp"
#include "model/metamodel.hpp"
#include "monitor/governor.hpp"
#include "reconfig/sim_mirror.hpp"
#include "runtime/content_registry.hpp"
#include "sim/scheduler.hpp"

namespace rtcf::adversity {

using rtsj::AbsoluteTime;
using rtsj::RelativeTime;

namespace {

/// Trivial content implementation behind every generated content class —
/// the drill exercises class *registration* (DELTA-CONTENT-UNKNOWN), not
/// behaviour.
struct AdvContent final : comm::Content {};

const model::ModeDecl* find_mode(const model::Architecture& arch,
                                 const std::string& name) {
  for (const model::ModeDecl& mode : arch.modes()) {
    if (mode.name == name) return &mode;
  }
  return nullptr;
}

}  // namespace

std::string DrillResult::summary() const {
  std::ostringstream os;
  os << "seed " << seed << " [" << mix.to_string() << "]: "
     << (passed ? "PASS" : "FAIL") << " (" << nodes << " nodes, "
     << components << " components, " << tenants << " tenant"
     << (tenants == 1 ? "" : "s");
  if (!overloaded_tenants.empty()) {
    os << " [overloaded:";
    for (const std::string& name : overloaded_tenants) os << " " << name;
    os << "]";
  }
  os << ", " << ops_committed << "/" << ops_total << " ops committed";
  if (members_joined != 0 || members_left != 0) {
    os << ", churn +" << members_joined << "/-" << members_left
       << " (membership epoch " << membership_epoch << ")";
  }
  if (route_messages != 0) {
    os << ", " << route_messages << " bridged msgs, " << route_drops
       << " dropped, " << route_dups << " duplicated";
  }
  if (route_batches != 0) {
    os << ", " << route_batches << " batches";
    if (route_overflow_drops != 0) {
      os << ", " << route_overflow_drops << " overflow-dropped";
    }
  }
  os << ")";
  if (!passed) os << " — " << violations.size() << " violation(s)";
  return os.str();
}

std::string DrillResult::report() const {
  std::ostringstream os;
  os << summary() << "\n\n" << timeline;
  if (!violations.empty()) {
    os << "\nviolations:\n";
    for (const Violation& v : violations) {
      os << "  " << v.to_string() << "\n";
    }
  }
  if (!membership_log.empty()) {
    os << "\nmembership events:\n";
    for (const std::string& line : membership_log) {
      os << "  " << line << "\n";
    }
  }
  if (!proto_log.empty()) {
    os << "\nprotocol log:\n";
    for (const std::string& line : proto_log) {
      os << "  " << line << "\n";
    }
  }
  return os.str();
}

DrillResult run_drill(const DrillOptions& options) {
  DrillResult result;
  result.seed = options.seed;
  result.mix = options.mix;

  // 1. Generate.
  const Scenario scenario = generate_scenario(options.seed, options.gen);
  const FaultTimeline timeline = generate_timeline(scenario, options.mix);
  result.timeline = timeline.render();
  result.nodes = scenario.node_map.nodes.size();
  result.components =
      scenario.arch.all_of<model::ActiveComponent>().size() +
      scenario.arch.all_of<model::PassiveComponent>().size();
  result.tenants = scenario.arch.tenants().size();
  result.ops_total = scenario.ops.size();

  // 2. Register the generated content classes (the DELTA-CONTENT-UNKNOWN
  // rule consults the registry during every PREPARE vote), then run the
  // protocol model.
  for (const std::string& cls : content_classes(scenario)) {
    runtime::ContentRegistry::instance().register_class<AdvContent>(cls);
  }
  const ProtoResult proto =
      run_protocol(scenario, timeline, options.proto);
  for (const OpOutcome& op : proto.ops) {
    if (op.committed) ++result.ops_committed;
    if (options.trace) {
      for (const std::string& line : op.log) {
        result.proto_log.push_back(line);
      }
    }
  }
  result.membership_epoch = proto.membership_epoch;
  result.membership_log = proto.membership_log;
  for (const ProtoNode& n : proto.nodes) {
    if (!n.member) {
      ++result.members_left;
    } else if (scenario.node_map.node_index(n.name) >=
               scenario.node_map.nodes.size()) {
      ++result.members_joined;  // a member the launch map never declared
    }
  }

  // 3. Replay on the cluster simulator.
  const validate::NodeMap& map = scenario.node_map;
  sim::PreemptiveScheduler scheduler(map.nodes.size());

  auto messages = std::make_shared<std::uint64_t>(0);
  auto drops = std::make_shared<std::uint64_t>(0);
  auto dups = std::make_shared<std::uint64_t>(0);
  dist::LinkPolicy policy;
  const DataChaos& data = timeline.data;
  if (data.drop_permille != 0 || data.dup_permille != 0 ||
      data.delay_permille != 0) {
    const std::uint64_t seed = scenario.seed;
    policy = [seed, data, messages, drops, dups](
                 std::size_t route, std::uint64_t seq) {
      // A pure function of (seed, route, seq): the fate of message #seq on
      // a route never depends on how many messages other routes carried.
      Rng rng = Rng(seed).split("data").split(std::to_string(route) + ":" +
                                              std::to_string(seq));
      dist::LinkFault fault;
      ++*messages;
      if (data.drop_permille != 0 && rng.chance(data.drop_permille, 1000)) {
        fault.drop = true;
        ++*drops;
        return fault;
      }
      if (data.dup_permille != 0 && rng.chance(data.dup_permille, 1000)) {
        fault.copies = 2;
        ++*dups;
      }
      if (data.delay_permille != 0 &&
          rng.chance(data.delay_permille, 1000)) {
        fault.extra_delay = RelativeTime::microseconds(static_cast<
            std::int64_t>(rng.range(
            1, static_cast<std::uint64_t>(data.max_delay.nanos() / 1000))));
      }
      return fault;
    };
  }

  // Mirrored data plane (docs/DATAPLANE.md §8): knobs small enough that
  // batching, the credit window, and the bounded queue all engage at
  // drill scale. CreditStarvation faults become starvation windows on
  // every route whose entry side sits on the starved node.
  dist::SimDataPlane data_plane;
  data_plane.batch_max = 4;
  data_plane.flush_interval = RelativeTime::microseconds(500);
  data_plane.credit_window = 8;
  data_plane.credit_rtt = RelativeTime::microseconds(400);
  data_plane.route_queue_cap = 64;
  data_plane.stats = std::make_shared<std::vector<dist::RouteSimStats>>();
  const std::vector<dist::GatewayRoute> routes =
      dist::compute_routes(scenario.arch, map);
  for (const ControlFault& fault : timeline.control) {
    if (fault.kind != FaultKind::CreditStarvation) continue;
    if (fault.at > scenario.horizon) continue;
    for (std::size_t r = 0; r < routes.size(); ++r) {
      if (routes[r].server_node != fault.node) continue;
      data_plane.starvations.push_back(
          {r, fault.at, fault.at + fault.delay});
    }
  }

  std::vector<dist::NodeMirror> mirrors =
      dist::map_cluster(scenario.arch, map, scheduler,
                        RelativeTime::microseconds(200), policy,
                        data_plane);
  std::vector<model::Architecture> slices;
  slices.reserve(map.nodes.size());
  for (const std::string& node : map.nodes) {
    slices.push_back(dist::slice_architecture(scenario.arch, map, node));
  }

  // Committed ops replay at their virtual commit instants, through the
  // same codec bytes the protocol transmitted.
  std::vector<std::set<std::string>> delta_touched(map.nodes.size());
  for (const OpOutcome& op : proto.ops) {
    if (!op.committed) continue;
    if (op.op.kind == ReconfigOp::Kind::ModeTransition) {
      for (std::size_t k = 0; k < mirrors.size(); ++k) {
        const model::ModeDecl* mode = find_mode(slices[k], op.op.mode);
        if (mode == nullptr) continue;
        reconfig::schedule_mode(scheduler, slices[k], *mode,
                                mirrors[k].mapping, op.applied_at);
      }
    } else {
      for (std::size_t k = 0; k < mirrors.size(); ++k) {
        const auto it = op.node_deltas.find(map.nodes[k]);
        if (it == op.node_deltas.end()) continue;
        reconfig::PlanDelta delta = dist::decode_delta(it->second);
        if (delta.empty()) continue;
        for (const model::ComponentSpec& spec : delta.add_components) {
          delta_touched[k].insert(spec.name);
        }
        for (const model::ComponentSpec& spec : delta.remove_components) {
          delta_touched[k].insert(spec.name);
        }
        for (const reconfig::SettingDelta& setting : delta.settings) {
          delta_touched[k].insert(setting.component);
        }
        dist::schedule_node_delta(scheduler, std::move(delta), mirrors[k],
                                  op.applied_at, AbsoluteTime());
      }
    }
  }

  // Per-tenant governance mirror: the same OverloadGovernor the wall-clock
  // monitor drives, here fed by injected TenantOverload faults and gating
  // every tenant-owned task's releases. Deterministic: gate verdicts
  // depend only on per-task admission sequences and the tenant level at
  // each virtual instant, so a red drill replays bit-for-bit.
  monitor::OverloadGovernor governor;
  std::map<std::string, std::size_t> tenant_ids;
  std::map<std::string, std::string> component_tenant;
  std::map<std::string, model::Criticality> component_crit;
  const auto harvest_tenants = [&](const model::Architecture& arch) {
    for (const model::TenantDecl& tenant : arch.tenants()) {
      if (tenant_ids.count(tenant.name) == 0) {
        tenant_ids.emplace(tenant.name,
                           governor.add_tenant(tenant.name.c_str(),
                                               tenant.criticality_floor));
      }
      for (const std::string& member : tenant.members) {
        component_tenant[member] = tenant.name;
      }
    }
    for (const auto* active : arch.all_of<model::ActiveComponent>()) {
      if (active->criticality()) {
        component_crit[active->name()] = *active->criticality();
      }
    }
  };
  harvest_tenants(scenario.arch);
  for (const model::Architecture& target : scenario.reload_targets) {
    harvest_tenants(target);
  }

  // Node departures: a crash and an orderly drain-leave replay the same
  // way — mass disablement of the node's tasks at the departure instant
  // (scheduled after the ops so delta-added tasks are covered). The
  // difference lives in the protocol model: a leave is an epoch-bumped
  // eviction the MEMBERSHIP-CONVERGES invariant audits, a crash is not.
  std::vector<bool> node_crashed(map.nodes.size(), false);
  for (const ControlFault& fault : timeline.control) {
    if (fault.kind != FaultKind::NodeCrash &&
        fault.kind != FaultKind::MemberLeave) {
      continue;
    }
    if (fault.at > scenario.horizon) continue;
    const std::size_t k = map.node_index(fault.node);
    if (k >= mirrors.size() || node_crashed[k]) continue;
    node_crashed[k] = true;
    dist::schedule_node_down(scheduler, mirrors[k], fault.at);
  }

  // Release gates for every tenant-owned task (set after the ops so
  // delta-added tasks are covered too); the operator slice and synthesized
  // gateways stay ungated.
  std::map<std::string, std::size_t> governed;
  for (const dist::NodeMirror& mirror : mirrors) {
    for (const auto& [name, id] : mirror.mapping.tasks) {
      const auto tenant_it = component_tenant.find(name);
      if (tenant_it == component_tenant.end()) continue;
      const auto crit_it = component_crit.find(name);
      const model::Criticality crit = crit_it == component_crit.end()
                                          ? model::Criticality::Low
                                          : crit_it->second;
      const std::size_t gid = governor.add_component(
          tenant_it->first.c_str(), crit, tenant_ids.at(tenant_it->second));
      governed.emplace(name, gid);
      scheduler.set_release_gate(
          id, [&governor, gid](sim::TaskId, std::uint64_t) {
            return governor.admit_release(gid) ==
                   monitor::OverloadGovernor::Admission::Run;
          });
    }
  }

  // Injected overloads, ordered: at each instant the targeted tenant's
  // first Low-criticality member delivers enough bad contract windows to
  // escalate its envelope to Shed.
  struct OverloadEvent {
    AbsoluteTime t;
    std::string tenant;
  };
  std::vector<OverloadEvent> overload_events;
  for (const ControlFault& fault : timeline.control) {
    if (fault.kind != FaultKind::TenantOverload) continue;
    if (fault.at > scenario.horizon) continue;
    overload_events.push_back({fault.at, fault.tenant});
  }
  std::stable_sort(overload_events.begin(), overload_events.end(),
                   [](const OverloadEvent& a, const OverloadEvent& b) {
                     return a.t < b.t;
                   });
  std::set<std::string> overloaded_tenants;
  std::size_t next_overload = 0;
  const auto drive_overloads_until = [&](AbsoluteTime t) {
    for (; next_overload < overload_events.size() &&
           overload_events[next_overload].t <= t;
         ++next_overload) {
      const OverloadEvent& event = overload_events[next_overload];
      scheduler.run_until(event.t);
      for (const auto& [name, gid] : governed) {
        if (component_tenant.at(name) != event.tenant) continue;
        if (governor.component_criticality(gid) !=
            model::Criticality::Low) {
          continue;
        }
        // Two bad windows per escalation step, two steps to Shed.
        for (int i = 0; i < 4; ++i) governor.on_window_violated(gid);
        overloaded_tenants.insert(event.tenant);
        break;
      }
    }
  };

  // Workload: arrival posts stepped through virtual time in order, so the
  // sporadic MIT accounting matches the generator's burst script.
  struct Post {
    AbsoluteTime t;
    sim::TaskId task;
  };
  std::vector<Post> posts;
  for (const ArrivalBurst& burst : scenario.workload.bursts) {
    sim::TaskId task = 0;
    bool found = false;
    for (const dist::NodeMirror& mirror : mirrors) {
      if (mirror.mapping.has(burst.component)) {
        task = mirror.mapping.task(burst.component);
        found = true;
        break;
      }
    }
    if (!found) continue;
    for (std::uint32_t k = 0; k < burst.count; ++k) {
      posts.push_back({burst.start + burst.spacing * k, task});
    }
  }
  std::stable_sort(posts.begin(), posts.end(),
                   [](const Post& a, const Post& b) { return a.t < b.t; });
  for (const Post& post : posts) {
    drive_overloads_until(post.t);
    scheduler.run_until(post.t);
    scheduler.post_arrival(post.task, post.t);
  }
  drive_overloads_until(scenario.horizon);
  scheduler.run_until(scenario.horizon);
  result.route_messages = *messages;
  result.route_drops = *drops;
  result.route_dups = *dups;
  for (const dist::RouteSimStats& s : *data_plane.stats) {
    result.route_batches += s.batches;
    result.route_overflow_drops += s.overflow_dropped;
  }

  // 4. Mechanical invariants.
  check_generated_valid(scenario, result.violations);
  check_codec_roundtrip(scenario, proto, result.violations);
  check_adl_roundtrip(scenario, result.violations);
  check_protocol(proto, result.violations);
  check_membership(proto, result.violations);

  SimAudit audit;
  for (std::size_t k = 0; k < mirrors.size(); ++k) {
    std::set<std::string> mode_managed;
    for (const model::ModeDecl& mode : slices[k].modes()) {
      for (const model::ModeComponentConfig& entry : mode.components) {
        mode_managed.insert(entry.component);
      }
    }
    for (const auto& [name, id] : mirrors[k].mapping.tasks) {
      const sim::TaskConfig& config = scheduler.config(id);
      const sim::TaskStats& stats = scheduler.stats(id);
      SimAudit::TaskSample sample;
      sample.node = map.nodes[k];
      sample.component = name;
      const auto tenant_it = component_tenant.find(name);
      if (tenant_it != component_tenant.end()) {
        sample.tenant = tenant_it->second;
        sample.tenant_overloaded =
            overloaded_tenants.count(tenant_it->second) != 0;
      }
      sample.sporadic = config.release != rtsj::ReleaseKind::Periodic;
      sample.untouched_periodic =
          !sample.sporadic && !node_crashed[k] &&
          mode_managed.count(name) == 0 &&
          delta_touched[k].count(name) == 0 &&
          name.rfind("__gw", 0) != 0 && !sample.tenant_overloaded;
      sample.arrivals_posted = stats.arrivals_posted;
      sample.rejected_arrivals = stats.rejected_arrivals;
      sample.disabled_arrivals = stats.disabled_arrivals;
      sample.shed_releases = stats.shed_releases;
      sample.releases_completed = stats.releases_completed;
      sample.pending_arrivals = stats.pending_arrivals;
      sample.queued_jobs = scheduler.queued_jobs(id);
      sample.deadline_misses = stats.deadline_misses;
      audit.tasks.push_back(std::move(sample));
    }
  }
  audit.routes = *data_plane.stats;
  audit.overloaded_tenants.assign(overloaded_tenants.begin(),
                                  overloaded_tenants.end());
  result.overloaded_tenants = audit.overloaded_tenants;
  for (const auto& decision : governor.decisions()) {
    audit.governor_transition_tenants.push_back(decision.tenant);
  }
  check_sim(audit, result.violations);

  result.passed = result.violations.empty();
  return result;
}

}  // namespace rtcf::adversity
