// Mechanical invariant checks of one adversity drill.
//
// Every check is a universal property that must hold *whatever* the fault
// timeline did — that is what makes a violation a finding rather than a
// flaky assertion:
//
//   GEN-VALID                 every generated architecture (base and every
//                             reload target) passes the full rule engine
//                             and the DIST-* cut rules error-free
//   CODEC-ROUNDTRIP           decode(encode(x)) re-encodes to identical
//                             bytes for every generated plan and every
//                             transmitted slice delta
//   ADL-ROUNDTRIP             save -> load -> save is byte-identical for
//                             every generated architecture (also the hook
//                             that drives the loader's error paths)
//   PROTO-EPOCH-AGREEMENT     after every op, all live nodes report the
//                             same epoch — and at drill end the
//                             coordinator's per-node view matches
//   PROTO-SNAPSHOT-AGREEMENT  at drill end, every live node's snapshot
//                             bytes equal the coordinator's view
//   PROTO-COMMIT-EXPECTED     an op no non-benign fault touched committed
//   PROTO-WEDGED              no node is parked-prepared at drill end
//                             (liveness: presumed abort must have fired)
//   MEMBERSHIP-CONVERGES      every applied join/leave passed the
//                             MEMBER-* rules, the final view agrees with
//                             every node's member flag and the
//                             coordinator's per-node view, and all live
//                             members converge on one cluster epoch —
//                             whatever churn the timeline injected
//   SIM-CONSERVATION          for every sporadic task: arrivals posted ==
//                             rejected + disabled + shed + completed +
//                             pending + queued (zero message loss outside
//                             declared drop policies)
//   SIM-DEADLINE-UNTOUCHED    periodic tasks on live nodes that no mode,
//                             delta, or fault touches miss no deadline
//   TENANT-ISOLATION          overload injected into tenant A stays in
//                             tenant A: a task of a tenant that was never
//                             overload-targeted sheds no release, and the
//                             governor records no level transition for
//                             such a tenant — degradation never crosses
//                             the tenant boundary
//   DATA-CONSERVATION         for every bridged route of the mirrored
//                             data plane: offered == delivered +
//                             chaos_dropped + overflow_dropped + queued —
//                             batching, credit stalls, and starvation
//                             windows may delay or (declaredly) drop
//                             messages, never lose them silently
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "adversity/arch_gen.hpp"
#include "adversity/proto_sim.hpp"
#include "dist/cluster_sim.hpp"

namespace rtcf::adversity {

/// One invariant violation — the unit a red drill reports.
struct Violation {
  std::string invariant;  ///< Stable tag (e.g. "PROTO-EPOCH-AGREEMENT").
  std::string subject;    ///< Node / component / op concerned.
  std::string detail;

  std::string to_string() const;
};

/// GEN-VALID over the base architecture and every reload target.
void check_generated_valid(const Scenario& scenario,
                           std::vector<Violation>& out);

/// CODEC-ROUNDTRIP over every generated plan and every slice delta the
/// protocol run transmitted.
void check_codec_roundtrip(const Scenario& scenario,
                           const ProtoResult& proto,
                           std::vector<Violation>& out);

/// ADL-ROUNDTRIP over the base architecture and every reload target.
void check_adl_roundtrip(const Scenario& scenario,
                         std::vector<Violation>& out);

/// The PROTO-* invariants over a finished protocol run.
void check_protocol(const ProtoResult& proto, std::vector<Violation>& out);

/// MEMBERSHIP-CONVERGES over a finished protocol run's membership churn.
void check_membership(const ProtoResult& proto,
                      std::vector<Violation>& out);

/// Per-task observations the replay (drill.cpp) collects from the
/// scheduler, reduced to what the SIM-* invariants need.
struct SimAudit {
  struct TaskSample {
    std::string node;
    std::string component;
    /// Owning tenant; empty for the operator slice (gateways included).
    std::string tenant;
    /// True when an injected TenantOverload targeted this task's tenant.
    bool tenant_overloaded = false;
    bool sporadic = false;
    /// Periodic, on a live node, untouched by every mode, committed
    /// delta, gateway role, and tenant overload — the no-deadline-miss
    /// population.
    bool untouched_periodic = false;
    std::uint64_t arrivals_posted = 0;
    std::uint64_t rejected_arrivals = 0;
    std::uint64_t disabled_arrivals = 0;
    std::uint64_t shed_releases = 0;
    std::uint64_t releases_completed = 0;
    std::uint64_t pending_arrivals = 0;
    std::uint64_t queued_jobs = 0;
    std::uint64_t deadline_misses = 0;
  };
  std::vector<TaskSample> tasks;
  /// Tenants an injected TenantOverload fault actually escalated.
  std::vector<std::string> overloaded_tenants;
  /// Tenant of every governor level transition the replay recorded, in
  /// decision order ("" = the implicit default envelope).
  std::vector<std::string> governor_transition_tenants;
  /// Per-route counters of the mirrored data plane, in compute_routes
  /// order (the DATA-CONSERVATION input).
  std::vector<dist::RouteSimStats> routes;
};

/// SIM-CONSERVATION, SIM-DEADLINE-UNTOUCHED, TENANT-ISOLATION, and
/// DATA-CONSERVATION over a replay audit.
void check_sim(const SimAudit& audit, std::vector<Violation>& out);

}  // namespace rtcf::adversity
