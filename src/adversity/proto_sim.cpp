#include "adversity/proto_sim.hpp"

#include <algorithm>
#include <optional>
#include <sstream>
#include <utility>

#include "dist/plan_codec.hpp"
#include "dist/slice.hpp"
#include "model/assembly_plan.hpp"
#include "reconfig/plan_delta.hpp"
#include "soleil/plan.hpp"
#include "util/assert.hpp"
#include "validate/distribution.hpp"
#include "validate/validator.hpp"

namespace rtcf::adversity {

using model::AssemblyPlan;
using rtsj::AbsoluteTime;
using rtsj::RelativeTime;

namespace {

std::string fmt_t(AbsoluteTime t) {
  std::ostringstream os;
  os << (t - AbsoluteTime()).nanos() / 1000 << "us";
  return os.str();
}

std::vector<std::uint8_t> encode_slice(const model::Architecture& global,
                                       const validate::NodeMap& map,
                                       const std::string& node) {
  return dist::encode_plan(soleil::snapshot_assembly(
      dist::slice_architecture(global, map, node), /*partitions=*/1));
}

const ControlFault* find_op_fault(const FaultTimeline& timeline,
                                  FaultKind kind, std::size_t op) {
  for (const ControlFault& f : timeline.control) {
    if (f.kind == kind && f.op == op) return &f;
  }
  return nullptr;
}

const ControlFault* find_op_node_fault(const FaultTimeline& timeline,
                                       FaultKind kind, std::size_t op,
                                       const std::string& node) {
  for (const ControlFault& f : timeline.control) {
    if (f.kind == kind && f.op == op && f.node == node) return &f;
  }
  return nullptr;
}

/// One node's behaviour during a PREPARE sweep.
struct Vote {
  bool voted = false;              ///< The node produced a vote.
  bool ok = false;                 ///< PREPARE_OK.
  bool lost = false;               ///< The vote frame was dropped.
  AbsoluteTime voted_at{};         ///< When the node voted (parked since).
  AbsoluteTime arrival{};          ///< Coordinator-side arrival.
  std::string detail;              ///< Failure cause.
};

}  // namespace

ProtoResult run_protocol(const Scenario& scenario,
                         const FaultTimeline& timeline,
                         const ProtoOptions& options) {
  const validate::NodeMap& map = scenario.node_map;
  ProtoResult result;

  // Launch: the coordinator and every node snapshot the same slices.
  const model::Architecture* running = &scenario.arch;
  for (const std::string& node : map.nodes) {
    ProtoNode n;
    n.name = node;
    n.snapshot = encode_slice(*running, map, node);
    result.coord_snapshots[node] = n.snapshot;
    result.coord_epochs[node] = 0;
    result.nodes.push_back(std::move(n));
  }
  const auto node_state = [&result](const std::string& name) -> ProtoNode& {
    for (ProtoNode& n : result.nodes) {
      if (n.name == name) return n;
    }
    RTCF_ASSERT(false && "unknown node");
    return result.nodes.front();
  };

  // Scheduled node deaths (honest time comparisons: an event at or after
  // the crash instant never happens on that node).
  std::map<std::string, AbsoluteTime> crash_at;
  for (const ControlFault& f : timeline.control) {
    if (f.kind != FaultKind::NodeCrash) continue;
    const auto it = crash_at.find(f.node);
    if (it == crash_at.end() || f.at < it->second) crash_at[f.node] = f.at;
  }
  const auto is_dead = [&crash_at](const std::string& node,
                                   AbsoluteTime when) {
    const auto it = crash_at.find(node);
    return it != crash_at.end() && it->second <= when;
  };

  // Membership churn: joins and drain-leaves applied at op boundaries in
  // virtual time, each one through the real MembershipView transitions
  // and the MEMBER-* rules (docs/MEMBERSHIP.md).
  validate::MembershipView view;
  view.map = map;
  struct MemberEvent {
    bool join = false;
    std::string node;
    AbsoluteTime at{};
  };
  std::vector<MemberEvent> member_events;
  for (const ControlFault& f : timeline.control) {
    if (f.kind == FaultKind::MemberJoin) {
      member_events.push_back({true, f.node, f.at});
    } else if (f.kind == FaultKind::MemberLeave) {
      member_events.push_back({false, f.node, f.at});
    }
  }
  std::stable_sort(member_events.begin(), member_events.end(),
                   [](const MemberEvent& a, const MemberEvent& b) {
                     return a.at < b.at;
                   });
  const auto record_member_errors = [&result](const validate::Report& rep,
                                              const std::string& what) {
    for (const validate::Diagnostic& d : rep.diagnostics()) {
      if (d.severity != validate::Severity::Error) continue;
      result.membership_errors.push_back(what + ": " + d.rule + " on " +
                                         d.subject + ": " + d.message);
    }
  };
  // Every membership change is an epoch-bumping reconfiguration for the
  // whole cluster (the re-shard commit): live members move to a common
  // next epoch, which keeps the agreement invariant meaningful across
  // churn.
  const auto bump_members = [&result]() {
    std::uint64_t next = 0;
    for (const ProtoNode& n : result.nodes) {
      if (n.alive && n.member) next = std::max(next, n.epoch);
    }
    ++next;
    for (ProtoNode& n : result.nodes) {
      if (!n.alive || !n.member) continue;
      n.epoch = next;
      result.coord_epochs[n.name] = next;
    }
    return next;
  };
  bool leave_applied = false;
  std::size_t next_member_event = 0;
  const auto apply_membership_until = [&](AbsoluteTime t) {
    for (; next_member_event < member_events.size() &&
           member_events[next_member_event].at <= t;
         ++next_member_event) {
      const MemberEvent& event = member_events[next_member_event];
      const bool is_member =
          std::find(view.map.nodes.begin(), view.map.nodes.end(),
                    event.node) != view.map.nodes.end();
      if (event.join) {
        if (is_member) continue;  // duplicate join: a no-op
        const validate::MembershipView proposed = view.admit(event.node);
        const validate::Report rep = validate_membership(view, proposed);
        if (!rep.ok()) {
          record_member_errors(rep, "admit " + event.node);
          continue;
        }
        view = proposed;
        ProtoNode n;
        n.name = event.node;
        n.snapshot = encode_slice(*running, view.map, event.node);
        result.coord_snapshots[event.node] = n.snapshot;
        result.nodes.push_back(std::move(n));
        // The admission re-shard: every member (the joiner included, its
        // epoch resynced from the committed snapshot) lands on the next
        // common cluster epoch.
        const std::uint64_t epoch = bump_members();
        ++result.membership_events_applied;
        result.membership_log.push_back(
            "[" + fmt_t(event.at) + "] admit " + event.node +
            " (empty slice); membership epoch -> " +
            std::to_string(view.epoch) + ", cluster epoch -> " +
            std::to_string(epoch));
      } else {
        if (!is_member || view.map.nodes.size() <= 1) continue;
        // Drain first: the leaver keeps membership while its assignments
        // are re-sharded away; only the empty node is evicted.
        validate::NodeMap drained = view.map;
        for (auto it = drained.assignment.begin();
             it != drained.assignment.end();) {
          if (it->second == event.node) {
            it = drained.assignment.erase(it);
          } else {
            ++it;
          }
        }
        const validate::MembershipView after_drain = view.reshard(drained);
        const validate::Report drain_rep =
            validate_membership(view, after_drain);
        if (!drain_rep.ok()) {
          record_member_errors(drain_rep, "drain " + event.node);
          continue;
        }
        const validate::MembershipView after_evict =
            after_drain.evict(event.node);
        const validate::Report evict_rep =
            validate_membership(after_drain, after_evict);
        if (!evict_rep.ok()) {
          record_member_errors(evict_rep, "evict " + event.node);
          continue;
        }
        view = after_evict;
        node_state(event.node).member = false;
        result.coord_epochs.erase(event.node);
        result.coord_snapshots.erase(event.node);
        const std::uint64_t epoch = bump_members();
        leave_applied = true;
        ++result.membership_events_applied;
        result.membership_log.push_back(
            "[" + fmt_t(event.at) + "] drain and evict " + event.node +
            "; membership epoch -> " + std::to_string(view.epoch) +
            ", cluster epoch -> " + std::to_string(epoch));
      }
    }
  };

  for (std::size_t i = 0; i < scenario.ops.size(); ++i) {
    const ReconfigOp& op = scenario.ops[i];
    OpOutcome out;
    out.index = i;
    out.op = op;
    const AbsoluteTime t0 = op.at;
    apply_membership_until(t0);
    const std::vector<std::string> members = view.map.nodes;
    const auto log = [&out](AbsoluteTime t, const std::string& msg) {
      out.log.push_back("[" + fmt_t(t) + "] " + msg);
    };

    // Faults scoped to this op.
    const ControlFault* coord_prep =
        find_op_fault(timeline, FaultKind::CoordCrashMidPrepare, i);
    const ControlFault* coord_commit =
        find_op_fault(timeline, FaultKind::CoordCrashMidCommit, i);
    for (const ControlFault& f : timeline.control) {
      const bool op_scoped = f.kind != FaultKind::NodeCrash && f.op == i;
      const bool crash_scoped =
          f.kind == FaultKind::NodeCrash &&
          f.at < t0 + options.decision_timeout;
      if (op_scoped || crash_scoped) out.faults.push_back(f.describe());
    }

    // Commit is expected unless something non-benign interferes: benign =
    // channel delay, duplicate, and a mid-COMMIT coordinator crash (which
    // recovery absorbs).
    const bool any_wedged = std::any_of(
        result.nodes.begin(), result.nodes.end(),
        [](const ProtoNode& n) { return n.wedged; });
    const bool any_dead_soon = std::any_of(
        members.begin(), members.end(),
        [&](const std::string& n) {
          return is_dead(n, t0 + options.decision_timeout);
        });
    // A drain-leave retires the leaver's slice; reload targets generated
    // against the full cluster may no longer be placeable, so an abort
    // after a leave is a legitimate verdict, not a finding.
    out.commit_expected =
        coord_prep == nullptr && !any_wedged && !any_dead_soon &&
        !(leave_applied && op.kind == ReconfigOp::Kind::Reload) &&
        find_op_fault(timeline, FaultKind::Straggler, i) == nullptr &&
        find_op_fault(timeline, FaultKind::ChannelDrop, i) == nullptr;

    log(t0, (op.kind == ReconfigOp::Kind::ModeTransition
                 ? "coordinate_transition('" + op.mode + "')"
                 : "coordinate_reload(target " +
                       std::to_string(op.target) + ")"));

    // Phase 0 (reloads): global validation + per-node slice deltas.
    std::map<std::string, std::vector<std::uint8_t>> target_bytes;
    std::map<std::string, std::vector<std::uint8_t>> delta_bytes;
    const model::Architecture* target_arch = nullptr;
    bool pre_abort = false;
    if (op.kind == ReconfigOp::Kind::Reload) {
      target_arch = &scenario.reload_targets[op.target];
      validate::Report global = validate::validate(*target_arch);
      const AssemblyPlan global_plan =
          soleil::snapshot_assembly(*target_arch, /*partitions=*/1);
      const validate::Report dist_report =
          validate::validate_distribution(global_plan, view.map);
      if (!global.ok() || !dist_report.ok()) {
        out.reason = "global validation failed";
        log(t0, "abort: " + out.reason);
        pre_abort = true;
      } else {
        bool any_delta = false;
        for (const std::string& node : members) {
          const AssemblyPlan target_plan = soleil::snapshot_assembly(
              dist::slice_architecture(*target_arch, view.map, node),
              /*partitions=*/1);
          const reconfig::PlanDelta delta = reconfig::diff_plans(
              dist::decode_plan(result.coord_snapshots.at(node)),
              target_plan);
          any_delta = any_delta || !delta.empty();
          target_bytes[node] = dist::encode_plan(target_plan);
          delta_bytes[node] = dist::encode_delta(delta);
        }
        if (!any_delta) {
          out.reason = "cluster no-op";
          log(t0, "abort: " + out.reason);
          pre_abort = true;
        }
      }
    }

    if (!pre_abort) {
      // PREPARE sweep.
      std::map<std::string, Vote> votes;
      for (std::size_t idx = 0; idx < members.size(); ++idx) {
        const std::string& node = members[idx];
        if (coord_prep != nullptr && idx >= coord_prep->after) {
          log(t0, "coordinator crashed mid-PREPARE; " + node +
                      " never receives PREPARE");
          continue;
        }
        const ControlFault* drop = find_op_node_fault(
            timeline, FaultKind::ChannelDrop, i, node);
        if (drop != nullptr && drop->drop_prepare) {
          log(t0, "PREPARE frame to " + node + " dropped");
          continue;
        }
        const AbsoluteTime recv = t0 + options.link_latency;
        if (is_dead(node, recv)) {
          log(recv, node + " is down; PREPARE undeliverable");
          continue;
        }
        Vote v;
        v.voted = true;
        v.voted_at = recv;
        ProtoNode& state = node_state(node);
        if (state.wedged) {
          v.ok = false;
          v.detail = "wedged (parked since an undecided transition)";
        } else if (op.kind == ReconfigOp::Kind::Reload) {
          // The real node-side checks: decode, re-derive, byte-compare,
          // rule-check.
          const AssemblyPlan my_running = dist::decode_plan(state.snapshot);
          const AssemblyPlan target_plan =
              dist::decode_plan(target_bytes.at(node));
          const reconfig::PlanDelta my_delta =
              reconfig::diff_plans(my_running, target_plan);
          if (dist::encode_delta(my_delta) != delta_bytes.at(node)) {
            v.ok = false;
            v.detail = "delta disagreement";
          } else {
            validate::Report local;
            reconfig::check_delta_rules(my_delta, my_running, target_plan,
                                        local);
            v.ok = local.ok();
            if (!v.ok) v.detail = local.diagnostics().front().rule;
          }
        } else {
          v.ok = true;
        }
        // Vote leg: straggler / benign delay / loss / duplication.
        v.arrival = recv + options.link_latency;
        if (const ControlFault* s = find_op_node_fault(
                timeline, FaultKind::Straggler, i, node)) {
          v.arrival = v.arrival + s->delay;
          log(v.voted_at, node + " vote delayed " +
                              std::to_string(s->delay.nanos() / 1000) +
                              "us (straggler)");
        }
        if (const ControlFault* d = find_op_node_fault(
                timeline, FaultKind::ChannelDelay, i, node)) {
          v.arrival = v.arrival + d->delay;
        }
        if (drop != nullptr && !drop->drop_prepare) {
          v.lost = true;
          log(v.voted_at, node + " vote frame dropped");
        }
        if (find_op_node_fault(timeline, FaultKind::ChannelDuplicate, i,
                               node) != nullptr) {
          log(v.arrival, "duplicate vote from " + node +
                             " filtered by txn id");
        }
        log(v.voted_at, node + (v.ok ? " votes PREPARE_OK"
                                     : " votes PREPARE_FAIL (" + v.detail +
                                           ")"));
        votes[node] = v;
      }

      if (coord_prep != nullptr) {
        // No decision exists. Prepared nodes run the presumed-abort timer
        // — or wedge forever under the injected bug.
        out.committed = false;
        out.reason = "coordinator crashed mid-PREPARE; presumed abort";
        for (const std::string& node : members) {
          const auto it = votes.find(node);
          if (it == votes.end() || !it->second.voted || !it->second.ok) {
            continue;
          }
          ProtoNode& state = node_state(node);
          if (options.bug_skip_presumed_abort) {
            state.wedged = true;
            log(it->second.voted_at,
                node + " parked prepared; presumed-abort timer SKIPPED "
                       "(injected bug) — node wedged");
          } else {
            log(it->second.voted_at + options.decision_timeout,
                node + " presumed abort (no decision within timeout); "
                       "released with old epoch");
          }
        }
      } else {
        // Decide.
        const AbsoluteTime prepare_deadline = t0 + options.prepare_timeout;
        AbsoluteTime t_decide = t0;
        bool commit = true;
        for (const std::string& node : members) {
          const auto it = votes.find(node);
          const Vote* v = it == votes.end() ? nullptr : &it->second;
          if (v != nullptr && v->voted && !v->ok &&
              v->arrival <= prepare_deadline && !v->lost) {
            commit = false;
            out.reason = "prepare-fail: " + node + " (" + v->detail + ")";
            t_decide = std::max(t_decide, v->arrival);
            break;
          }
          if (v == nullptr || !v->voted) {
            commit = false;
            out.reason = is_dead(node, t0 + options.link_latency)
                             ? "unreachable: " + node
                             : "no vote from " + node;
            t_decide = prepare_deadline;
            break;
          }
          if (v->lost || v->arrival > prepare_deadline) {
            commit = false;
            out.reason = v->lost ? "vote lost: " + node
                                 : "straggler: " + node;
            t_decide = prepare_deadline;
            break;
          }
          t_decide = std::max(t_decide, v->arrival);
        }
        log(t_decide, commit
                          ? "decision durable: COMMIT"
                          : "decision durable: ABORT (" + out.reason + ")");

        // Decision sweep. The decision is durable before the first frame
        // leaves, so a mid-COMMIT coordinator crash is absorbed by a
        // standby re-send — always inside every prepared node's
        // presumed-abort window.
        AbsoluteTime last_apply = t_decide;
        for (std::size_t idx = 0; idx < members.size(); ++idx) {
          const std::string& node = members[idx];
          const bool primary_sent =
              coord_commit == nullptr || idx < coord_commit->after;
          AbsoluteTime arrival = t_decide + options.link_latency;
          if (coord_commit != nullptr) {
            out.recovery_used = true;
            const AbsoluteTime standby_arrival =
                t_decide + options.recovery_delay + options.link_latency;
            if (!primary_sent) {
              arrival = standby_arrival;
            } else {
              log(standby_arrival, "duplicate decision at " + node +
                                       " filtered by txn id");
            }
          }
          if (is_dead(node, arrival)) {
            log(arrival, node + " is down; decision undeliverable");
            continue;
          }
          ProtoNode& state = node_state(node);
          const auto it = votes.find(node);
          const bool was_prepared =
              it != votes.end() && it->second.voted && it->second.ok;
          if (commit) {
            state.epoch += 1;
            result.coord_epochs[node] = state.epoch;
            if (op.kind == ReconfigOp::Kind::Reload) {
              state.snapshot = target_bytes.at(node);
              result.coord_snapshots[node] = target_bytes.at(node);
            }
            last_apply = std::max(last_apply, arrival);
            log(arrival, node + " applies; epoch -> " +
                             std::to_string(state.epoch));
          } else if (was_prepared) {
            log(arrival, node + " releases (abort); epoch unchanged");
          }
        }
        if (coord_commit != nullptr) {
          log(t_decide + options.recovery_delay,
              "standby coordinator re-sends the durable decision");
        }
        out.committed = commit;
        if (commit) {
          out.reason = "committed";
          out.applied_at = last_apply;
          if (op.kind == ReconfigOp::Kind::Reload) {
            running = target_arch;
            out.node_deltas = delta_bytes;
          } else {
            result.final_mode = op.mode;
          }
        }
      }
    }

    const AbsoluteTime settle = t0 + options.decision_timeout;
    for (const ProtoNode& n : result.nodes) {
      if (n.member && !is_dead(n.name, settle)) {
        out.epochs_after[n.name] = n.epoch;
      }
    }
    result.ops.push_back(std::move(out));
  }

  // Membership events after the last op still apply before the horizon.
  apply_membership_until(scenario.horizon);
  result.membership_epoch = view.epoch;
  result.final_members = view.map.nodes;

  // Finalize node liveness over the drill horizon.
  for (ProtoNode& n : result.nodes) {
    const auto it = crash_at.find(n.name);
    if (it != crash_at.end() && it->second <= scenario.horizon) {
      n.alive = false;
      n.crashed_at = it->second;
    }
  }
  return result;
}

}  // namespace rtcf::adversity
