#include "adversity/chaos.hpp"

#include <sstream>
#include <stdexcept>

#include "adversity/rng.hpp"

namespace rtcf::adversity {

using rtsj::AbsoluteTime;
using rtsj::RelativeTime;

namespace {

const std::vector<FaultKind>& all_kinds() {
  static const std::vector<FaultKind> kinds = {
      FaultKind::NodeCrash,          FaultKind::ChannelDrop,
      FaultKind::ChannelDelay,       FaultKind::ChannelDuplicate,
      FaultKind::Straggler,          FaultKind::CoordCrashMidPrepare,
      FaultKind::CoordCrashMidCommit, FaultKind::TenantOverload,
      FaultKind::CreditStarvation,    FaultKind::MemberJoin,
      FaultKind::MemberLeave,
  };
  return kinds;
}

}  // namespace

const char* to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::NodeCrash:
      return "crash";
    case FaultKind::ChannelDrop:
      return "drop";
    case FaultKind::ChannelDelay:
      return "delay";
    case FaultKind::ChannelDuplicate:
      return "dup";
    case FaultKind::Straggler:
      return "straggler";
    case FaultKind::CoordCrashMidPrepare:
      return "coord-prepare";
    case FaultKind::CoordCrashMidCommit:
      return "coord-commit";
    case FaultKind::TenantOverload:
      return "overload";
    case FaultKind::CreditStarvation:
      return "starve";
    case FaultKind::MemberJoin:
      return "join";
    case FaultKind::MemberLeave:
      return "leave";
  }
  return "?";
}

bool FaultMix::has(FaultKind kind) const noexcept {
  for (const FaultKind k : kinds) {
    if (k == kind) return true;
  }
  return false;
}

FaultMix FaultMix::all() {
  FaultMix mix;
  mix.kinds = all_kinds();
  return mix;
}

FaultMix FaultMix::parse(const std::string& csv) {
  if (csv.empty() || csv == "all") return all();
  FaultMix mix;
  const auto add = [&mix](FaultKind kind) {
    if (!mix.has(kind)) mix.kinds.push_back(kind);
  };
  std::istringstream in(csv);
  std::string token;
  while (std::getline(in, token, ',')) {
    if (token.empty()) continue;
    if (token == "coord") {
      add(FaultKind::CoordCrashMidPrepare);
      add(FaultKind::CoordCrashMidCommit);
      continue;
    }
    if (token == "churn") {
      // The membership mix: live joins and drains plus every way the
      // cluster loses an endpoint mid-reconfiguration.
      add(FaultKind::MemberJoin);
      add(FaultKind::MemberLeave);
      add(FaultKind::NodeCrash);
      add(FaultKind::CoordCrashMidPrepare);
      add(FaultKind::CoordCrashMidCommit);
      continue;
    }
    bool known = false;
    for (const FaultKind kind : all_kinds()) {
      if (token == adversity::to_string(kind)) {
        add(kind);
        known = true;
        break;
      }
    }
    if (!known) {
      throw std::invalid_argument("unknown fault kind '" + token +
                                  "' (known: crash,drop,delay,dup,"
                                  "straggler,coord-prepare,coord-commit,"
                                  "overload,starve,join,leave)");
    }
  }
  if (mix.kinds.empty()) return all();
  return mix;
}

std::string FaultMix::to_string() const {
  std::string out;
  for (const FaultKind kind : kinds) {
    if (!out.empty()) out += ",";
    out += adversity::to_string(kind);
  }
  return out;
}

std::string ControlFault::describe() const {
  std::ostringstream os;
  os << adversity::to_string(kind);
  switch (kind) {
    case FaultKind::NodeCrash:
      os << " node=" << node << " at=" << (at - AbsoluteTime()).to_micros()
         << "us";
      break;
    case FaultKind::ChannelDrop:
      os << " op=" << op << " node=" << node
         << (drop_prepare ? " frame=prepare" : " frame=vote");
      break;
    case FaultKind::ChannelDelay:
    case FaultKind::Straggler:
      os << " op=" << op << " node=" << node
         << " delay=" << delay.to_micros() << "us";
      break;
    case FaultKind::ChannelDuplicate:
      os << " op=" << op << " node=" << node << " frame=vote";
      break;
    case FaultKind::CoordCrashMidPrepare:
    case FaultKind::CoordCrashMidCommit:
      os << " op=" << op << " after=" << after << " frames";
      break;
    case FaultKind::TenantOverload:
      os << " tenant=" << tenant
         << " at=" << (at - AbsoluteTime()).to_micros() << "us";
      break;
    case FaultKind::CreditStarvation:
      os << " node=" << node << " at=" << (at - AbsoluteTime()).to_micros()
         << "us window=" << delay.to_micros() << "us";
      break;
    case FaultKind::MemberJoin:
    case FaultKind::MemberLeave:
      os << " node=" << node << " at=" << (at - AbsoluteTime()).to_micros()
         << "us";
      break;
  }
  return os.str();
}

std::string FaultTimeline::render() const {
  std::ostringstream os;
  os << "fault timeline (" << control.size() << " control fault"
     << (control.size() == 1 ? "" : "s") << "):\n";
  for (const ControlFault& fault : control) {
    os << "  - " << fault.describe() << "\n";
  }
  os << "data-plane chaos: drop=" << data.drop_permille
     << "/1000 dup=" << data.dup_permille
     << "/1000 delay=" << data.delay_permille << "/1000 (max "
     << data.max_delay.to_micros() << "us)\n";
  return os.str();
}

FaultTimeline generate_timeline(const Scenario& scenario,
                                const FaultMix& mix) {
  FaultTimeline timeline;
  Rng rng = Rng(scenario.seed).split("faults");

  // Data-plane rates ride whatever op-scoped faults do not cover.
  if (mix.has(FaultKind::ChannelDrop)) timeline.data.drop_permille = 30;
  if (mix.has(FaultKind::ChannelDuplicate)) timeline.data.dup_permille = 30;
  if (mix.has(FaultKind::ChannelDelay)) {
    timeline.data.delay_permille = 100;
    timeline.data.max_delay = RelativeTime::microseconds(1000);
  }

  // Op-scoped control faults. Magnitudes are sized against the protocol
  // model's defaults (proto_sim.hpp): a straggler delay always blows the
  // prepare deadline, a plain channel delay never does.
  std::vector<FaultKind> op_kinds;
  for (const FaultKind kind :
       {FaultKind::Straggler, FaultKind::ChannelDrop, FaultKind::ChannelDelay,
        FaultKind::ChannelDuplicate, FaultKind::CoordCrashMidPrepare,
        FaultKind::CoordCrashMidCommit}) {
    if (mix.has(kind)) op_kinds.push_back(kind);
  }
  const std::vector<std::string>& nodes = scenario.node_map.nodes;
  for (std::size_t i = 0; i < scenario.ops.size(); ++i) {
    if (op_kinds.empty() || !rng.chance(2, 5)) continue;
    ControlFault fault;
    fault.kind = rng.pick(op_kinds);
    fault.op = i;
    fault.node = rng.pick(nodes);
    switch (fault.kind) {
      case FaultKind::Straggler:
        fault.delay = RelativeTime::microseconds(
            static_cast<std::int64_t>(rng.range(6000, 12000)));
        break;
      case FaultKind::ChannelDelay:
        fault.delay = RelativeTime::microseconds(
            static_cast<std::int64_t>(rng.range(200, 2000)));
        break;
      case FaultKind::ChannelDrop:
        fault.drop_prepare = rng.chance(1, 2);
        break;
      case FaultKind::CoordCrashMidPrepare:
      case FaultKind::CoordCrashMidCommit:
        fault.after = rng.range(0, nodes.size());
        break;
      default:
        break;
    }
    timeline.control.push_back(std::move(fault));
  }

  // Node crashes are time-scoped, not op-scoped.
  if (mix.has(FaultKind::NodeCrash) && rng.chance(1, 4)) {
    const std::int64_t horizon_us =
        (scenario.horizon - AbsoluteTime()).to_micros();
    ControlFault fault;
    fault.kind = FaultKind::NodeCrash;
    fault.node = rng.pick(nodes);
    fault.at = AbsoluteTime() + RelativeTime::microseconds(
                                    static_cast<std::int64_t>(rng.range(
                                        static_cast<std::uint64_t>(
                                            horizon_us / 4),
                                        static_cast<std::uint64_t>(
                                            horizon_us * 3 / 5))));
    timeline.control.push_back(std::move(fault));
  }

  // Tenant overload is time-scoped like a crash: one tenant's envelope is
  // driven bad mid-run, early enough that sheds are observable before the
  // horizon. Drawn from the stream's tail so pre-tenancy fault schedules
  // stay byte-identical for every existing seed.
  std::vector<std::string> tenant_names;
  for (const model::TenantDecl& tenant : scenario.arch.tenants()) {
    tenant_names.push_back(tenant.name);
  }
  if (mix.has(FaultKind::TenantOverload) && !tenant_names.empty() &&
      rng.chance(1, 3)) {
    const std::int64_t horizon_us =
        (scenario.horizon - AbsoluteTime()).to_micros();
    ControlFault fault;
    fault.kind = FaultKind::TenantOverload;
    fault.tenant = rng.pick(tenant_names);
    fault.at = AbsoluteTime() + RelativeTime::microseconds(
                                    static_cast<std::int64_t>(rng.range(
                                        static_cast<std::uint64_t>(
                                            horizon_us / 5),
                                        static_cast<std::uint64_t>(
                                            horizon_us / 2))));
    timeline.control.push_back(std::move(fault));
  }

  // Credit starvation is time-scoped: one node's entry side withholds
  // data-plane credit grants for a window mid-run. Drawn after the
  // tenant-overload draw — the same stream-tail precedent — so every
  // pre-dataplane fault schedule stays byte-identical per seed.
  if (mix.has(FaultKind::CreditStarvation) && rng.chance(1, 3)) {
    const std::int64_t horizon_us =
        (scenario.horizon - AbsoluteTime()).to_micros();
    ControlFault fault;
    fault.kind = FaultKind::CreditStarvation;
    fault.node = rng.pick(nodes);
    fault.at = AbsoluteTime() + RelativeTime::microseconds(
                                    static_cast<std::int64_t>(rng.range(
                                        static_cast<std::uint64_t>(
                                            horizon_us / 5),
                                        static_cast<std::uint64_t>(
                                            horizon_us / 2))));
    fault.delay = RelativeTime::microseconds(static_cast<std::int64_t>(
        rng.range(static_cast<std::uint64_t>(horizon_us / 8),
                  static_cast<std::uint64_t>(horizon_us / 3))));
    timeline.control.push_back(std::move(fault));
  }

  // Membership churn is time-scoped: a spare admission and an orderly
  // drain-leave. Drawn after the credit-starvation draw — the same
  // stream-tail precedent — so every pre-membership fault schedule stays
  // byte-identical per seed. A leave never targets the last remaining
  // member.
  if (mix.has(FaultKind::MemberJoin) && rng.chance(1, 3)) {
    const std::int64_t horizon_us =
        (scenario.horizon - AbsoluteTime()).to_micros();
    ControlFault fault;
    fault.kind = FaultKind::MemberJoin;
    fault.node = "spare" + std::to_string(rng.range(0, 2));
    fault.at = AbsoluteTime() + RelativeTime::microseconds(
                                    static_cast<std::int64_t>(rng.range(
                                        static_cast<std::uint64_t>(
                                            horizon_us / 6),
                                        static_cast<std::uint64_t>(
                                            horizon_us / 2))));
    timeline.control.push_back(std::move(fault));
  }
  if (mix.has(FaultKind::MemberLeave) && nodes.size() > 1 &&
      rng.chance(1, 3)) {
    const std::int64_t horizon_us =
        (scenario.horizon - AbsoluteTime()).to_micros();
    ControlFault fault;
    fault.kind = FaultKind::MemberLeave;
    fault.node = rng.pick(nodes);
    fault.at = AbsoluteTime() + RelativeTime::microseconds(
                                    static_cast<std::int64_t>(rng.range(
                                        static_cast<std::uint64_t>(
                                            horizon_us / 2),
                                        static_cast<std::uint64_t>(
                                            horizon_us * 3 / 4))));
    timeline.control.push_back(std::move(fault));
  }

  // Single-kind mixes guarantee at least one fault of that kind — the
  // per-kind scripted drills rely on it.
  if (mix.kinds.size() == 1) {
    const FaultKind kind = mix.kinds.front();
    bool present = false;
    for (const ControlFault& fault : timeline.control) {
      if (fault.kind == kind) present = true;
    }
    const bool data_only = kind == FaultKind::ChannelDrop ||
                           kind == FaultKind::ChannelDelay ||
                           kind == FaultKind::ChannelDuplicate;
    if (!present && !scenario.ops.empty() &&
        (kind != FaultKind::TenantOverload || !tenant_names.empty()) &&
        (kind != FaultKind::MemberLeave || nodes.size() > 1)) {
      ControlFault fault;
      fault.kind = kind;
      fault.op = 0;
      fault.node = nodes.front();
      switch (kind) {
        case FaultKind::NodeCrash:
          fault.at = AbsoluteTime() + RelativeTime::milliseconds(60);
          break;
        case FaultKind::TenantOverload:
          fault.tenant = tenant_names.front();
          fault.at = AbsoluteTime() + RelativeTime::milliseconds(50);
          break;
        case FaultKind::CreditStarvation:
          fault.at = AbsoluteTime() + RelativeTime::milliseconds(50);
          fault.delay = RelativeTime::milliseconds(30);
          break;
        case FaultKind::MemberJoin:
          fault.node = "spare0";
          fault.at = AbsoluteTime() + RelativeTime::milliseconds(40);
          break;
        case FaultKind::MemberLeave:
          fault.node = nodes.back();
          fault.at = AbsoluteTime() + RelativeTime::milliseconds(70);
          break;
        case FaultKind::Straggler:
          fault.delay = RelativeTime::milliseconds(8);
          break;
        case FaultKind::ChannelDelay:
          fault.delay = RelativeTime::microseconds(700);
          break;
        case FaultKind::ChannelDrop:
          fault.drop_prepare = false;
          break;
        case FaultKind::CoordCrashMidPrepare:
        case FaultKind::CoordCrashMidCommit:
          fault.after = nodes.size() / 2;
          break;
        default:
          break;
      }
      // Data-only kinds already act through the rates above; the forced
      // control fault still makes the drill's op path exercise them once.
      (void)data_only;
      timeline.control.push_back(std::move(fault));
    }
  }
  return timeline;
}

}  // namespace rtcf::adversity
