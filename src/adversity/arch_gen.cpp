#include "adversity/arch_gen.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "adversity/rng.hpp"
#include "rtsj/threads/params.hpp"
#include "util/assert.hpp"

namespace rtcf::adversity {

using model::ActivationKind;
using model::AreaType;
using model::Criticality;
using model::DomainType;
using model::InterfaceRole;
using model::Protocol;
using rtsj::AbsoluteTime;
using rtsj::RelativeTime;

namespace {

RelativeTime us(std::int64_t micros) {
  return RelativeTime::microseconds(micros);
}

// ---- intermediate representation ------------------------------------------
// The generator builds a plain-data IR and materializes it into a
// model::Architecture. Reload targets are IR mutations re-materialized, so
// "the same architecture plus one change" is exact by construction (the
// metamodel itself has no copy).

struct AreaIR {
  std::string name;
  AreaType type = AreaType::Immortal;
  std::size_t size = 0;
  int parent = -1;  ///< Index into ArchIR::areas; -1 = top level.
};

struct DomainIR {
  std::string name;
  DomainType type = DomainType::Realtime;
  int priority = rtsj::kMinRtPriority;
};

struct CompIR {
  std::string name;
  bool active = true;
  bool sporadic = false;
  std::int64_t rate_us = 0;  ///< Period (periodic) or MIT (sporadic).
  std::int64_t cost_us = 0;
  bool has_contract = false;
  Criticality crit = Criticality::Low;
  double miss_ratio = 1.0;
  std::uint32_t window = 32;
  std::string content;
  int domain = -1;  ///< Index into ArchIR::domains (actives only).
  int area = -1;    ///< Index into ArchIR::areas.
  bool swappable = true;
  std::size_t node = 0;
  /// Standalone periodic active present in the *base* architecture with no
  /// bindings and no mode membership — the only legal subject of reload
  /// remove/re-period mutations (so an aborted reload chain can never
  /// produce an accidental no-op delta).
  bool base_leaf = false;
  std::vector<model::InterfaceDecl> interfaces;
};

struct BindIR {
  std::string client, cport, server, sport;
  bool async = false;
  std::size_t buffer = 0;
};

struct ModeCompIR {
  std::string comp;
  std::int64_t period_us = 0;  ///< 0 = no override.
};

struct ModeIR {
  std::string name;
  bool degraded = false;
  std::vector<ModeCompIR> comps;
  std::vector<model::ModeRebind> rebinds;
};

/// A tenant as a union of whole nodes: membership, owned areas/domains,
/// and budgets all derive from the node set at materialization time, so
/// reload-target mutations (add/remove/re-period a component) keep the
/// tenant declarations consistent without bookkeeping.
struct TenantIR {
  std::string name;
  std::vector<std::size_t> nodes;
};

struct ArchIR {
  std::vector<AreaIR> areas;
  std::vector<DomainIR> domains;
  std::vector<CompIR> comps;
  std::vector<BindIR> binds;
  std::vector<ModeIR> modes;
  std::vector<TenantIR> tenants;

  CompIR* find(const std::string& name) {
    for (CompIR& c : comps) {
      if (c.name == name) return &c;
    }
    return nullptr;
  }
  const CompIR* find(const std::string& name) const {
    for (const CompIR& c : comps) {
      if (c.name == name) return &c;
    }
    return nullptr;
  }
};

model::Architecture materialize(const ArchIR& ir) {
  model::Architecture arch;
  for (const CompIR& c : ir.comps) {
    if (c.active) {
      auto& active = arch.add_active(
          c.name,
          c.sporadic ? ActivationKind::Sporadic : ActivationKind::Periodic,
          us(c.rate_us));
      active.set_cost(us(c.cost_us));
      active.set_content_class(c.content);
      active.set_swappable(c.swappable);
      active.set_criticality(c.crit);
      if (c.has_contract) {
        model::TimingContract tc;
        tc.wcet_budget = us(c.cost_us * 4);
        tc.miss_ratio_bound = c.miss_ratio;
        tc.window = c.window;
        if (c.sporadic && c.rate_us > 0) {
          // Twice the declared MIT rate — a bound the workload's spikes
          // probe but respectful bursts never reach.
          tc.max_arrival_rate_hz = 2e6 / static_cast<double>(c.rate_us);
        }
        active.set_timing_contract(tc);
      }
      for (const model::InterfaceDecl& itf : c.interfaces) {
        active.add_interface(itf);
      }
    } else {
      auto& passive = arch.add_passive(c.name);
      passive.set_content_class(c.content);
      passive.set_swappable(c.swappable);
      for (const model::InterfaceDecl& itf : c.interfaces) {
        passive.add_interface(itf);
      }
    }
  }
  for (const BindIR& b : ir.binds) {
    model::Binding binding;
    binding.client = {b.client, b.cport};
    binding.server = {b.server, b.sport};
    binding.desc.protocol =
        b.async ? Protocol::Asynchronous : Protocol::Synchronous;
    binding.desc.buffer_size = b.buffer;
    arch.add_binding(std::move(binding));
  }
  std::vector<model::MemoryAreaComponent*> areas;
  for (const AreaIR& a : ir.areas) {
    auto& area = arch.add_memory_area(a.name, a.type, a.size);
    if (a.parent >= 0) {
      arch.add_child(*areas[static_cast<std::size_t>(a.parent)], area);
    }
    areas.push_back(&area);
  }
  std::vector<model::ThreadDomain*> domains;
  for (const DomainIR& d : ir.domains) {
    domains.push_back(&arch.add_thread_domain(d.name, d.type, d.priority));
  }
  for (const CompIR& c : ir.comps) {
    model::Component* comp = arch.find(c.name);
    RTCF_ASSERT(comp != nullptr);
    if (c.area >= 0) {
      arch.add_child(*areas[static_cast<std::size_t>(c.area)], *comp);
    }
    if (c.active && c.domain >= 0) {
      arch.add_child(*domains[static_cast<std::size_t>(c.domain)], *comp);
    }
  }
  for (const ModeIR& m : ir.modes) {
    model::ModeDecl mode;
    mode.name = m.name;
    mode.degraded = m.degraded;
    for (const ModeCompIR& mc : m.comps) {
      model::ModeComponentConfig cfg;
      cfg.component = mc.comp;
      if (mc.period_us > 0) cfg.period = us(mc.period_us);
      mode.components.push_back(std::move(cfg));
    }
    mode.rebinds = m.rebinds;
    arch.add_mode(std::move(mode));
  }
  if (!ir.tenants.empty()) {
    std::map<std::size_t, std::size_t> node_tenant;
    for (std::size_t t = 0; t < ir.tenants.size(); ++t) {
      for (const std::size_t node : ir.tenants[t].nodes) {
        node_tenant.emplace(node, t);
      }
    }
    std::vector<model::TenantDecl> decls(ir.tenants.size());
    std::vector<double> utilization(ir.tenants.size(), 0.0);
    for (std::size_t t = 0; t < ir.tenants.size(); ++t) {
      decls[t].name = ir.tenants[t].name;
    }
    for (const CompIR& c : ir.comps) {
      const auto it = node_tenant.find(c.node);
      if (it == node_tenant.end()) continue;
      decls[it->second].members.push_back(c.name);
      if (c.active && c.rate_us > 0) {
        utilization[it->second] += static_cast<double>(c.cost_us) /
                                   static_cast<double>(c.rate_us);
      }
    }
    // Memory budget: the exact sum of the tenant's node-local areas (owned
    // areas are a subset, so the bound always holds); CPU budget: member
    // utilization with 50% headroom, so a re-period mutation (which only
    // ever halves load) can never trip TENANT-BUDGET-BOUNDS.
    for (const AreaIR& a : ir.areas) {
      const std::size_t dot = a.name.find('.');
      RTCF_ASSERT(a.name.size() > 1 && a.name[0] == 'n' &&
                  dot != std::string::npos);
      const std::size_t node =
          static_cast<std::size_t>(std::stoul(a.name.substr(1, dot - 1)));
      const auto it = node_tenant.find(node);
      if (it != node_tenant.end()) {
        decls[it->second].budget.memory_bytes += a.size;
      }
    }
    for (std::size_t t = 0; t < ir.tenants.size(); ++t) {
      decls[t].budget.cpu_utilization = utilization[t] * 1.5 + 0.01;
    }
    // Every cross-tenant binding (async triggers may go cross-node, and a
    // node boundary may be a tenant boundary) gets a matching capability
    // route: the serving tenant exports the server port, the consuming
    // tenant imports it.
    for (const BindIR& b : ir.binds) {
      const CompIR* client = ir.find(b.client);
      const CompIR* server = ir.find(b.server);
      RTCF_ASSERT(client != nullptr && server != nullptr);
      const auto ct = node_tenant.find(client->node);
      const auto st = node_tenant.find(server->node);
      if (ct == node_tenant.end() || st == node_tenant.end() ||
          ct->second == st->second) {
        continue;
      }
      model::TenantDecl& serving = decls[st->second];
      model::TenantDecl& consuming = decls[ct->second];
      const std::string capability = "cap." + b.server + "." + b.sport;
      if (serving.find_export(capability) == nullptr) {
        serving.exports.push_back({capability, b.server, b.sport});
      }
      if (consuming.find_import(capability) == nullptr) {
        consuming.imports.push_back({capability, serving.name});
      }
    }
    for (model::TenantDecl& decl : decls) {
      arch.add_tenant(std::move(decl));
    }
  }
  return arch;
}

/// One reload-target mutation, applied to `ir` in place. Only base leaves
/// are removed or re-perioded and added components are never touched
/// again, so any two architectures along the mutation chain differ — a
/// reload op can never degenerate into a no-op delta, whatever subset of
/// earlier ops committed.
void mutate(ArchIR& ir, Rng& rng, std::size_t serial, std::size_t nodes,
            validate::NodeMap& map) {
  std::vector<std::string> leaves;
  for (const CompIR& c : ir.comps) {
    if (c.base_leaf) leaves.push_back(c.name);
  }
  const std::uint64_t roll = rng.range(0, 2);
  if (roll == 1 && !leaves.empty()) {  // remove a base leaf
    const std::string victim = rng.pick(leaves);
    ir.comps.erase(std::remove_if(ir.comps.begin(), ir.comps.end(),
                                  [&](const CompIR& c) {
                                    return c.name == victim;
                                  }),
                   ir.comps.end());
    return;
  }
  if (roll == 2 && !leaves.empty()) {  // double a base leaf's period
    CompIR* leaf = ir.find(rng.pick(leaves));
    RTCF_ASSERT(leaf != nullptr);
    leaf->rate_us *= 2;
    return;
  }
  // Add a standalone periodic active on a random node, in that node's
  // first area and domain.
  const std::size_t node = rng.range(0, nodes - 1);
  CompIR comp;
  comp.name = "x" + std::to_string(serial);
  comp.sporadic = false;
  comp.rate_us = 20000;
  comp.cost_us = static_cast<std::int64_t>(rng.range(20, 80));
  comp.content = "adv.X" + std::to_string(serial);
  comp.node = node;
  for (std::size_t i = 0; i < ir.areas.size(); ++i) {
    if (ir.areas[i].name.rfind("n" + std::to_string(node) + ".", 0) == 0) {
      comp.area = static_cast<int>(i);
      break;
    }
  }
  for (std::size_t i = 0; i < ir.domains.size(); ++i) {
    if (ir.domains[i].name.rfind("n" + std::to_string(node) + ".", 0) == 0) {
      comp.domain = static_cast<int>(i);
      break;
    }
  }
  map.assignment[comp.name] = map.nodes[node];
  ir.comps.push_back(std::move(comp));
}

}  // namespace

Scenario generate_scenario(std::uint64_t seed, const GenConfig& config) {
  RTCF_REQUIRE(config.min_nodes >= 1 && config.max_nodes >= config.min_nodes,
               "GenConfig node bounds are inverted");
  const Rng root(seed);
  Rng topo = root.split("topology");

  Scenario scenario;
  scenario.seed = seed;
  scenario.horizon = config.horizon;

  ArchIR ir;
  const std::size_t nodes = topo.split("nodes").range(
      config.min_nodes, config.max_nodes);
  for (std::size_t k = 0; k < nodes; ++k) {
    scenario.node_map.nodes.push_back("n" + std::to_string(k));
  }

  // Tenancy: 1-3 tenants, each owning a union of whole nodes. Whole-node
  // ownership makes TENANT-AREA-SCOPED / TENANT-DOMAIN-EXCLUSIVE hold by
  // construction (areas and domains are per-node), and reload mutations
  // stay inside some tenant automatically. An independent RNG stream keeps
  // every pre-tenancy draw — and so every previously pinned corpus seed's
  // topology — byte-identical.
  if (config.max_tenants > 0) {
    Rng tenancy = root.split("tenancy");
    static const char* kTenantNames[] = {"tenantA", "tenantB", "tenantC"};
    const std::size_t count = tenancy.range(
        1, std::min<std::size_t>({config.max_tenants, nodes, 3}));
    ir.tenants.resize(count);
    for (std::size_t t = 0; t < count; ++t) {
      ir.tenants[t].name = kTenantNames[t];
    }
    for (std::size_t k = 0; k < nodes; ++k) {
      // The first `count` nodes seed one tenant each (no empty tenants);
      // the rest land anywhere.
      const std::size_t t =
          k < count ? k : static_cast<std::size_t>(
                              tenancy.range(0, count - 1));
      ir.tenants[t].nodes.push_back(k);
    }
  }

  // Areas and domains are per-node composites: the cut can never tear one
  // apart, so DIST-AREA-SPAN / DIST-DOMAIN-SPAN hold by construction.
  std::vector<std::vector<int>> node_areas(nodes), node_domains(nodes);
  for (std::size_t k = 0; k < nodes; ++k) {
    const std::string prefix = "n" + std::to_string(k) + ".";
    node_areas[k].push_back(static_cast<int>(ir.areas.size()));
    ir.areas.push_back({prefix + "imm", AreaType::Immortal, 64 * 1024, -1});
    if (topo.chance(1, 2)) {
      const int parent = node_areas[k].front();
      node_areas[k].push_back(static_cast<int>(ir.areas.size()));
      ir.areas.push_back(
          {prefix + "scope", AreaType::Scoped, 32 * 1024, parent});
    }
    // Priorities wrap inside the RT band so clusters wider than half the
    // band (the elastic-cluster drills go to 16+ nodes) still generate
    // TD-PRIORITY-RANGE-clean domains. Identity for small clusters, so
    // every existing seed's architecture is byte-identical.
    const int band = rtsj::kMaxRtPriority - rtsj::kMinRtPriority + 1;
    node_domains[k].push_back(static_cast<int>(ir.domains.size()));
    ir.domains.push_back(
        {prefix + "rt", DomainType::Realtime,
         rtsj::kMinRtPriority + (2 * static_cast<int>(k)) % band});
    if (topo.chance(1, 3)) {
      node_domains[k].push_back(static_cast<int>(ir.domains.size()));
      ir.domains.push_back(
          {prefix + "hi",
           topo.chance(1, 2) ? DomainType::NoHeapRealtime
                             : DomainType::Realtime,
           rtsj::kMinRtPriority + (2 * static_cast<int>(k) + 1) % band});
    }
  }

  // Functional components. Cost divisors keep per-task utilization under
  // ~0.5%, so even the whole cluster folded into one RTA (how
  // MODE-SCHEDULABLE analyzes it) stays schedulable at any generated
  // priority assignment. Beyond 4 nodes the cost scale shrinks every
  // task proportionally, keeping the folded total bounded for the
  // elastic-cluster drills (16+ nodes) — identity at the default sizes,
  // so existing seeds stay byte-identical.
  const auto cost_scale = static_cast<std::int64_t>(
      std::max<std::size_t>(1, nodes / 4));
  static const std::vector<std::int64_t> kPeriods = {10000, 20000, 25000,
                                                     40000, 50000};
  static const std::vector<std::int64_t> kMits = {5000, 10000, 20000};
  std::size_t serial = 0;
  std::vector<std::string> periodics, sporadics, passives;
  for (std::size_t k = 0; k < nodes; ++k) {
    const std::size_t count = topo.range(config.min_components_per_node,
                                         config.max_components_per_node);
    for (std::size_t i = 0; i < count; ++i) {
      CompIR comp;
      comp.name = "n" + std::to_string(k) + "c" + std::to_string(i);
      comp.content = "adv.C" + std::to_string(serial++);
      comp.node = k;
      comp.area = static_cast<int>(topo.pick(node_areas[k]));
      // The first component of every node is periodic: it anchors the
      // node's load and serves as a trigger client for sporadics.
      const std::uint64_t roll = i == 0 ? 0 : topo.range(0, 99);
      if (roll < 55) {
        comp.sporadic = false;
        comp.rate_us = topo.pick(kPeriods);
        periodics.push_back(comp.name);
      } else if (roll < 80) {
        comp.sporadic = true;
        comp.rate_us = topo.pick(kMits);
        comp.interfaces.push_back(
            {"in", InterfaceRole::Server, "I" + comp.name});
        sporadics.push_back(comp.name);
      } else {
        comp.active = false;
        comp.interfaces.push_back(
            {"svc", InterfaceRole::Server, "S" + comp.name});
        passives.push_back(comp.name);
      }
      if (comp.active) {
        comp.cost_us = std::max<std::int64_t>(
            1, comp.rate_us /
                   static_cast<std::int64_t>(topo.range(200, 400)) /
                   cost_scale);
        comp.domain = static_cast<int>(topo.pick(node_domains[k]));
        comp.has_contract = topo.chance(1, 2);
        comp.crit =
            topo.chance(1, 4) ? Criticality::High : Criticality::Low;
        comp.miss_ratio = topo.chance(1, 2) ? 1.0 : 0.5;
        comp.window = topo.chance(1, 2) ? 16 : 32;
      }
      scenario.node_map.assignment[comp.name] =
          scenario.node_map.nodes[k];
      ir.comps.push_back(std::move(comp));
    }
    // 1-2 standalone leaves per node: reload-mutation subjects and, when
    // left alone, prime subjects for the untouched-no-deadline-miss
    // invariant (never mode-managed, never bound).
    const std::size_t nleaves = topo.range(1, 2);
    for (std::size_t i = 0; i < nleaves; ++i) {
      CompIR leaf;
      leaf.name = "n" + std::to_string(k) + "leaf" + std::to_string(i);
      leaf.content = "adv.C" + std::to_string(serial++);
      leaf.node = k;
      leaf.area = node_areas[k].front();
      leaf.domain = node_domains[k].front();
      leaf.sporadic = false;
      leaf.rate_us = topo.pick(kPeriods);
      leaf.cost_us = std::max<std::int64_t>(
          1, leaf.rate_us /
                 static_cast<std::int64_t>(topo.range(200, 400)) /
                 cost_scale);
      leaf.crit = Criticality::Low;
      leaf.base_leaf = true;
      scenario.node_map.assignment[leaf.name] =
          scenario.node_map.nodes[k];
      ir.comps.push_back(std::move(leaf));
    }
  }

  // Every sporadic gets an incoming asynchronous trigger binding (no
  // AC-SPORADIC-TRIGGER warnings); cross-node triggers become gateway
  // bridges (DIST-ASYNC-BRIDGED).
  Rng wiring = root.split("wiring");
  for (const std::string& sname : sporadics) {
    const CompIR* server = ir.find(sname);
    std::vector<std::string> local, remote;
    for (const std::string& pname : periodics) {
      (ir.find(pname)->node == server->node ? local : remote)
          .push_back(pname);
    }
    const bool go_local =
        remote.empty() || (!local.empty() && wiring.chance(2, 3));
    const std::string client =
        go_local ? wiring.pick(local) : wiring.pick(remote);
    ir.find(client)->interfaces.push_back(
        {"t." + sname, InterfaceRole::Client, "I" + sname});
    ir.binds.push_back(
        {client, "t." + sname, sname, "in", true, wiring.range(4, 16)});
  }
  // Extra fan-in: some periodic actives spray a second sporadic.
  for (const std::string& pname : periodics) {
    if (sporadics.empty() || !wiring.chance(1, 4)) continue;
    const std::string target = wiring.pick(sporadics);
    CompIR* client = ir.find(pname);
    const std::string port = "x." + target;
    bool dup = false;
    for (const model::InterfaceDecl& itf : client->interfaces) {
      if (itf.name == port) dup = true;
    }
    if (dup) continue;
    client->interfaces.push_back({port, InterfaceRole::Client, "I" + target});
    ir.binds.push_back(
        {pname, port, target, "in", true, wiring.range(4, 16)});
  }
  // Synchronous bindings stay intra-node and intra-area: the Same area
  // relation always resolves to the 'direct' pattern, so every generated
  // sync binding is RTSJ-legal. Half of them get an alternate same-area
  // same-signature server — the degraded mode's rebind target.
  std::vector<model::ModeRebind> rebinds;
  for (const std::string& pname : periodics) {
    CompIR* client = ir.find(pname);
    if (!wiring.chance(1, 3)) continue;
    std::vector<std::string> candidates;
    for (const std::string& sv : passives) {
      const CompIR* p = ir.find(sv);
      if (p->node == client->node && p->area == client->area) {
        candidates.push_back(sv);
      }
    }
    if (candidates.empty()) continue;
    const std::string server = wiring.pick(candidates);
    const std::string port = "use." + server;
    client->interfaces.push_back(
        {port, InterfaceRole::Client, "S" + server});
    ir.binds.push_back({pname, port, server, "svc", false, 0});
    if (wiring.chance(1, 2)) {
      // Two clients of the same server may both roll an alternate; the
      // first roll creates it, later rolls reuse it (same node/area/
      // signature by construction, so the rebind stays valid).
      if (ir.find(server + ".alt") == nullptr) {
        CompIR alt;
        alt.name = server + ".alt";
        alt.active = false;
        alt.content = "adv.C" + std::to_string(serial++);
        alt.node = client->node;
        alt.area = client->area;
        alt.interfaces.push_back(
            {"svc", InterfaceRole::Server, "S" + server});
        scenario.node_map.assignment[alt.name] =
            scenario.node_map.nodes[alt.node];
        ir.comps.push_back(std::move(alt));
      }
      rebinds.push_back({pname, port, server + ".alt"});
    }
  }

  // Modes: "normal" first (the initial mode: everything managed enabled at
  // declared rates), a degraded mode that thins the managed set and slows
  // rates (overrides only ever *raise* periods, so every mode is at most
  // as loaded as normal — RTA monotonicity), sometimes a third mode.
  Rng modes = root.split("modes");
  std::vector<std::string> managed;
  for (const CompIR& c : ir.comps) {
    if (c.active && !c.base_leaf && modes.chance(1, 2)) {
      managed.push_back(c.name);
    }
  }
  ModeIR normal;
  normal.name = "normal";
  for (const std::string& m : managed) normal.comps.push_back({m, 0});
  ir.modes.push_back(std::move(normal));
  ModeIR degraded;
  degraded.name = "degraded";
  degraded.degraded = true;
  for (const std::string& m : managed) {
    if (!modes.chance(2, 3)) continue;
    const CompIR* c = ir.find(m);
    const bool slow = !c->sporadic && modes.chance(1, 2);
    degraded.comps.push_back({m, slow ? c->rate_us * 2 : 0});
  }
  degraded.rebinds = rebinds;
  ir.modes.push_back(std::move(degraded));
  if (modes.chance(1, 2)) {
    ModeIR low;
    low.name = "lowpower";
    for (const std::string& m : managed) {
      if (!modes.chance(1, 2)) continue;
      const CompIR* c = ir.find(m);
      low.comps.push_back(
          {m, !c->sporadic && modes.chance(1, 2) ? c->rate_us * 2 : 0});
    }
    ir.modes.push_back(std::move(low));
  }

  // Workload: bursts for sporadics; spikes deliberately violate the MIT
  // (rejections are a declared drop policy the drill accounts for).
  Rng load = root.split("workload");
  const std::int64_t horizon_us =
      (scenario.horizon - AbsoluteTime()).to_micros();
  for (const std::string& sname : sporadics) {
    if (!load.chance(2, 3)) continue;
    const CompIR* c = ir.find(sname);
    ArrivalBurst burst;
    burst.component = sname;
    burst.start = AbsoluteTime() + us(static_cast<std::int64_t>(
                                       load.range(20000, 100000)));
    burst.count = static_cast<std::uint32_t>(load.range(3, 8));
    const std::int64_t mit = c->rate_us;
    const std::int64_t spacing_us =
        load.chance(1, 2)
            ? mit + static_cast<std::int64_t>(
                        load.range(0, static_cast<std::uint64_t>(mit)))
            : std::max<std::int64_t>(
                  500, mit / static_cast<std::int64_t>(load.range(2, 4)));
    burst.spacing = us(spacing_us);
    // Keep the whole burst inside the first ~75% of the horizon so every
    // delivery chain drains before the conservation audit.
    while (burst.count > 1 &&
           (burst.start - AbsoluteTime()).to_micros() +
                   static_cast<std::int64_t>(burst.count) * spacing_us >
               horizon_us * 3 / 4) {
      --burst.count;
    }
    scenario.workload.bursts.push_back(std::move(burst));
  }

  // Reconfiguration ops. Spacing (>= 45 ms) strictly dominates one
  // protocol round (prepare timeout + recovery + decision timeout), so a
  // transition always settles before the next one starts.
  Rng opsrng = root.split("ops");
  const std::size_t nops = opsrng.range(1, std::max<std::size_t>(
                                               1, config.max_ops));
  ArchIR target_ir = ir;  // plain data: copyable
  validate::NodeMap& map = scenario.node_map;
  std::vector<std::string> mode_names;
  for (const ModeIR& m : ir.modes) mode_names.push_back(m.name);
  for (std::size_t i = 0; i < nops; ++i) {
    ReconfigOp op;
    op.at = AbsoluteTime() +
            us(40000 + static_cast<std::int64_t>(i) * 45000 +
               static_cast<std::int64_t>(opsrng.range(0, 5000)));
    if (opsrng.chance(1, 2)) {
      op.kind = ReconfigOp::Kind::ModeTransition;
      op.mode = opsrng.pick(mode_names);
    } else {
      op.kind = ReconfigOp::Kind::Reload;
      mutate(target_ir, opsrng, 100 + i, nodes, map);
      scenario.reload_targets.push_back(materialize(target_ir));
      op.target = scenario.reload_targets.size() - 1;
    }
    scenario.ops.push_back(std::move(op));
  }

  scenario.arch = materialize(ir);
  return scenario;
}

std::vector<std::string> content_classes(const Scenario& scenario) {
  std::set<std::string> seen;
  const auto scan = [&seen](const model::Architecture& arch) {
    for (const auto* a : arch.all_of<model::ActiveComponent>()) {
      if (!a->content_class().empty()) seen.insert(a->content_class());
    }
    for (const auto* p : arch.all_of<model::PassiveComponent>()) {
      if (!p->content_class().empty()) seen.insert(p->content_class());
    }
  };
  scan(scenario.arch);
  for (const model::Architecture& target : scenario.reload_targets) {
    scan(target);
  }
  return std::vector<std::string>(seen.begin(), seen.end());
}

}  // namespace rtcf::adversity
