// One adversity drill, end to end.
//
// run_drill() is the engine behind tools/drill and the CI drill job:
//
//   1. generate the scenario for the seed (arch_gen.hpp) and its fault
//      timeline (chaos.hpp) — both pure functions of the seed;
//   2. register every generated content class, then run the protocol
//      model (proto_sim.hpp) over the reconfiguration ops under the
//      control-plane faults;
//   3. replay the workload on the deterministic cluster simulator
//      (dist::map_cluster over one virtual clock): arrival bursts, node
//      crashes as mass task disablement, data-plane chaos through the
//      LinkPolicy hook, and every *committed* op applied at its virtual
//      commit instant through the real codec and sim-mirror paths;
//   4. run every mechanical invariant (drill_check.hpp) and report.
//
// Determinism contract: the same (seed, mix, options) produces the same
// DrillResult bytes — a red CI drill replays locally with nothing but its
// seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "adversity/arch_gen.hpp"
#include "adversity/chaos.hpp"
#include "adversity/drill_check.hpp"
#include "adversity/proto_sim.hpp"

namespace rtcf::adversity {

/// One drill's inputs.
struct DrillOptions {
  std::uint64_t seed = 1;
  FaultMix mix = FaultMix::all();
  GenConfig gen;
  /// Protocol model knobs — including the deliberate-bug switch
  /// (tools/drill --inject-bug skip-presumed-abort).
  ProtoOptions proto;
  /// Keep the full per-op protocol event log in the result (the replay
  /// artifact of a red drill; off for bulk sweeps).
  bool trace = false;
};

/// One drill's verdict.
struct DrillResult {
  std::uint64_t seed = 0;
  FaultMix mix;
  bool passed = false;
  std::vector<Violation> violations;
  std::string timeline;                 ///< Rendered fault timeline.
  std::vector<std::string> proto_log;   ///< Per-op event log (trace only).
  std::size_t nodes = 0;
  std::size_t components = 0;
  std::size_t tenants = 0;
  /// Tenants an injected overload actually escalated (replay-audited).
  std::vector<std::string> overloaded_tenants;
  std::size_t ops_total = 0;
  std::size_t ops_committed = 0;
  std::size_t members_joined = 0;  ///< Applied MemberJoin admissions.
  std::size_t members_left = 0;    ///< Applied drain-leave evictions.
  std::uint64_t membership_epoch = 0;  ///< Final membership view epoch.
  /// Virtual-time membership event log (part of the artifact).
  std::vector<std::string> membership_log;
  std::uint64_t route_messages = 0;  ///< Bridged deliveries attempted.
  std::uint64_t route_drops = 0;     ///< Declared data-plane drops.
  std::uint64_t route_dups = 0;      ///< Declared data-plane duplicates.
  std::uint64_t route_batches = 0;   ///< Mirrored data-plane flushes that
                                     ///< delivered at least one message.
  std::uint64_t route_overflow_drops = 0;  ///< Drop-newest at full route
                                           ///< queues (bounded-buffer
                                           ///< policy, DATAPLANE.md §4).

  /// One line: "seed 42 [all]: PASS (3 ops, 2 committed)".
  std::string summary() const;
  /// The full artifact text a red CI drill uploads: summary, timeline,
  /// violations, protocol log.
  std::string report() const;
};

/// Runs one drill. Never throws on a red drill — violations are data;
/// throws only on engine-level failures (which are bugs in the drill
/// itself).
DrillResult run_drill(const DrillOptions& options = {});

}  // namespace rtcf::adversity
