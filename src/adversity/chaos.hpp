// Chaos layer: a scripted fault timeline for the deterministic cluster.
//
// Faults are generated from the drill seed and applied through the shared
// virtual clock, so a failing seed replays its exact fault schedule
// bit-for-bit. The taxonomy respects the transport contract the protocol
// is designed against (docs/PROTOCOL.md): the control channel is reliable
// but delayable — control-plane faults are vote delays (stragglers),
// dropped or duplicated control frames, and endpoint deaths (node crash,
// coordinator crash mid-PREPARE / mid-COMMIT). Drop / delay / duplicate
// rates apply to the *data plane* (bridged gateway traffic), where the
// drill's conservation audit accounts for every lost or doubled message.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "adversity/arch_gen.hpp"
#include "rtsj/time/time.hpp"

namespace rtcf::adversity {

/// Everything the chaos layer knows how to break.
enum class FaultKind {
  NodeCrash,            ///< A node dies at a virtual instant.
  ChannelDrop,          ///< Control: lose one PREPARE or one vote.
                        ///< Data: per-message loss rate.
  ChannelDelay,         ///< Control: slow one node's link (sub-deadline).
                        ///< Data: per-message extra latency.
  ChannelDuplicate,     ///< Control: duplicate one vote frame.
                        ///< Data: per-message duplication rate.
  Straggler,            ///< One vote delayed past the prepare deadline.
  CoordCrashMidPrepare, ///< Coordinator dies between PREPARE sends —
                        ///< no decision exists; presumed abort territory.
  CoordCrashMidCommit,  ///< Coordinator dies between decision sends —
                        ///< the decision is durable; a standby finishes it.
  TenantOverload,       ///< One tenant's contract windows go bad at a
                        ///< virtual instant: its governor envelope
                        ///< escalates to Shed. The TENANT-ISOLATION
                        ///< invariant holds every *other* tenant harmless.
  CreditStarvation,     ///< One node's entry side stops granting data-plane
                        ///< credits for a window: routes into it
                        ///< backpressure into their bounded queues. The
                        ///< DATA-CONSERVATION invariant accounts for every
                        ///< queued or dropped message.
  MemberJoin,           ///< A spare node joins the live membership at a
                        ///< virtual instant: the coordinator admits it
                        ///< with an empty slice (docs/MEMBERSHIP.md §2).
                        ///< The MEMBERSHIP-CONVERGES invariant holds the
                        ///< final view consistent with every applied
                        ///< event.
  MemberLeave,          ///< A member drains its slice and leaves the
                        ///< membership at a virtual instant — unlike
                        ///< NodeCrash, an orderly epoch-bumped eviction
                        ///< with a zero-loss drain audit.
};

const char* to_string(FaultKind kind) noexcept;

/// Which fault kinds a drill may inject (the `--fault-mix` of tools/drill).
struct FaultMix {
  std::vector<FaultKind> kinds;  ///< Enabled kinds, canonical enum order.

  bool has(FaultKind kind) const noexcept;
  /// Every kind enabled (the default mix).
  static FaultMix all();
  /// Parses "crash,drop,delay,dup,straggler,coord-prepare,coord-commit,
  /// overload,starve,join,leave" ("coord" enables both coordinator kinds,
  /// "churn" the membership mix — join, leave, node crash, and both
  /// coordinator kills — "all"/"" everything); throws
  /// std::invalid_argument on an unknown name.
  static FaultMix parse(const std::string& csv);
  std::string to_string() const;
};

/// One scripted control-plane fault.
struct ControlFault {
  FaultKind kind = FaultKind::Straggler;
  std::size_t op = 0;          ///< Targeted reconfiguration op (op-scoped
                               ///< kinds; unused for NodeCrash).
  std::string node;            ///< Targeted node (straggler/drop/delay/dup/
                               ///< crash).
  bool drop_prepare = false;   ///< ChannelDrop: lose the PREPARE (true) or
                               ///< the vote (false).
  rtsj::RelativeTime delay{};  ///< Straggler / ChannelDelay magnitude;
                               ///< CreditStarvation window length.
  std::size_t after = 0;       ///< Coordinator crashes: frames sent before
                               ///< dying.
  rtsj::AbsoluteTime at{};     ///< NodeCrash / TenantOverload /
                               ///< CreditStarvation / MemberJoin /
                               ///< MemberLeave instant.
  std::string tenant;          ///< TenantOverload: the envelope driven bad.

  std::string describe() const;
};

/// Data-plane chaos rates, applied per bridged message from a per-route
/// seeded stream.
struct DataChaos {
  std::uint32_t drop_permille = 0;
  std::uint32_t dup_permille = 0;
  std::uint32_t delay_permille = 0;
  rtsj::RelativeTime max_delay{};
};

/// The full fault schedule of one drill.
struct FaultTimeline {
  std::vector<ControlFault> control;
  DataChaos data;

  /// Human-readable rendering — the artifact a red CI drill uploads.
  std::string render() const;
};

/// Generates the fault timeline for `scenario` under `mix`, derived from
/// the scenario seed (an independent stream: the same architecture is
/// drilled under the same faults on every replay). When `mix` holds
/// exactly one kind, at least one fault of that kind is guaranteed — the
/// hook the per-kind scripted tests use.
FaultTimeline generate_timeline(const Scenario& scenario,
                                const FaultMix& mix);

}  // namespace rtcf::adversity
