// Maps a component architecture onto the scheduler simulator.
//
// Every active component becomes one simulated task configured by its
// ThreadDomain (thread kind, priority) and activation (periodic with its
// period, sporadic triggered by arrivals) with the modeled per-release cost
// from the ADL `cost` attribute. Asynchronous bindings chain completions:
// when the client task finishes a release, an arrival is posted to the
// server task at the completion instant — the virtual-time equivalent of
// the AsyncSkeleton's buffer-push + notify.
//
// This is the substrate for the E4 (GC interference) and E8 (scheduler)
// experiments: end-to-end latencies of the Fig. 4 pipeline in exact virtual
// time, with and without GC pauses.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "model/metamodel.hpp"
#include "sim/scheduler.hpp"

namespace rtcf::sim {

/// Task ids per component name for one mapped architecture.
struct SimMapping {
  std::map<std::string, TaskId> tasks;

  TaskId task(const std::string& component) const { return tasks.at(component); }
  bool has(const std::string& component) const {
    return tasks.count(component) != 0;
  }
};

/// Adds one task per active component of `arch` to `scheduler` and chains
/// asynchronous bindings through completion callbacks. Passive components
/// execute on their callers (their cost is part of the caller's budget), so
/// they map to no task.
///
/// `cpu_of` pins each task to a simulated CPU by component name (e.g.
/// `[&plan](const std::string& n) { return plan.partition_of(n); }` mirrors
/// the partitioned executive's assignment); null pins everything to CPU 0.
SimMapping map_architecture(
    const model::Architecture& arch, PreemptiveScheduler& scheduler,
    const std::function<std::size_t(const std::string&)>& cpu_of = nullptr);

}  // namespace rtcf::sim
