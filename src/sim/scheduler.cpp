#include "sim/scheduler.hpp"

#include <algorithm>
#include <sstream>

#include "util/assert.hpp"

namespace rtcf::sim {

const char* to_string(TraceKind k) noexcept {
  switch (k) {
    case TraceKind::Release:
      return "release";
    case TraceKind::Start:
      return "start";
    case TraceKind::Preempt:
      return "preempt";
    case TraceKind::Resume:
      return "resume";
    case TraceKind::Complete:
      return "complete";
    case TraceKind::DeadlineMiss:
      return "miss";
    case TraceKind::GcStart:
      return "gc-start";
    case TraceKind::GcEnd:
      return "gc-end";
  }
  return "?";
}

std::string TraceEvent::to_string(const PreemptiveScheduler& sched) const {
  std::ostringstream os;
  os << time.nanos() << "ns " << sim::to_string(kind);
  if (task != kNoTask) {
    os << " " << sched.config(task).name << "#" << release_seq;
  }
  return os.str();
}

TaskId PreemptiveScheduler::add_task(TaskConfig config) {
  RTCF_REQUIRE(!config.name.empty(), "task needs a name");
  RTCF_REQUIRE(config.release != ReleaseKind::Periodic ||
                   config.period > RelativeTime::zero(),
               "periodic task needs a positive period");
  tasks_.push_back(Task{std::move(config), TaskStats{}, 0, {}, false});
  const TaskId id = tasks_.size() - 1;
  if (tasks_[id].config.release == ReleaseKind::Periodic) {
    push_event(tasks_[id].config.start, EventKind::TaskRelease, id);
  }
  return id;
}

void PreemptiveScheduler::set_on_complete(
    TaskId task, std::function<void(AbsoluteTime)> on_complete) {
  RTCF_REQUIRE(task < tasks_.size(), "unknown task id");
  tasks_[task].config.on_complete = std::move(on_complete);
}

void PreemptiveScheduler::post_arrival(TaskId task, AbsoluteTime t) {
  RTCF_REQUIRE(task < tasks_.size(), "unknown task id");
  RTCF_REQUIRE(t >= now_, "arrival posted in the simulated past");
  Task& tk = tasks_[task];
  RTCF_REQUIRE(tk.config.release != ReleaseKind::Periodic,
               "periodic tasks release on their own timeline");
  if (tk.config.release == ReleaseKind::Sporadic &&
      !tk.config.min_interarrival.is_zero() && tk.has_arrival &&
      t - tk.last_arrival < tk.config.min_interarrival) {
    ++tk.stats.rejected_arrivals;
    return;
  }
  tk.last_arrival = t;
  tk.has_arrival = true;
  push_event(t, EventKind::TaskRelease, task);
}

void PreemptiveScheduler::push_event(AbsoluteTime t, EventKind kind,
                                     TaskId task) {
  events_.push(Event{t, event_order_++, kind, task});
}

void PreemptiveScheduler::record(TraceKind kind, TaskId task,
                                 std::uint64_t seq) {
  if (trace_enabled_) trace_.push_back(TraceEvent{now_, kind, task, seq});
}

bool PreemptiveScheduler::runnable(const Job& job) const noexcept {
  if (!gc_active_) return true;
  return tasks_[job.task].config.kind == ThreadKind::NoHeapRealtime;
}

const PreemptiveScheduler::Job* PreemptiveScheduler::best_ready() const {
  const Job* best = nullptr;
  for (const Job& job : ready_) {
    if (!runnable(job)) continue;
    if (best == nullptr) {
      best = &job;
      continue;
    }
    const int pa = tasks_[job.task].config.priority;
    const int pb = tasks_[best->task].config.priority;
    if (pa > pb ||
        (pa == pb && (job.release_time < best->release_time ||
                      (job.release_time == best->release_time &&
                       job.enqueue_order < best->enqueue_order)))) {
      best = &job;
    }
  }
  return best;
}

void PreemptiveScheduler::dispatch() {
  const Job* best = best_ready();
  if (best == nullptr) return;
  if (running_) {
    // Preempt only for strictly higher priority; FIFO within a band.
    if (tasks_[best->task].config.priority <=
        tasks_[running_->task].config.priority) {
      return;
    }
    Job suspended = *running_;
    ++tasks_[suspended.task].stats.preemptions;
    record(TraceKind::Preempt, suspended.task, suspended.seq);
    running_.reset();
    ready_.push_back(suspended);
    // `best` may have been invalidated by the push; re-resolve.
    best = best_ready();
    RTCF_ASSERT(best != nullptr);
  }
  Job job = *best;
  ready_.erase(ready_.begin() + (best - ready_.data()));
  record(job.started ? TraceKind::Resume : TraceKind::Start, job.task,
         job.seq);
  job.started = true;
  running_ = job;
}

void PreemptiveScheduler::release_job(TaskId task, AbsoluteTime t) {
  Task& tk = tasks_[task];
  Job job;
  job.task = task;
  job.seq = tk.next_seq++;
  job.release_time = t;
  job.remaining = tk.config.cost;
  job.enqueue_order = enqueue_order_++;
  record(TraceKind::Release, task, job.seq);
  ready_.push_back(job);
  if (tk.config.release == ReleaseKind::Periodic) {
    // Drift-free: next release anchored on this release's instant.
    push_event(t + tk.config.period, EventKind::TaskRelease, task);
  }
}

void PreemptiveScheduler::complete_running() {
  RTCF_ASSERT(running_.has_value());
  Job job = *running_;
  running_.reset();
  Task& tk = tasks_[job.task];
  ++tk.stats.releases_completed;
  const RelativeTime response = now_ - job.release_time;
  tk.stats.response_times_us.add(response.to_micros());
  record(TraceKind::Complete, job.task, job.seq);
  RelativeTime deadline = tk.config.deadline;
  if (deadline.is_zero() && tk.config.release == ReleaseKind::Periodic) {
    deadline = tk.config.period;
  }
  if (!deadline.is_zero() && response > deadline) {
    ++tk.stats.deadline_misses;
    record(TraceKind::DeadlineMiss, job.task, job.seq);
  }
  if (tk.config.on_complete) tk.config.on_complete(now_);
}

void PreemptiveScheduler::handle_event(const Event& ev) {
  switch (ev.kind) {
    case EventKind::TaskRelease:
      release_job(ev.task, now_);
      break;
    case EventKind::GcStart: {
      gc_active_ = true;
      ++gc_pauses_;
      record(TraceKind::GcStart, TraceEvent::kNoTask, 0);
      if (running_ &&
          tasks_[running_->task].config.kind != ThreadKind::NoHeapRealtime) {
        Job suspended = *running_;
        ++tasks_[suspended.task].stats.preemptions;
        record(TraceKind::Preempt, suspended.task, suspended.seq);
        running_.reset();
        ready_.push_back(suspended);
      }
      push_event(now_ + gc_.pause, EventKind::GcEnd, TraceEvent::kNoTask);
      push_event(now_ + gc_.interval, EventKind::GcStart,
                 TraceEvent::kNoTask);
      break;
    }
    case EventKind::GcEnd:
      gc_active_ = false;
      record(TraceKind::GcEnd, TraceEvent::kNoTask, 0);
      break;
  }
}

void PreemptiveScheduler::run_until(AbsoluteTime end) {
  if (gc_.enabled() && !gc_scheduled_) {
    push_event(now_ + gc_.interval, EventKind::GcStart, TraceEvent::kNoTask);
    gc_scheduled_ = true;
  }
  for (;;) {
    dispatch();
    // Next instant at which anything can change: the running job finishes,
    // or the earliest pending event fires.
    std::optional<AbsoluteTime> boundary;
    if (running_) boundary = now_ + running_->remaining;
    if (!events_.empty() &&
        (!boundary || events_.top().time < *boundary)) {
      boundary = events_.top().time;
    }

    if (!boundary || *boundary > end) {
      // Nothing (relevant) happens before the horizon; burn partial CPU on
      // the running job and stop at `end`.
      if (running_) {
        running_->remaining = running_->remaining - (end - now_);
      }
      now_ = end;
      return;
    }

    if (running_) {
      running_->remaining = running_->remaining - (*boundary - now_);
    }
    now_ = *boundary;

    if (running_ && running_->remaining <= RelativeTime::zero()) {
      complete_running();
      continue;
    }
    while (!events_.empty() && events_.top().time == now_) {
      Event ev = events_.top();
      events_.pop();
      handle_event(ev);
    }
  }
}

}  // namespace rtcf::sim
