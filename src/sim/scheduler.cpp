#include "sim/scheduler.hpp"

#include <algorithm>
#include <sstream>

#include "util/assert.hpp"

namespace rtcf::sim {

const char* to_string(TraceKind k) noexcept {
  switch (k) {
    case TraceKind::Release:
      return "release";
    case TraceKind::Start:
      return "start";
    case TraceKind::Preempt:
      return "preempt";
    case TraceKind::Resume:
      return "resume";
    case TraceKind::Complete:
      return "complete";
    case TraceKind::DeadlineMiss:
      return "miss";
    case TraceKind::GcStart:
      return "gc-start";
    case TraceKind::GcEnd:
      return "gc-end";
    case TraceKind::Shed:
      return "shed";
    case TraceKind::ModeChange:
      return "mode-change";
    case TraceKind::PlanChange:
      return "plan-change";
  }
  return "?";
}

std::string TraceEvent::to_string(const PreemptiveScheduler& sched) const {
  std::ostringstream os;
  os << time.nanos() << "ns " << sim::to_string(kind);
  if (task != kNoTask) {
    os << " " << sched.config(task).name << "#" << release_seq;
    if (sched.cpu_count() > 1) {
      os << "@cpu" << sched.config(task).cpu;
    }
  }
  return os.str();
}

PreemptiveScheduler::PreemptiveScheduler(std::size_t cpus) {
  RTCF_REQUIRE(cpus > 0, "scheduler needs at least one simulated CPU");
  ready_.resize(cpus);
  running_.resize(cpus);
}

TaskId PreemptiveScheduler::add_task_internal(TaskConfig config,
                                              bool release_timeline) {
  RTCF_REQUIRE(!config.name.empty(), "task needs a name");
  RTCF_REQUIRE(config.release != ReleaseKind::Periodic ||
                   config.period > RelativeTime::zero(),
               "periodic task needs a positive period");
  RTCF_REQUIRE(config.cpu < cpu_count(),
               "task '" + config.name + "' pinned to CPU " +
                   std::to_string(config.cpu) + " of a " +
                   std::to_string(cpu_count()) + "-CPU scheduler");
  tasks_.push_back(Task{std::move(config), TaskStats{}, 0, {}, false});
  const TaskId id = tasks_.size() - 1;
  if (release_timeline &&
      tasks_[id].config.release == ReleaseKind::Periodic) {
    push_event(tasks_[id].config.start, EventKind::TaskRelease, id);
  }
  return id;
}

TaskId PreemptiveScheduler::add_task(TaskConfig config) {
  return add_task_internal(std::move(config), /*release_timeline=*/true);
}

void PreemptiveScheduler::set_on_complete(
    TaskId task, std::function<void(AbsoluteTime)> on_complete) {
  RTCF_REQUIRE(task < tasks_.size(), "unknown task id");
  tasks_[task].config.on_complete = std::move(on_complete);
}

void PreemptiveScheduler::set_release_gate(
    TaskId task, std::function<bool(TaskId, std::uint64_t)> release_gate) {
  RTCF_REQUIRE(task < tasks_.size(), "unknown task id");
  tasks_[task].config.release_gate = std::move(release_gate);
}

void PreemptiveScheduler::post_arrival(TaskId task, AbsoluteTime t) {
  RTCF_REQUIRE(task < tasks_.size(), "unknown task id");
  RTCF_REQUIRE(t >= now_, "arrival posted in the simulated past");
  Task& tk = tasks_[task];
  RTCF_REQUIRE(tk.config.release != ReleaseKind::Periodic,
               "periodic tasks release on their own timeline");
  ++tk.stats.arrivals_posted;
  if (tk.config.release == ReleaseKind::Sporadic &&
      !tk.config.min_interarrival.is_zero() && tk.has_arrival &&
      t - tk.last_arrival < tk.config.min_interarrival) {
    ++tk.stats.rejected_arrivals;
    return;
  }
  tk.last_arrival = t;
  tk.has_arrival = true;
  ++tk.stats.pending_arrivals;
  push_event(t, EventKind::TaskRelease, task);
}

std::size_t PreemptiveScheduler::queued_jobs(TaskId id) const {
  RTCF_REQUIRE(id < tasks_.size(), "unknown task id");
  std::size_t n = 0;
  for (const std::vector<Job>& queue : ready_) {
    for (const Job& job : queue) {
      if (job.task == id) ++n;
    }
  }
  for (const std::optional<Job>& running : running_) {
    if (running && running->task == id) ++n;
  }
  return n;
}

void PreemptiveScheduler::schedule_mode_change(AbsoluteTime t,
                                               std::vector<TaskMod> mods) {
  RTCF_REQUIRE(t >= now_, "mode change scheduled in the simulated past");
  for (const TaskMod& mod : mods) {
    RTCF_REQUIRE(mod.task < tasks_.size(), "unknown task id in mode change");
    RTCF_REQUIRE(mod.period.is_zero() ||
                     mod.period > RelativeTime::zero(),
                 "mode-change period override must be positive");
  }
  mode_changes_.push_back(std::move(mods));
  push_event(t, EventKind::ModeChange, mode_changes_.size() - 1);
}

std::vector<TaskId> PreemptiveScheduler::schedule_plan_change(
    AbsoluteTime t, PlanChange change) {
  RTCF_REQUIRE(t >= now_, "plan change scheduled in the simulated past");
  for (const TaskMod& mod : change.mods) {
    RTCF_REQUIRE(mod.task < tasks_.size(), "unknown task id in plan change");
    RTCF_REQUIRE(mod.period.is_zero() || mod.period > RelativeTime::zero(),
                 "plan-change period override must be positive");
  }
  PlanChangeRec rec;
  rec.mods = std::move(change.mods);
  for (TaskConfig& config : change.additions) {
    // The task exists now (stable id, wireable) but is dormant: disabled
    // and with no timeline event until the change instant.
    const TaskId id =
        add_task_internal(std::move(config), /*release_timeline=*/false);
    tasks_[id].enabled = false;
    rec.added.push_back(id);
  }
  plan_changes_.push_back(std::move(rec));
  const std::size_t index = plan_changes_.size() - 1;
  push_event(t, EventKind::PlanChange, index);
  return plan_changes_[index].added;
}

void PreemptiveScheduler::schedule_callback(AbsoluteTime t,
                                            std::function<void()> fn) {
  RTCF_REQUIRE(t >= now_, "callback scheduled in the simulated past");
  RTCF_REQUIRE(static_cast<bool>(fn), "callback must be callable");
  callbacks_.push_back(std::move(fn));
  push_event(t, EventKind::Callback, callbacks_.size() - 1);
}

void PreemptiveScheduler::push_event(AbsoluteTime t, EventKind kind,
                                     TaskId task) {
  events_.push(Event{t, event_order_++, kind, task});
}

void PreemptiveScheduler::record(TraceKind kind, TaskId task,
                                 std::uint64_t seq) {
  if (trace_enabled_) trace_.push_back(TraceEvent{now_, kind, task, seq});
}

bool PreemptiveScheduler::runnable(const Job& job) const noexcept {
  if (!gc_active_) return true;
  return tasks_[job.task].config.kind == ThreadKind::NoHeapRealtime;
}

const PreemptiveScheduler::Job* PreemptiveScheduler::best_ready(
    std::size_t cpu) const {
  const Job* best = nullptr;
  for (const Job& job : ready_[cpu]) {
    if (!runnable(job)) continue;
    if (best == nullptr) {
      best = &job;
      continue;
    }
    const int pa = tasks_[job.task].config.priority;
    const int pb = tasks_[best->task].config.priority;
    if (pa > pb ||
        (pa == pb && (job.release_time < best->release_time ||
                      (job.release_time == best->release_time &&
                       job.enqueue_order < best->enqueue_order)))) {
      best = &job;
    }
  }
  return best;
}

void PreemptiveScheduler::suspend_running(std::size_t cpu) {
  RTCF_ASSERT(running_[cpu].has_value());
  Job suspended = *running_[cpu];
  ++tasks_[suspended.task].stats.preemptions;
  record(TraceKind::Preempt, suspended.task, suspended.seq);
  running_[cpu].reset();
  ready_[cpu].push_back(suspended);
}

void PreemptiveScheduler::dispatch(std::size_t cpu) {
  const Job* best = best_ready(cpu);
  if (best == nullptr) return;
  if (running_[cpu]) {
    // Preempt only for strictly higher priority; FIFO within a band.
    if (tasks_[best->task].config.priority <=
        tasks_[running_[cpu]->task].config.priority) {
      return;
    }
    suspend_running(cpu);
    // `best` may have been invalidated by the push; re-resolve.
    best = best_ready(cpu);
    RTCF_ASSERT(best != nullptr);
  }
  Job job = *best;
  ready_[cpu].erase(ready_[cpu].begin() + (best - ready_[cpu].data()));
  record(job.started ? TraceKind::Resume : TraceKind::Start, job.task,
         job.seq);
  job.started = true;
  running_[cpu] = job;
}

void PreemptiveScheduler::release_job(TaskId task, AbsoluteTime t) {
  Task& tk = tasks_[task];
  if (tk.config.release != ReleaseKind::Periodic &&
      tk.stats.pending_arrivals > 0) {
    --tk.stats.pending_arrivals;
  }
  // Mode gate: a task disabled by a mode change releases nothing. The
  // periodic timeline keeps ticking silently — no job, no sequence number,
  // no trace — so a later re-enabling change resumes on the original grid
  // with no catch-up burst (the launcher's anchor realignment, mirrored).
  if (!tk.enabled) {
    if (tk.config.release == ReleaseKind::Periodic) {
      push_event(t + tk.config.period, EventKind::TaskRelease, task);
    } else {
      ++tk.stats.disabled_arrivals;
    }
    return;
  }
  // Admission gate (overload governor mirror): a shed release consumes its
  // sequence number and advances the periodic timeline but queues no job.
  if (tk.config.release_gate &&
      !tk.config.release_gate(task, tk.next_seq)) {
    const std::uint64_t seq = tk.next_seq++;
    ++tk.stats.shed_releases;
    record(TraceKind::Shed, task, seq);
    if (tk.config.release == ReleaseKind::Periodic) {
      push_event(t + tk.config.period, EventKind::TaskRelease, task);
    }
    return;
  }
  Job job;
  job.task = task;
  job.seq = tk.next_seq++;
  job.release_time = t;
  job.remaining = tk.config.cost;
  job.enqueue_order = enqueue_order_++;
  record(TraceKind::Release, task, job.seq);
  ready_[tk.config.cpu].push_back(job);
  if (tk.config.release == ReleaseKind::Periodic) {
    // Drift-free: next release anchored on this release's instant.
    push_event(t + tk.config.period, EventKind::TaskRelease, task);
  }
}

void PreemptiveScheduler::complete_running(std::size_t cpu) {
  RTCF_ASSERT(running_[cpu].has_value());
  Job job = *running_[cpu];
  running_[cpu].reset();
  Task& tk = tasks_[job.task];
  ++tk.stats.releases_completed;
  const RelativeTime response = now_ - job.release_time;
  tk.stats.response_times_us.add(response.to_micros());
  record(TraceKind::Complete, job.task, job.seq);
  RelativeTime deadline = tk.config.deadline;
  if (deadline.is_zero() && tk.config.release == ReleaseKind::Periodic) {
    deadline = tk.config.period;
  }
  if (!deadline.is_zero() && response > deadline) {
    ++tk.stats.deadline_misses;
    record(TraceKind::DeadlineMiss, job.task, job.seq);
  }
  if (tk.config.on_complete) tk.config.on_complete(now_);
}

void PreemptiveScheduler::handle_event(const Event& ev) {
  switch (ev.kind) {
    case EventKind::TaskRelease:
      release_job(ev.task, now_);
      break;
    case EventKind::GcStart: {
      gc_active_ = true;
      ++gc_pauses_;
      record(TraceKind::GcStart, TraceEvent::kNoTask, 0);
      // One stop-the-world collector stalls every CPU's non-NHRT mutator.
      for (std::size_t cpu = 0; cpu < running_.size(); ++cpu) {
        if (running_[cpu] && tasks_[running_[cpu]->task].config.kind !=
                                 ThreadKind::NoHeapRealtime) {
          suspend_running(cpu);
        }
      }
      push_event(now_ + gc_.pause, EventKind::GcEnd, TraceEvent::kNoTask);
      push_event(now_ + gc_.interval, EventKind::GcStart,
                 TraceEvent::kNoTask);
      break;
    }
    case EventKind::GcEnd:
      gc_active_ = false;
      record(TraceKind::GcEnd, TraceEvent::kNoTask, 0);
      break;
    case EventKind::ModeChange: {
      // Atomic at this instant: jobs already released run to completion
      // (the drain), future releases follow the new settings.
      for (const TaskMod& mod : mode_changes_[ev.task]) {
        Task& tk = tasks_[mod.task];
        tk.enabled = mod.enabled;
        if (!mod.period.is_zero() &&
            tk.config.release == ReleaseKind::Periodic) {
          tk.config.period = mod.period;
        }
      }
      record(TraceKind::ModeChange, TraceEvent::kNoTask, ev.task);
      break;
    }
    case EventKind::PlanChange: {
      // The live-reload mirror, atomic at this instant: retired tasks'
      // jobs already released run to completion (the drain half of
      // quiescence); added tasks wake onto their anchor grid — the first
      // release is the first grid point strictly after now, matching the
      // wall-clock launcher.
      const PlanChangeRec& rec = plan_changes_[ev.task];
      for (const TaskMod& mod : rec.mods) {
        Task& tk = tasks_[mod.task];
        tk.enabled = mod.enabled;
        if (!mod.period.is_zero() &&
            tk.config.release == ReleaseKind::Periodic) {
          tk.config.period = mod.period;
        }
      }
      for (const TaskId id : rec.added) {
        Task& tk = tasks_[id];
        tk.enabled = true;
        if (tk.config.release != ReleaseKind::Periodic) continue;
        // First release at the first grid point strictly after max(now,
        // anchor) — the exact formula of the launcher's align_to_grid (k
        // clamped to >= 1, so a future anchor releases at anchor+period,
        // matching a run-start timeline whose first release is one period
        // after its anchor).
        const std::int64_t period = tk.config.period.nanos();
        const std::int64_t elapsed = (now_ - tk.config.start).nanos();
        const std::int64_t k =
            (period <= 0 || elapsed < 0) ? 1 : elapsed / period + 1;
        push_event(tk.config.start +
                       RelativeTime::nanoseconds(
                           k * std::max<std::int64_t>(period, 1)),
                   EventKind::TaskRelease, id);
      }
      record(TraceKind::PlanChange, TraceEvent::kNoTask, ev.task);
      break;
    }
    case EventKind::Callback:
      // Deliberately untraced: schedules that use no callbacks replay
      // their historical traces bit-for-bit, and the data-plane mirror's
      // flush/credit timers leave no scheduling footprint of their own.
      callbacks_[ev.task]();
      break;
  }
}

void PreemptiveScheduler::run_until(AbsoluteTime end) {
  const std::size_t cpus = cpu_count();
  if (gc_.enabled() && !gc_scheduled_) {
    push_event(now_ + gc_.interval, EventKind::GcStart, TraceEvent::kNoTask);
    gc_scheduled_ = true;
  }
  for (;;) {
    for (std::size_t cpu = 0; cpu < cpus; ++cpu) dispatch(cpu);
    // Next instant at which anything can change: some running job
    // finishes, or the earliest pending event fires.
    std::optional<AbsoluteTime> boundary;
    for (std::size_t cpu = 0; cpu < cpus; ++cpu) {
      if (!running_[cpu]) continue;
      const AbsoluteTime finish = now_ + running_[cpu]->remaining;
      if (!boundary || finish < *boundary) boundary = finish;
    }
    if (!events_.empty() &&
        (!boundary || events_.top().time < *boundary)) {
      boundary = events_.top().time;
    }

    if (!boundary || *boundary > end) {
      // Nothing (relevant) happens before the horizon; burn partial CPU on
      // the running jobs and stop at `end`.
      for (std::size_t cpu = 0; cpu < cpus; ++cpu) {
        if (running_[cpu]) {
          running_[cpu]->remaining =
              running_[cpu]->remaining - (end - now_);
        }
      }
      now_ = end;
      return;
    }

    for (std::size_t cpu = 0; cpu < cpus; ++cpu) {
      if (running_[cpu]) {
        running_[cpu]->remaining =
            running_[cpu]->remaining - (*boundary - now_);
      }
    }
    now_ = *boundary;

    // Completions first (in CPU order, deterministically), then events at
    // the same instant on the next pass — matching the single-CPU
    // executive's order exactly.
    bool completed = false;
    for (std::size_t cpu = 0; cpu < cpus; ++cpu) {
      if (running_[cpu] && running_[cpu]->remaining <= RelativeTime::zero()) {
        complete_running(cpu);
        completed = true;
      }
    }
    if (completed) continue;
    while (!events_.empty() && events_.top().time == now_) {
      Event ev = events_.top();
      events_.pop();
      handle_event(ev);
    }
  }
}

}  // namespace rtcf::sim
