#include "sim/architecture_sim.hpp"

#include <vector>

#include "util/assert.hpp"

namespace rtcf::sim {

using model::ActivationKind;
using model::ActiveComponent;
using model::Architecture;
using model::Binding;
using model::DomainType;
using model::Protocol;
using model::ThreadDomain;

namespace {

ThreadKind to_thread_kind(DomainType type) noexcept {
  switch (type) {
    case DomainType::NoHeapRealtime:
      return ThreadKind::NoHeapRealtime;
    case DomainType::Realtime:
      return ThreadKind::Realtime;
    case DomainType::Regular:
      return ThreadKind::Regular;
  }
  return ThreadKind::Regular;
}

}  // namespace

SimMapping map_architecture(
    const Architecture& arch, PreemptiveScheduler& scheduler,
    const std::function<std::size_t(const std::string&)>& cpu_of) {
  SimMapping mapping;
  for (const auto* active : arch.all_of<ActiveComponent>()) {
    const ThreadDomain* domain = arch.thread_domain_of(*active);
    RTCF_REQUIRE(domain != nullptr,
                 "active component '" + active->name() +
                     "' has no ThreadDomain; validate the architecture");
    TaskConfig config;
    config.name = active->name();
    config.kind = to_thread_kind(domain->type());
    config.priority = domain->priority();
    config.cost = active->cost();
    config.cpu = cpu_of ? cpu_of(active->name()) : 0;
    if (active->activation() == ActivationKind::Periodic) {
      config.release = ReleaseKind::Periodic;
      config.period = active->period();
    } else {
      config.release = ReleaseKind::Sporadic;
      config.min_interarrival = active->period();
    }
    mapping.tasks[active->name()] = scheduler.add_task(std::move(config));
  }
  // Chain asynchronous bindings: client completion -> server arrival.
  for (const auto* active : arch.all_of<ActiveComponent>()) {
    std::vector<TaskId> downstream;
    for (const Binding& b : arch.bindings()) {
      if (b.client.component != active->name()) continue;
      if (b.desc.protocol != Protocol::Asynchronous) continue;
      auto it = mapping.tasks.find(b.server.component);
      if (it != mapping.tasks.end()) downstream.push_back(it->second);
    }
    if (downstream.empty()) continue;
    scheduler.set_on_complete(
        mapping.tasks.at(active->name()),
        [&scheduler, downstream](AbsoluteTime t) {
          for (TaskId target : downstream) scheduler.post_arrival(target, t);
        });
  }
  return mapping;
}

}  // namespace rtcf::sim
