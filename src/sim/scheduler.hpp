// Discrete-event simulation of partitioned fixed-priority preemptive
// scheduling with a stop-the-world GC interference model.
//
// The paper evaluates on a Sun RTSJ VM over RT-Preempt Linux. We replace
// that testbed with a deterministic virtual-time scheduler so the
// determinism claims (§5.1) become *exactly* checkable:
//   * one or more simulated CPUs; each task is pinned to one CPU
//     (partitioned fixed-priority scheduling — the virtual-time mirror of
//     the wall-clock partitioned executive), with per-CPU ready queues and
//     preemption decided independently per CPU;
//   * periodic tasks release on their timeline, sporadic/aperiodic tasks
//     release when arrivals are posted (completion callbacks can post
//     arrivals, which is how the Fig. 4 pipeline is wired end-to-end);
//   * a GC model injects stop-the-world pauses that block Regular and
//     Realtime tasks on *every* CPU but never NoHeapRealtime tasks —
//     RTSJ's core promise, and the reason one collector still stalls a
//     whole multi-core mutator;
//   * per-release response times, deadline misses, and a full trace of
//     scheduling decisions are recorded.
//
// Everything is deterministic: same inputs, same trace, bit-for-bit — and a
// multi-CPU scheduler given a single partition records the single-CPU
// trace() event sequence bit-for-bit (the *rendered* strings differ only in
// the "@cpu<k>" suffix multi-CPU schedulers append; see TraceEvent).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <string>
#include <vector>

#include "rtsj/memory/context.hpp"
#include "rtsj/threads/params.hpp"
#include "rtsj/time/time.hpp"
#include "util/stats.hpp"

namespace rtcf::sim {

using rtsj::AbsoluteTime;
using rtsj::RelativeTime;
using rtsj::ReleaseKind;
using rtsj::ThreadKind;

/// Identifies a task inside one scheduler instance.
using TaskId = std::size_t;

/// Static description of a simulated task.
struct TaskConfig {
  std::string name;
  ThreadKind kind = ThreadKind::Realtime;
  int priority = rtsj::kMinRtPriority;
  ReleaseKind release = ReleaseKind::Periodic;
  AbsoluteTime start{};              ///< First periodic release.
  RelativeTime period{};             ///< Periodic only.
  RelativeTime min_interarrival{};   ///< Sporadic only; zero = unconstrained.
  RelativeTime cost{};               ///< Execution demand per release.
  RelativeTime deadline{};           ///< Zero = implicit (period).
  std::size_t cpu = 0;               ///< Simulated CPU the task is pinned to.
  /// Invoked in virtual time when a release completes; may post arrivals to
  /// other tasks (pipeline chaining) via the scheduler reference.
  std::function<void(AbsoluteTime completion_time)> on_complete;
  /// Admission gate consulted at every would-be release (periodic timeline
  /// and posted arrivals alike). Returning false sheds the release: no job
  /// is queued, the sequence number is consumed, stats.shed_releases is
  /// incremented and a Shed trace event is recorded — the virtual-time
  /// mirror of the overload governor's admit_release(), which is what
  /// makes governed behaviour deterministically replayable here. Null
  /// admits everything (and leaves traces bit-for-bit unchanged).
  std::function<bool(TaskId task, std::uint64_t seq)> release_gate;
};

/// Periodic stop-the-world collector model: every `interval` of virtual
/// time, mutator threads that are not NHRT are blocked for `pause`.
struct GcModel {
  RelativeTime interval{};
  RelativeTime pause{};
  bool enabled() const noexcept {
    return !interval.is_zero() && !pause.is_zero();
  }
};

/// What happened, for trace-based assertions.
enum class TraceKind {
  Release,
  Start,
  Preempt,
  Resume,
  Complete,
  DeadlineMiss,
  GcStart,
  GcEnd,
  Shed,        ///< Release rejected by the task's admission gate.
  ModeChange,  ///< A scheduled mode change was applied (seq = change index).
  PlanChange,  ///< A scheduled plan change (live reload mirror) was
               ///< applied: tasks added/retired atomically (seq = index).
};

const char* to_string(TraceKind k) noexcept;

struct TraceEvent {
  AbsoluteTime time{};
  TraceKind kind{};
  TaskId task = kNoTask;
  std::uint64_t release_seq = 0;

  static constexpr TaskId kNoTask = static_cast<TaskId>(-1);
  /// Renders "<t>ns <kind> <task>#<seq>"; schedulers with more than one CPU
  /// append "@cpu<k>" for task events, so single-CPU traces are bit-for-bit
  /// identical to the historical format.
  std::string to_string(const class PreemptiveScheduler& sched) const;
};

/// Accumulated per-task results.
///
/// For sporadic/aperiodic tasks the arrival counters form a conservation
/// identity at any observation instant — the adversity drills audit it
/// mechanically (zero message loss outside declared drop policies):
///
///   arrivals_posted == rejected_arrivals + disabled_arrivals
///                      + shed_releases + releases_completed
///                      + pending_arrivals + queued_jobs(task)
struct TaskStats {
  std::uint64_t releases_completed = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t preemptions = 0;
  std::uint64_t rejected_arrivals = 0;  ///< Sporadic MIT violations.
  std::uint64_t shed_releases = 0;      ///< Admission-gate rejections.
  std::uint64_t arrivals_posted = 0;    ///< Every accepted post_arrival()
                                        ///< call (including MIT-rejected).
  std::uint64_t disabled_arrivals = 0;  ///< Arrivals dropped because the
                                        ///< task was disabled at release.
  std::uint64_t pending_arrivals = 0;   ///< Posted arrivals whose release
                                        ///< instant is still in the future
                                        ///< (instantaneous, not cumulative).
  util::SampleSet response_times_us;    ///< Response time per release, µs.
};

/// The simulator.
class PreemptiveScheduler {
 public:
  /// A scheduler over `cpus` simulated CPUs (partitioned dispatching; tasks
  /// declare their CPU in TaskConfig::cpu).
  explicit PreemptiveScheduler(std::size_t cpus = 1);

  std::size_t cpu_count() const noexcept { return running_.size(); }

  /// Registers a task; returns its id. All tasks must be added before
  /// run_until().
  TaskId add_task(TaskConfig config);

  /// Installs/replaces the completion callback after construction (needed
  /// to chain tasks whose ids are only known once all are added).
  void set_on_complete(TaskId task,
                       std::function<void(AbsoluteTime)> on_complete);

  /// Installs/replaces the admission gate (see TaskConfig::release_gate).
  void set_release_gate(
      TaskId task, std::function<bool(TaskId, std::uint64_t)> release_gate);

  /// Posts an arrival for a sporadic/aperiodic task at time `t` (>= now).
  /// Arrivals in the past of the simulation clock are rejected.
  void post_arrival(TaskId task, AbsoluteTime t);

  /// One task's new settings inside a scheduled mode change — the virtual-
  /// time mirror of the launcher's per-worker release-plan swap.
  struct TaskMod {
    TaskId task = 0;
    /// Disabled tasks release nothing: periodic timelines keep ticking
    /// silently (so a re-enabling change resumes on the original grid, no
    /// catch-up burst) and posted arrivals are ignored. Jobs already
    /// released run to completion — the drain half of quiescence.
    bool enabled = true;
    /// New period for periodic tasks; zero keeps the current one. The
    /// already-scheduled next release keeps its instant; releases after it
    /// use the new period.
    RelativeTime period{};
  };

  /// Schedules a mode change at virtual time `t` (>= now): all mods apply
  /// atomically at that instant and a ModeChange trace event is recorded
  /// with the change index as its seq. Deterministic like everything else:
  /// the same schedule yields bit-for-bit identical traces.
  void schedule_mode_change(AbsoluteTime t, std::vector<TaskMod> mods);

  /// A scheduled structural plan change — the virtual-time mirror of a
  /// live ADL reload: `mods` retire removed tasks (enabled=false, their
  /// timelines tick silently forever) and re-period surviving ones;
  /// `additions` are brand-new tasks that exist from the change instant
  /// on. Each addition's `start` is its anchor: the first release falls
  /// on the first grid point strictly after the change instant, exactly
  /// like the wall-clock launcher's anchor-grid entry.
  struct PlanChange {
    std::vector<TaskMod> mods;
    std::vector<TaskConfig> additions;
  };

  /// Schedules a plan change at virtual time `t` (>= now). The added
  /// tasks' ids are assigned immediately (returned in `additions` order)
  /// so callers can wire mappings/gates before the change applies, but
  /// they release nothing until the change instant. One PlanChange trace
  /// event records the apply, seq = change index; the same schedule
  /// replays bit-for-bit.
  std::vector<TaskId> schedule_plan_change(AbsoluteTime t, PlanChange change);

  /// Schedules an arbitrary callback at virtual time `t` (>= now). The
  /// callback runs at that instant, ordered against same-instant events by
  /// posting order like every other event, and may post arrivals or
  /// schedule further callbacks. No trace event is recorded, so schedules
  /// that use no callbacks keep their traces bit-for-bit unchanged — this
  /// is what the data-plane mirror's flush/credit timers hang off
  /// (dist::SimDataPlane).
  void schedule_callback(AbsoluteTime t, std::function<void()> fn);

  bool task_enabled(TaskId id) const { return tasks_.at(id).enabled; }

  void set_gc_model(GcModel model) { gc_ = model; }

  /// Runs the simulation until virtual time `end`. May be called
  /// repeatedly with increasing horizons.
  void run_until(AbsoluteTime end);

  AbsoluteTime now() const noexcept { return now_; }
  std::size_t task_count() const noexcept { return tasks_.size(); }
  /// Released-but-incomplete jobs of `id` (ready queues + running job) —
  /// the live term of the TaskStats conservation identity.
  std::size_t queued_jobs(TaskId id) const;
  const TaskConfig& config(TaskId id) const { return tasks_.at(id).config; }
  const TaskStats& stats(TaskId id) const { return tasks_.at(id).stats; }

  /// Enables trace recording (off by default; traces grow unbounded).
  void enable_trace(bool on = true) { trace_enabled_ = on; }
  const std::vector<TraceEvent>& trace() const noexcept { return trace_; }

  std::uint64_t gc_pause_count() const noexcept { return gc_pauses_; }

 private:
  struct Job {
    TaskId task;
    std::uint64_t seq;
    AbsoluteTime release_time;
    RelativeTime remaining;
    std::uint64_t enqueue_order;  ///< FIFO tie-break within a priority.
    bool started = false;
  };

  struct Task {
    TaskConfig config;
    TaskStats stats;
    std::uint64_t next_seq = 0;
    AbsoluteTime last_arrival{};
    bool has_arrival = false;
    bool enabled = true;  ///< Cleared/set by mode-change events.
  };

  enum class EventKind {
    TaskRelease,
    GcStart,
    GcEnd,
    ModeChange,
    PlanChange,
    Callback,
  };

  struct PlanChangeRec {
    std::vector<TaskMod> mods;
    std::vector<TaskId> added;
  };

  struct Event {
    AbsoluteTime time;
    std::uint64_t order;  ///< Global tie-break: earlier-posted first.
    EventKind kind;
    TaskId task;
  };

  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.order > b.order;
    }
  };

  void push_event(AbsoluteTime t, EventKind kind, TaskId task);
  void handle_event(const Event& ev);
  void release_job(TaskId task, AbsoluteTime t);
  void dispatch(std::size_t cpu);
  bool runnable(const Job& job) const noexcept;
  void complete_running(std::size_t cpu);
  void record(TraceKind kind, TaskId task, std::uint64_t seq);
  const Job* best_ready(std::size_t cpu) const;
  void suspend_running(std::size_t cpu);

  TaskId add_task_internal(TaskConfig config, bool release_timeline);

  std::vector<Task> tasks_;
  /// Scheduled mode changes, indexed by Event::task for ModeChange events.
  std::vector<std::vector<TaskMod>> mode_changes_;
  /// Scheduled plan changes, indexed by Event::task for PlanChange events.
  std::vector<PlanChangeRec> plan_changes_;
  /// Scheduled callbacks, indexed by Event::task for Callback events.
  std::vector<std::function<void()>> callbacks_;
  std::priority_queue<Event, std::vector<Event>, EventAfter> events_;
  /// Per-CPU ready queue and running job (partitioned dispatching).
  std::vector<std::vector<Job>> ready_;
  std::vector<std::optional<Job>> running_;
  AbsoluteTime now_{};
  bool gc_active_ = false;
  GcModel gc_{};
  bool gc_scheduled_ = false;
  std::uint64_t gc_pauses_ = 0;
  std::uint64_t event_order_ = 0;
  std::uint64_t enqueue_order_ = 0;
  bool trace_enabled_ = false;
  std::vector<TraceEvent> trace_;
};

}  // namespace rtcf::sim
