// Response-time analysis (RTA) for fixed-priority preemptive scheduling.
//
// The paper explicitly scopes itself *after* timing and schedulability
// analysis ("specially timing and schedulability analysis, which has to be
// included in a design procedure. The scope of our proposal is placed
// directly afterwards these stages"). We provide the classic RTA as a
// companion: designers can feed an architecture's ThreadDomain/period/cost
// attributes straight into the analysis and compare its bounds against the
// simulator. The fixed-point iteration is
//
//   W_i^(k+1) = C_i + sum_{j in hep(i)} ceil(W_i^(k) / T_j) * C_j
//
// where hep(i) are tasks with priority >= task i's (equal priorities
// interfere too under FIFO-within-band dispatching, counted once as
// blocking plus recurring interference — a safe over-approximation).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "model/metamodel.hpp"
#include "rtsj/time/time.hpp"

namespace rtcf::sim {

/// One task as seen by the analysis.
struct RtaTask {
  std::string name;
  int priority = 0;
  rtsj::RelativeTime period{};    ///< Period / minimum interarrival.
  rtsj::RelativeTime cost{};      ///< Worst-case execution time.
  rtsj::RelativeTime deadline{};  ///< Zero = implicit (= period).

  rtsj::RelativeTime effective_deadline() const noexcept {
    return deadline.is_zero() ? period : deadline;
  }
};

/// Worst-case response bound for `tasks[index]`, or nullopt when the
/// fixed-point diverges past the deadline (unschedulable) or iteration
/// limit.
std::optional<rtsj::RelativeTime> response_time_bound(
    const std::vector<RtaTask>& tasks, std::size_t index,
    int max_iterations = 1000);

/// Result of analysing a whole task set.
struct RtaResult {
  struct Entry {
    RtaTask task;
    std::optional<rtsj::RelativeTime> response;
    bool schedulable = false;
  };
  std::vector<Entry> entries;
  bool all_schedulable = false;
};

RtaResult analyze(const std::vector<RtaTask>& tasks);

/// Extracts the task set of an architecture: one RtaTask per periodic
/// active component (priority from its ThreadDomain, period/cost from the
/// component). Sporadic components with a positive minimum interarrival
/// are included with that as their period; unconstrained sporadics are
/// skipped (unbounded interference is not analysable).
std::vector<RtaTask> tasks_from_architecture(const model::Architecture& arch);

}  // namespace rtcf::sim
