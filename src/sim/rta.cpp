#include "sim/rta.hpp"

#include "util/assert.hpp"

namespace rtcf::sim {

using rtsj::RelativeTime;

std::optional<RelativeTime> response_time_bound(
    const std::vector<RtaTask>& tasks, std::size_t index,
    int max_iterations) {
  RTCF_REQUIRE(index < tasks.size(), "task index out of range");
  const RtaTask& task = tasks[index];
  RTCF_REQUIRE(task.cost > RelativeTime::zero(),
               "RTA needs a positive cost for '" + task.name + "'");
  const RelativeTime deadline = task.effective_deadline();

  RelativeTime response = task.cost;
  for (int iter = 0; iter < max_iterations; ++iter) {
    RelativeTime demand = task.cost;
    for (std::size_t j = 0; j < tasks.size(); ++j) {
      if (j == index) continue;
      const RtaTask& other = tasks[j];
      if (other.priority < task.priority) continue;  // cannot interfere
      RTCF_REQUIRE(other.period > RelativeTime::zero(),
                   "RTA needs positive periods ('" + other.name + "')");
      // ceil(response / T_j) releases of task j inside the window.
      const std::int64_t releases =
          (response.nanos() + other.period.nanos() - 1) /
          other.period.nanos();
      demand = demand + other.cost * releases;
    }
    if (demand == response) return response;  // fixed point
    response = demand;
    if (!deadline.is_zero() && response > deadline) {
      return std::nullopt;  // diverged past the deadline
    }
  }
  return std::nullopt;  // no fixed point within the iteration budget
}

RtaResult analyze(const std::vector<RtaTask>& tasks) {
  RtaResult result;
  result.all_schedulable = true;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    RtaResult::Entry entry;
    entry.task = tasks[i];
    entry.response = response_time_bound(tasks, i);
    entry.schedulable =
        entry.response.has_value() &&
        (entry.task.effective_deadline().is_zero() ||
         *entry.response <= entry.task.effective_deadline());
    result.all_schedulable = result.all_schedulable && entry.schedulable;
    result.entries.push_back(std::move(entry));
  }
  return result;
}

std::vector<RtaTask> tasks_from_architecture(
    const model::Architecture& arch) {
  std::vector<RtaTask> tasks;
  for (const auto* active : arch.all_of<model::ActiveComponent>()) {
    const auto* domain = arch.thread_domain_of(*active);
    if (domain == nullptr) continue;
    if (active->period() <= rtsj::RelativeTime::zero()) {
      continue;  // unconstrained sporadic: unbounded interference
    }
    if (active->cost() <= rtsj::RelativeTime::zero()) continue;
    RtaTask task;
    task.name = active->name();
    task.priority = domain->priority();
    task.period = active->period();
    task.cost = active->cost();
    tasks.push_back(std::move(task));
  }
  return tasks;
}

}  // namespace rtcf::sim
