// §4.1 non-functional runtime components: ThreadDomain and MemoryArea
// controllers inside the reified membranes.
#include <gtest/gtest.h>

#include "membrane/nf_controllers.hpp"
#include "scenario/production_scenario.hpp"
#include "soleil/application.hpp"

namespace rtcf::membrane {
namespace {

TEST(ThreadDomainControllerTest, AggregatesThreadStatistics) {
  rtsj::RealtimeThread a("a", rtsj::ThreadKind::Realtime, 20,
                         rtsj::ReleaseProfile::aperiodic());
  rtsj::RealtimeThread b("b", rtsj::ThreadKind::Realtime, 20,
                         rtsj::ReleaseProfile::aperiodic());
  ThreadDomainController ctrl(model::DomainType::Realtime, 20);
  ctrl.attach_thread(&a);
  ctrl.attach_thread(&b);
  a.run_with_context([] {});
  a.run_with_context([] {});
  b.run_with_context([] {});
  EXPECT_EQ(ctrl.total_releases(), 3u);
  EXPECT_EQ(ctrl.total_deadline_misses(), 0u);
  b.notify_deadline_miss({});
  EXPECT_EQ(ctrl.total_deadline_misses(), 1u);
}

TEST(ThreadDomainControllerTest, PriorityChangeMovesWholeDomain) {
  rtsj::RealtimeThread a("a2", rtsj::ThreadKind::Realtime, 20,
                         rtsj::ReleaseProfile::aperiodic());
  rtsj::RealtimeThread b("b2", rtsj::ThreadKind::Realtime, 20,
                         rtsj::ReleaseProfile::aperiodic());
  ThreadDomainController ctrl(model::DomainType::Realtime, 20);
  ctrl.attach_thread(&a);
  ctrl.attach_thread(&b);
  EXPECT_TRUE(ctrl.set_priority(28));
  EXPECT_EQ(ctrl.priority(), 28);
  EXPECT_EQ(a.priority(), 28);
  EXPECT_EQ(b.priority(), 28);
}

TEST(ThreadDomainControllerTest, BandViolationIsRefused) {
  rtsj::RealtimeThread a("a3", rtsj::ThreadKind::Realtime, 20,
                         rtsj::ReleaseProfile::aperiodic());
  ThreadDomainController rt(model::DomainType::Realtime, 20);
  rt.attach_thread(&a);
  EXPECT_FALSE(rt.set_priority(5)) << "below the RT band";
  EXPECT_FALSE(rt.set_priority(40)) << "above the RT band";
  EXPECT_EQ(a.priority(), 20) << "nothing changed";

  ThreadDomainController reg(model::DomainType::Regular, 5);
  EXPECT_FALSE(reg.set_priority(15)) << "regular band tops out at 10";
  EXPECT_TRUE(reg.set_priority(10));
}

TEST(MemoryAreaControllerTest, TracksConsumption) {
  rtsj::ScopedMemory scope("nf-scope", 1024);
  MemoryAreaController ctrl(&scope);
  EXPECT_DOUBLE_EQ(ctrl.utilization(), 0.0);
  EXPECT_FALSE(ctrl.over_budget());
  scope.make<std::array<char, 900>>();
  EXPECT_GT(ctrl.utilization(), 0.85);
  EXPECT_TRUE(ctrl.over_budget(0.8));
  EXPECT_EQ(ctrl.consumed(), scope.memory_consumed());
}

TEST(MemoryAreaControllerTest, UnboundedAreasNeverOverBudget) {
  MemoryAreaController ctrl(&rtsj::ImmortalMemory::instance());
  EXPECT_DOUBLE_EQ(ctrl.utilization(), 0.0);
  EXPECT_FALSE(ctrl.over_budget());
}

TEST(NfControllersIntegrationTest, SoleilReifiesThemInMembranes) {
  const auto arch = scenario::make_production_architecture();
  auto app = soleil::build_application(arch, soleil::Mode::Soleil);
  app->start();
  for (int i = 0; i < 10; ++i) app->iterate("ProductionLine");

  auto* nhrt1 = app->find_membrane("NHRT1");
  ASSERT_NE(nhrt1, nullptr);
  auto* domain_ctrl = dynamic_cast<ThreadDomainController*>(
      nhrt1->controller("thread-domain-controller"));
  ASSERT_NE(domain_ctrl, nullptr);
  EXPECT_EQ(domain_ctrl->type(), model::DomainType::NoHeapRealtime);
  EXPECT_EQ(domain_ctrl->priority(), 30);
  ASSERT_EQ(domain_ctrl->threads().size(), 1u);
  EXPECT_EQ(domain_ctrl->total_releases(), 10u);

  auto* s1 = app->find_membrane("S1");
  ASSERT_NE(s1, nullptr);
  auto* area_ctrl = dynamic_cast<MemoryAreaController*>(
      s1->controller("memory-area-controller"));
  ASSERT_NE(area_ctrl, nullptr);
  EXPECT_GT(area_ctrl->consumed(), 0u)
      << "the console content lives in the scope";
  EXPECT_EQ(area_ctrl->area().name(), "cscope");

  // The control interface surfaces in the membrane's introspection.
  const auto kinds = nhrt1->controller_kinds();
  EXPECT_NE(std::find(kinds.begin(), kinds.end(),
                      "thread-domain-controller"),
            kinds.end());
  // Runtime adaptation through the controller: drop NHRT1 to priority 28.
  EXPECT_TRUE(domain_ctrl->set_priority(28));
  EXPECT_EQ(app->thread_of("ProductionLine")->priority(), 28);
  app->stop();
}

}  // namespace
}  // namespace rtcf::membrane
