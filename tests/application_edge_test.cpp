// Edge cases of the assembled applications: fan-in, shared passive
// services, deeper pipelines, and failure modes of the build step.
#include <gtest/gtest.h>

#include "comm/content.hpp"
#include "model/views.hpp"
#include "runtime/content_registry.hpp"
#include "soleil/application.hpp"
#include "validate/validator.hpp"

namespace rtcf {
namespace {

using namespace rtcf::model;
using soleil::Mode;

class CounterContent final : public comm::Content {
 public:
  void on_release() override {
    comm::Message m;
    m.sequence = ++released;
    for (std::size_t i = 0; i < port_count(); ++i) port(i).send(m);
  }
  void on_message(const comm::Message&) override { ++received; }
  comm::Message on_invoke(const comm::Message& m) override {
    ++invoked;
    return m;
  }
  std::uint64_t released = 0;
  std::uint64_t received = 0;
  std::uint64_t invoked = 0;
};

struct Register {
  Register() {
    runtime::ContentRegistry::instance().register_class<CounterContent>(
        "CounterContent");
  }
};
const Register register_counter;

Architecture fan_in_architecture() {
  Architecture arch;
  BusinessView business(arch);
  auto& p1 = business.active("P1", ActivationKind::Periodic,
                             rtsj::RelativeTime::milliseconds(1));
  auto& p2 = business.active("P2", ActivationKind::Periodic,
                             rtsj::RelativeTime::milliseconds(2));
  auto& sink = business.active("Sink", ActivationKind::Sporadic);
  for (auto* c : {&p1, &p2}) {
    c->set_content_class("CounterContent");
    business.client_port(*c, "out", "I");
  }
  sink.set_content_class("CounterContent");
  business.server_port(sink, "in", "I");
  business.bind_async("P1", "out", "Sink", "in", 4);
  business.bind_async("P2", "out", "Sink", "in", 4);

  ThreadManagementView threads(arch);
  auto& domain = threads.domain("D", DomainType::Realtime, 20);
  threads.deploy(domain, p1);
  threads.deploy(domain, p2);
  threads.deploy(domain, sink);
  MemoryManagementView memory(arch);
  auto& imm = memory.area("M", AreaType::Immortal, 0);
  memory.deploy(imm, domain);
  return arch;
}

class EdgeTest : public ::testing::TestWithParam<Mode> {};

TEST_P(EdgeTest, FanInAcrossTwoProducers) {
  const auto arch = fan_in_architecture();
  ASSERT_TRUE(validate::validate(arch).ok());
  auto app = soleil::build_application(arch, GetParam());
  app->start();
  for (int i = 0; i < 10; ++i) {
    app->iterate("P1");
    app->iterate("P2");
  }
  const auto* sink =
      dynamic_cast<const CounterContent*>(app->content("Sink"));
  EXPECT_EQ(sink->received, 20u) << "both producers reach the sink";
  // Two independent buffers, one per binding.
  EXPECT_EQ(app->buffers().size(), 2u);
}

TEST_P(EdgeTest, SharedPassiveServiceCalledFromTwoDomains) {
  Architecture arch;
  BusinessView business(arch);
  auto& a = business.active("A", ActivationKind::Periodic,
                            rtsj::RelativeTime::milliseconds(1));
  auto& b = business.active("B", ActivationKind::Periodic,
                            rtsj::RelativeTime::milliseconds(1));
  auto& shared = business.passive("SharedService");
  for (auto* c : {&a, &b}) {
    c->set_content_class("CounterContent");
    business.client_port(*c, "out", "I");
  }
  shared.set_content_class("CounterContent");
  business.server_port(shared, "in", "I");
  business.bind_sync("A", "out", "SharedService", "in");
  business.bind_sync("B", "out", "SharedService", "in");

  ThreadManagementView threads(arch);
  auto& d1 = threads.domain("D1", DomainType::Realtime, 22);
  auto& d2 = threads.domain("D2", DomainType::Realtime, 24);
  threads.deploy(d1, a);
  threads.deploy(d2, b);
  MemoryManagementView memory(arch);
  auto& imm = memory.area("M", AreaType::Immortal, 0);
  memory.deploy(imm, d1);
  memory.deploy(imm, d2);
  memory.deploy(imm, shared);

  ASSERT_TRUE(validate::validate(arch).ok());
  // Sharing: the passive service executes on both callers' domains.
  EXPECT_EQ(validate::executing_domains(arch, shared).size(), 2u);

  auto app = soleil::build_application(arch, GetParam());
  app->start();
  // CounterContent.on_release sends on every port; sync port "out" is
  // bound for call, not send -> releasing would throw. Call directly:
  auto* a_content = dynamic_cast<CounterContent*>(app->content("A"));
  auto* b_content = dynamic_cast<CounterContent*>(app->content("B"));
  comm::Message m;
  (void)a_content->port("out").call(m);
  (void)b_content->port("out").call(m);
  const auto* service =
      dynamic_cast<const CounterContent*>(app->content("SharedService"));
  EXPECT_EQ(service->invoked, 2u);
}

TEST_P(EdgeTest, UnregisteredContentClassFailsTheBuild) {
  Architecture arch;
  auto& a = arch.add_active("A", ActivationKind::Periodic,
                            rtsj::RelativeTime::milliseconds(1));
  a.set_content_class("DefinitelyNotRegistered");
  auto& d = arch.add_thread_domain("D", DomainType::Realtime, 20);
  arch.add_child(d, a);
  EXPECT_THROW(soleil::build_application(arch, GetParam()),
               std::invalid_argument);
}

TEST_P(EdgeTest, MissingContentClassFailsTheBuild) {
  Architecture arch;
  arch.add_active("A", ActivationKind::Periodic,
                  rtsj::RelativeTime::milliseconds(1));
  auto& d = arch.add_thread_domain("D", DomainType::Realtime, 20);
  arch.add_child(d, *arch.find("A"));
  EXPECT_THROW(soleil::build_application(arch, GetParam()),
               soleil::PlanningError);
}

TEST_P(EdgeTest, ReleasingAPassiveComponentThrows) {
  const auto arch = fan_in_architecture();
  auto app = soleil::build_application(arch, GetParam());
  EXPECT_THROW(app->release("NoSuchComponent"), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(AllModes, EdgeTest,
                         ::testing::Values(Mode::Soleil, Mode::MergeAll,
                                           Mode::UltraMerge),
                         [](const auto& info) {
                           return std::string(soleil::to_string(info.param));
                         });

}  // namespace
}  // namespace rtcf
