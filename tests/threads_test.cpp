// Logical RTSJ threads: profiles, contexts, sporadic admission, deadline
// handlers.
#include <gtest/gtest.h>

#include "rtsj/memory/memory_area.hpp"
#include "rtsj/threads/realtime_thread.hpp"

namespace rtcf::rtsj {
namespace {

TEST(ReleaseProfileTest, FactoriesAndImplicitDeadlines) {
  const auto periodic = ReleaseProfile::periodic(
      RelativeTime::milliseconds(10), RelativeTime::microseconds(200));
  EXPECT_EQ(periodic.kind, ReleaseKind::Periodic);
  EXPECT_EQ(periodic.effective_deadline(), RelativeTime::milliseconds(10));

  const auto sporadic =
      ReleaseProfile::sporadic(RelativeTime::milliseconds(5));
  EXPECT_EQ(sporadic.effective_deadline(), RelativeTime::milliseconds(5));

  auto explicit_deadline = ReleaseProfile::periodic(
      RelativeTime::milliseconds(10));
  explicit_deadline.deadline = RelativeTime::milliseconds(3);
  EXPECT_EQ(explicit_deadline.effective_deadline(),
            RelativeTime::milliseconds(3));

  EXPECT_EQ(ReleaseProfile::aperiodic().effective_deadline(),
            RelativeTime::zero());
}

TEST(RealtimeThreadTest, RunsLogicUnderItsContext) {
  RealtimeThread thread("t", ThreadKind::Realtime, 20,
                        ReleaseProfile::aperiodic());
  ThreadKind observed{};
  std::string observed_name;
  thread.set_logic([&] {
    observed = ThreadContext::current().kind();
    observed_name = ThreadContext::current().name();
  });
  thread.run_release();
  EXPECT_EQ(observed, ThreadKind::Realtime);
  EXPECT_EQ(observed_name, "t");
  EXPECT_EQ(thread.release_count(), 1u);
}

TEST(RealtimeThreadTest, ReleaseWithoutLogicThrows) {
  RealtimeThread thread("empty", ThreadKind::Regular, 5,
                        ReleaseProfile::aperiodic());
  EXPECT_THROW(thread.run_release(), IllegalThreadStateException);
}

TEST(RealtimeThreadTest, RunWithContextCountsReleases) {
  RealtimeThread thread("ctx", ThreadKind::Realtime, 20,
                        ReleaseProfile::aperiodic());
  int runs = 0;
  thread.run_with_context([&] { ++runs; });
  thread.run_with_context([&] { ++runs; });
  EXPECT_EQ(runs, 2);
  EXPECT_EQ(thread.release_count(), 2u);
}

TEST(RealtimeThreadTest, ContextIsRestoredAfterRelease) {
  RealtimeThread thread("restore", ThreadKind::NoHeapRealtime, 30,
                        ReleaseProfile::aperiodic(),
                        &ImmortalMemory::instance());
  thread.set_logic([] {});
  const auto* before = ThreadContext::current_or_null();
  thread.run_release();
  EXPECT_EQ(ThreadContext::current_or_null(), before);
}

TEST(RealtimeThreadTest, SporadicAdmissionEnforcesMit) {
  auto profile = ReleaseProfile::sporadic(RelativeTime::milliseconds(10));
  RealtimeThread thread("sporadic", ThreadKind::Realtime, 20, profile);
  const auto t0 = AbsoluteTime::epoch();
  EXPECT_TRUE(thread.admit_sporadic_arrival(t0));
  EXPECT_FALSE(thread.admit_sporadic_arrival(
      t0 + RelativeTime::milliseconds(5)));
  EXPECT_TRUE(thread.admit_sporadic_arrival(
      t0 + RelativeTime::milliseconds(10)));
}

TEST(RealtimeThreadTest, NonSporadicAdmitsEverything) {
  RealtimeThread thread("p", ThreadKind::Realtime, 20,
                        ReleaseProfile::periodic(RelativeTime::milliseconds(1)));
  const auto t0 = AbsoluteTime::epoch();
  EXPECT_TRUE(thread.admit_sporadic_arrival(t0));
  EXPECT_TRUE(thread.admit_sporadic_arrival(t0));
}

TEST(RealtimeThreadTest, DeadlineMissHandlerFires) {
  RealtimeThread thread("miss", ThreadKind::Realtime, 20,
                        ReleaseProfile::periodic(RelativeTime::milliseconds(1)));
  ReleaseInfo seen{};
  thread.set_deadline_miss_handler([&](const ReleaseInfo& info) {
    seen = info;
  });
  ReleaseInfo info;
  info.sequence = 3;
  info.release_time = AbsoluteTime::epoch();
  info.finish_time = AbsoluteTime::epoch() + RelativeTime::milliseconds(2);
  thread.notify_deadline_miss(info);
  EXPECT_EQ(thread.deadline_miss_count(), 1u);
  EXPECT_EQ(seen.sequence, 3u);
  EXPECT_EQ(seen.response(), RelativeTime::milliseconds(2));
}

TEST(NoHeapRealtimeThreadTest, RefusesHeapInitialArea) {
  EXPECT_THROW(NoHeapRealtimeThread("bad", 30, ReleaseProfile::aperiodic(),
                                    &HeapMemory::instance()),
               IllegalThreadStateException);
  // Default initial area for RT threads is immortal: fine.
  EXPECT_NO_THROW(
      NoHeapRealtimeThread("good", 30, ReleaseProfile::aperiodic()));
}

TEST(NoHeapRealtimeThreadTest, LogicCannotTouchHeap) {
  NoHeapRealtimeThread thread("nhrt", 30, ReleaseProfile::aperiodic());
  thread.set_logic([] {
    HeapMemory::instance().make<int>(1);  // must throw
  });
  EXPECT_THROW(thread.run_release(), MemoryAccessError);
}

TEST(RegularThreadTest, DefaultsToHeapContext) {
  RegularThread thread("reg", 5, ReleaseProfile::aperiodic());
  EXPECT_EQ(thread.kind(), ThreadKind::Regular);
  thread.set_logic([] {
    EXPECT_EQ(current_area().kind(), AreaKind::Heap);
  });
  thread.run_release();
}

}  // namespace
}  // namespace rtcf::rtsj
