// Live ADL reload: the plan-delta engine end to end.
//
// Covers the diff itself (add/remove/rebind/settings classification and
// the no-op short-circuit), the DELTA-* validation rules including
// partition-aware rebind planning (REBIND-CROSS-PARTITION), the
// drain-before-swap conservation guarantees (component removal with
// queued messages, async buffer re-targeting), reload under an escalated
// governor, mode <Rebind> over asynchronous ports, launcher release-plan
// growth/shrink across a wall-clock reload, and the deterministic
// virtual-time mirror (TraceKind::PlanChange).
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "reconfig/mode_manager.hpp"
#include "reconfig/plan_delta.hpp"
#include "reconfig/sim_mirror.hpp"
#include "runtime/content_registry.hpp"
#include "runtime/launcher.hpp"
#include "sim/scheduler.hpp"
#include "soleil/application.hpp"
#include "soleil/plan.hpp"
#include "validate/validator.hpp"

namespace rtcf {
namespace {

using model::ActivationKind;
using model::Architecture;
using model::AreaType;
using model::Criticality;
using model::DomainType;
using model::InterfaceRole;
using model::Protocol;

// ---- contents -------------------------------------------------------------

class ProducerImpl final : public comm::Content {
 public:
  void on_release() override {
    comm::Message m;
    m.sequence = sent_++;
    port(0).send(m);
  }
  std::uint64_t sent() const noexcept { return sent_; }

 private:
  std::uint64_t sent_ = 0;
};

class CallerImpl final : public comm::Content {
 public:
  void on_release() override {
    comm::Message m;
    m.sequence = calls_++;
    (void)port(0).call(m);
  }

 private:
  std::uint64_t calls_ = 0;
};

class EchoImpl final : public comm::Content {
 public:
  comm::Message on_invoke(const comm::Message& request) override {
    ++invoked_;
    return request;
  }
  std::uint64_t invoked() const noexcept { return invoked_; }

 private:
  std::uint64_t invoked_ = 0;
};

class SinkImpl final : public comm::Content {
 public:
  void on_message(const comm::Message&) override { ++received_; }
  void on_release() override { ++released_; }  // doubles as periodic no-op
  std::uint64_t received() const noexcept { return received_; }
  std::uint64_t released() const noexcept { return released_; }

 private:
  std::uint64_t received_ = 0;
  std::uint64_t released_ = 0;
};

RTCF_REGISTER_CONTENT(ProducerImpl)
RTCF_REGISTER_CONTENT(CallerImpl)
RTCF_REGISTER_CONTENT(EchoImpl)
RTCF_REGISTER_CONTENT(SinkImpl)

// ---- architecture builders ------------------------------------------------

/// Producer --async(16)--> Sink, one mode listing both; everything
/// swappable, deployed on the heap under RT/Regular domains.
Architecture make_base(bool sink_swappable = true) {
  Architecture arch;
  auto& producer = arch.add_active("Producer", ActivationKind::Periodic,
                                   rtsj::RelativeTime::milliseconds(5));
  producer.set_content_class("ProducerImpl");
  producer.set_cost(rtsj::RelativeTime::microseconds(50));
  producer.set_swappable(true);
  producer.add_interface({"out", InterfaceRole::Client, "ISink"});

  auto& sink = arch.add_active("Sink", ActivationKind::Sporadic,
                               rtsj::RelativeTime::zero());
  sink.set_content_class("SinkImpl");
  sink.set_criticality(Criticality::Low);
  sink.set_swappable(sink_swappable);
  sink.add_interface({"in", InterfaceRole::Server, "ISink"});

  model::Binding binding;
  binding.client = {"Producer", "out"};
  binding.server = {"Sink", "in"};
  binding.desc.protocol = Protocol::Asynchronous;
  binding.desc.buffer_size = 16;
  arch.add_binding(binding);

  auto& rt = arch.add_thread_domain("RT1", DomainType::Realtime, 20);
  auto& reg = arch.add_thread_domain("reg1", DomainType::Regular, 5);
  arch.add_child(rt, *arch.find("Producer"));
  arch.add_child(reg, *arch.find("Sink"));
  auto& heap = arch.add_memory_area("H1", AreaType::Heap, 0);
  arch.add_child(heap, rt);
  arch.add_child(heap, reg);

  model::ModeDecl mode;
  mode.name = "Run";
  mode.components.push_back({"Producer", {}, {}});
  mode.components.push_back({"Sink", {}, {}});
  arch.add_mode(std::move(mode));
  return arch;
}

/// Base with Sink replaced by Sink2 (same role) and the Producer port
/// re-targeted — one remove + one add + one async rebind.
Architecture make_swapped_sink() {
  Architecture arch;
  auto& producer = arch.add_active("Producer", ActivationKind::Periodic,
                                   rtsj::RelativeTime::milliseconds(5));
  producer.set_content_class("ProducerImpl");
  producer.set_cost(rtsj::RelativeTime::microseconds(50));
  producer.set_swappable(true);
  producer.add_interface({"out", InterfaceRole::Client, "ISink"});

  auto& sink2 = arch.add_active("Sink2", ActivationKind::Sporadic,
                                rtsj::RelativeTime::zero());
  sink2.set_content_class("SinkImpl");
  sink2.set_criticality(Criticality::Low);
  sink2.set_swappable(true);
  sink2.add_interface({"in", InterfaceRole::Server, "ISink"});

  model::Binding binding;
  binding.client = {"Producer", "out"};
  binding.server = {"Sink2", "in"};
  binding.desc.protocol = Protocol::Asynchronous;
  binding.desc.buffer_size = 16;
  arch.add_binding(binding);

  auto& rt = arch.add_thread_domain("RT1", DomainType::Realtime, 20);
  auto& reg = arch.add_thread_domain("reg2", DomainType::Regular, 5);
  arch.add_child(rt, *arch.find("Producer"));
  arch.add_child(reg, *arch.find("Sink2"));
  auto& heap = arch.add_memory_area("H1", AreaType::Heap, 0);
  arch.add_child(heap, rt);
  arch.add_child(heap, reg);

  model::ModeDecl mode;
  mode.name = "Run";
  mode.components.push_back({"Producer", {}, {}});
  mode.components.push_back({"Sink2", {}, {}});
  arch.add_mode(std::move(mode));
  return arch;
}

// ---- diff -----------------------------------------------------------------

TEST(PlanDeltaTest, IdenticalArchitecturesDiffEmpty) {
  const auto base = make_base();
  const auto again = make_base();
  const auto running = soleil::snapshot_assembly(base, 1);
  const auto rp = reconfig::plan_reload(running, again);
  EXPECT_TRUE(rp.ok()) << rp.report.to_string();
  EXPECT_TRUE(rp.delta.empty()) << rp.delta.summary();
}

TEST(PlanDeltaTest, DiffClassifiesAddRemoveRebindAndSettings) {
  const auto base = make_base();
  const auto target = make_swapped_sink();
  const auto running = soleil::snapshot_assembly(base, 1);
  const auto rp = reconfig::plan_reload(running, target);
  EXPECT_TRUE(rp.ok()) << rp.report.to_string();
  ASSERT_EQ(rp.delta.add_components.size(), 1u);
  EXPECT_EQ(rp.delta.add_components[0].name, "Sink2");
  ASSERT_EQ(rp.delta.remove_components.size(), 1u);
  EXPECT_EQ(rp.delta.remove_components[0].name, "Sink");
  ASSERT_EQ(rp.delta.rebinds.size(), 1u);
  EXPECT_EQ(rp.delta.rebinds[0].old_server, "Sink");
  EXPECT_EQ(rp.delta.rebinds[0].new_server, "Sink2");
  EXPECT_EQ(rp.delta.rebinds[0].protocol, Protocol::Asynchronous);
  EXPECT_TRUE(rp.delta.add_bindings.empty());
  EXPECT_TRUE(rp.delta.remove_bindings.empty());
  EXPECT_TRUE(rp.report.has_rule("DELTA-ASYNC-RETARGET"));
}

TEST(PlanDeltaTest, PeriodChangeIsASettingDelta) {
  const auto base = make_base();
  const auto running = soleil::snapshot_assembly(base, 1);
  // ActiveComponent period is fixed at construction, so build the slowed
  // target from scratch.
  Architecture target2;
  {
    auto& producer = target2.add_active(
        "Producer", ActivationKind::Periodic,
        rtsj::RelativeTime::milliseconds(8));
    producer.set_content_class("ProducerImpl");
    producer.set_cost(rtsj::RelativeTime::microseconds(50));
    producer.set_swappable(true);
    producer.add_interface({"out", InterfaceRole::Client, "ISink"});
    auto& sink = target2.add_active("Sink", ActivationKind::Sporadic,
                                    rtsj::RelativeTime::zero());
    sink.set_content_class("SinkImpl");
    sink.set_criticality(Criticality::Low);
    sink.set_swappable(true);
    sink.add_interface({"in", InterfaceRole::Server, "ISink"});
    model::Binding binding;
    binding.client = {"Producer", "out"};
    binding.server = {"Sink", "in"};
    binding.desc.protocol = Protocol::Asynchronous;
    binding.desc.buffer_size = 16;
    target2.add_binding(binding);
    auto& rt = target2.add_thread_domain("RT1", DomainType::Realtime, 20);
    auto& reg = target2.add_thread_domain("reg1", DomainType::Regular, 5);
    target2.add_child(rt, *target2.find("Producer"));
    target2.add_child(reg, *target2.find("Sink"));
    auto& heap = target2.add_memory_area("H1", AreaType::Heap, 0);
    target2.add_child(heap, rt);
    target2.add_child(heap, reg);
    model::ModeDecl mode;
    mode.name = "Run";
    mode.components.push_back({"Producer", {}, {}});
    mode.components.push_back({"Sink", {}, {}});
    target2.add_mode(std::move(mode));
  }
  const auto rp = reconfig::plan_reload(running, target2);
  EXPECT_TRUE(rp.ok()) << rp.report.to_string();
  ASSERT_EQ(rp.delta.settings.size(), 1u);
  EXPECT_EQ(rp.delta.settings[0].component, "Producer");
  EXPECT_TRUE(rp.delta.settings[0].period_changed);
  EXPECT_EQ(rp.delta.settings[0].new_period,
            rtsj::RelativeTime::milliseconds(8));
  EXPECT_TRUE(rp.delta.add_components.empty());
  EXPECT_TRUE(rp.delta.remove_components.empty());
}

// ---- delta validation -----------------------------------------------------

TEST(PlanDeltaTest, RemovingNonSwappableComponentIsRejected) {
  const auto base = make_base(/*sink_swappable=*/false);
  const auto target = make_swapped_sink();
  const auto running = soleil::snapshot_assembly(base, 1);
  const auto rp = reconfig::plan_reload(running, target);
  EXPECT_FALSE(rp.ok());
  EXPECT_TRUE(rp.report.has_rule("DELTA-REMOVE-SWAPPABLE"))
      << rp.report.to_string();
}

TEST(PlanDeltaTest, UnregisteredContentClassIsRejected) {
  const auto base = make_base();
  auto target = make_base();
  auto& extra = target.add_active("Mystery", ActivationKind::Periodic,
                                  rtsj::RelativeTime::milliseconds(10));
  extra.set_content_class("NeverRegisteredAnywhere");
  target.add_child(*target.find("RT1"), extra);
  const auto running = soleil::snapshot_assembly(base, 1);
  const auto rp = reconfig::plan_reload(running, target);
  EXPECT_FALSE(rp.ok());
  EXPECT_TRUE(rp.report.has_rule("DELTA-CONTENT-UNKNOWN"))
      << rp.report.to_string();
}

TEST(PlanDeltaTest, ProtocolFlipIsRejected) {
  const auto base = make_base();
  auto target = make_base();
  target.mutable_bindings()[0].desc.protocol = Protocol::Synchronous;
  target.mutable_bindings()[0].desc.buffer_size = 0;
  const auto running = soleil::snapshot_assembly(base, 1);
  const auto rp = reconfig::plan_reload(running, target);
  EXPECT_FALSE(rp.ok());
  EXPECT_TRUE(rp.report.has_rule("DELTA-PROTOCOL-CHANGE"))
      << rp.report.to_string();
}

namespace {

/// Two heavy synchronous clusters that LPT splits across two partitions:
/// A->X on one, B->Y on the other.
Architecture make_two_clusters(const char* a_server, const char* b_server) {
  Architecture arch;
  for (const char* name : {"A", "B"}) {
    auto& active = arch.add_active(name, ActivationKind::Periodic,
                                   rtsj::RelativeTime::milliseconds(10));
    active.set_content_class("ProducerImpl");
    active.set_cost(rtsj::RelativeTime::milliseconds(5));
    active.set_swappable(true);
    active.add_interface({"out", InterfaceRole::Client, "ISvc"});
  }
  for (const char* name : {"X", "Y"}) {
    auto& passive = arch.add_passive(name);
    passive.set_content_class("SinkImpl");
    passive.set_swappable(true);
    passive.add_interface({"in", InterfaceRole::Server, "ISvc"});
  }
  const auto bind_sync = [&](const char* client, const char* server) {
    model::Binding binding;
    binding.client = {client, "out"};
    binding.server = {server, "in"};
    binding.desc.protocol = Protocol::Synchronous;
    arch.add_binding(binding);
  };
  bind_sync("A", a_server);
  bind_sync("B", b_server);
  auto& rt = arch.add_thread_domain("RT1", DomainType::Realtime, 20);
  arch.add_child(rt, *arch.find("A"));
  arch.add_child(rt, *arch.find("B"));
  auto& heap = arch.add_memory_area("H1", AreaType::Heap, 0);
  arch.add_child(heap, rt);
  arch.add_child(heap, *arch.find("X"));
  arch.add_child(heap, *arch.find("Y"));
  model::ModeDecl mode;
  mode.name = "Run";
  mode.components.push_back({"A", {}, {}});
  mode.components.push_back({"B", {}, {}});
  arch.add_mode(std::move(mode));
  return arch;
}

}  // namespace

TEST(PlanDeltaTest, CrossPartitionRebindIsReportedNotRejected) {
  const auto base = make_two_clusters("X", "Y");
  const auto target = make_two_clusters("Y", "Y");  // A re-targets onto Y
  const auto running = soleil::snapshot_assembly(base, 2);
  // Sanity: the two sync clusters landed on different partitions.
  ASSERT_NE(running.find("A")->partition, running.find("B")->partition);
  ASSERT_EQ(running.find("X")->partition, running.find("A")->partition);
  ASSERT_EQ(running.find("Y")->partition, running.find("B")->partition);
  const auto rp = reconfig::plan_reload(running, target);
  EXPECT_TRUE(rp.ok()) << rp.report.to_string();
  EXPECT_TRUE(rp.report.has_rule("REBIND-CROSS-PARTITION"))
      << rp.report.to_string();
  // Both endpoints are pinned survivors: the placement must not migrate
  // them to co-locate the rebind.
  EXPECT_EQ(rp.target.find("A")->partition, running.find("A")->partition);
  EXPECT_EQ(rp.target.find("Y")->partition, running.find("Y")->partition);
}

TEST(PlanDeltaTest, AddedConsumerIsCoLocatedWithItsAsyncPeer) {
  const auto base = make_base();
  const auto target = make_swapped_sink();
  const auto running = soleil::snapshot_assembly(base, 2);
  const auto rp = reconfig::plan_reload(running, target);
  EXPECT_TRUE(rp.ok()) << rp.report.to_string();
  // Sink2 (added, async-fed by Producer) co-locates with Producer when
  // legal — no REBIND-CROSS-PARTITION noise for a placeable addition.
  EXPECT_EQ(rp.target.find("Sink2")->partition,
            running.find("Producer")->partition);
  EXPECT_FALSE(rp.report.has_rule("REBIND-CROSS-PARTITION"))
      << rp.report.to_string();
}

// ---- reload through the ModeManager --------------------------------------

TEST(PlanDeltaTest, NoOpReloadShortCircuits) {
  const auto arch = make_base();
  auto app = soleil::build_application(arch, soleil::Mode::Soleil);
  app->start();
  reconfig::ModeManager manager(*app);
  const std::uint64_t epoch = manager.plan_epoch();

  const auto again = make_base();
  validate::Report report;
  EXPECT_FALSE(manager.request_reload(again, &report));
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_EQ(manager.plan_epoch(), epoch);
  EXPECT_TRUE(manager.transitions().empty());
  app->stop();
}

TEST(PlanDeltaTest, ReloadRemovesComponentWithQueuedMessagesZeroLoss) {
  const auto arch = make_base();
  auto app = soleil::build_application(arch, soleil::Mode::Soleil);
  app->start();
  reconfig::ModeManager manager(*app);

  // Queue messages without pumping: they sit in the Producer->Sink buffer
  // when the reload arrives.
  for (int i = 0; i < 6; ++i) app->release("Producer");
  const auto* producer =
      dynamic_cast<const ProducerImpl*>(app->content("Producer"));
  const auto* sink = dynamic_cast<const SinkImpl*>(app->content("Sink"));
  ASSERT_NE(producer, nullptr);
  ASSERT_NE(sink, nullptr);
  ASSERT_EQ(producer->sent(), 6u);
  ASSERT_EQ(sink->received(), 0u);

  const auto target = make_swapped_sink();
  validate::Report report;
  ASSERT_TRUE(manager.request_reload(target, &report))
      << report.to_string();
  // Inline apply (no launcher): the quiescence pump drained the queued
  // messages into the old Sink before it was stopped and removed.
  EXPECT_EQ(sink->received(), 6u);
  std::uint64_t dropped = 0;
  for (const auto& buffer : app->buffers()) dropped += buffer->dropped_total();
  EXPECT_EQ(dropped, 0u);

  // The pipeline now feeds Sink2.
  app->iterate("Producer");
  const auto* sink2 = dynamic_cast<const SinkImpl*>(app->content("Sink2"));
  ASSERT_NE(sink2, nullptr);
  EXPECT_EQ(sink2->received(), 1u);
  EXPECT_EQ(sink->received(), 6u);  // the removed component got no more
  ASSERT_EQ(manager.transitions().size(), 1u);
  EXPECT_EQ(manager.transitions()[0].trigger, "reload");
  app->stop();
}

TEST(PlanDeltaTest, ApplyTimeDrainAuditCountsBufferedMessages) {
  // Bypass the ModeManager's quiescence pump and apply the delta directly:
  // the buffered messages must ride the apply-time drain (audited) into
  // the old consumer before the swap — drain-before-swap at the buffer
  // re-target.
  const auto arch = make_base();
  auto app = soleil::build_application(arch, soleil::Mode::Soleil);
  app->start();
  const auto running = app->assembly();
  for (int i = 0; i < 4; ++i) app->release("Producer");

  const auto target = make_swapped_sink();
  const auto rp = reconfig::plan_reload(running, target);
  ASSERT_TRUE(rp.ok()) << rp.report.to_string();
  const std::uint64_t drained = app->apply_plan_delta(rp.delta, rp.target);
  EXPECT_EQ(drained, 4u);
  const auto* sink = dynamic_cast<const SinkImpl*>(app->content("Sink"));
  ASSERT_NE(sink, nullptr);
  EXPECT_EQ(sink->received(), 4u);
  std::uint64_t dropped = 0;
  for (const auto& buffer : app->buffers()) dropped += buffer->dropped_total();
  EXPECT_EQ(dropped, 0u);
  app->stop();
}

TEST(PlanDeltaTest, ReloadWhileGovernorEscalatedResetsAndApplies) {
  const auto arch = make_base();
  auto app = soleil::build_application(arch, soleil::Mode::Soleil);
  app->start();
  reconfig::ModeManager manager(*app);

  // Escalate the governor the way sustained contract violation would.
  auto* entry = app->monitor().find("Sink");
  ASSERT_NE(entry, nullptr);
  auto& governor = app->monitor().governor();
  for (int i = 0; i < 4; ++i) governor.on_window_violated(entry->governor_id);
  ASSERT_NE(governor.level(), monitor::GovernorLevel::Normal);

  const auto target = make_swapped_sink();
  validate::Report report;
  ASSERT_TRUE(manager.request_reload(target, &report))
      << report.to_string();
  // The reload answered the overload: the governor starts clean and the
  // new structure is live.
  EXPECT_EQ(governor.level(), monitor::GovernorLevel::Normal);
  app->iterate("Producer");
  const auto* sink2 = dynamic_cast<const SinkImpl*>(app->content("Sink2"));
  ASSERT_NE(sink2, nullptr);
  EXPECT_EQ(sink2->received(), 1u);
  app->stop();
}

TEST(PlanDeltaTest, ModeRebindOverAsyncPortRetargetsBuffer) {
  // Mode <Rebind> across an asynchronous binding: previously sync-only,
  // now re-targeted through the AsyncSkeleton with drain-before-swap.
  Architecture arch;
  auto& producer = arch.add_active("Producer", ActivationKind::Periodic,
                                   rtsj::RelativeTime::milliseconds(5));
  producer.set_content_class("ProducerImpl");
  producer.set_cost(rtsj::RelativeTime::microseconds(50));
  producer.set_swappable(true);
  producer.add_interface({"out", InterfaceRole::Client, "ISink"});
  for (const char* name : {"Sink", "Standby"}) {
    auto& sink = arch.add_active(name, ActivationKind::Sporadic,
                                 rtsj::RelativeTime::zero());
    sink.set_content_class("SinkImpl");
    sink.set_criticality(Criticality::Low);
    sink.set_swappable(true);
    sink.add_interface({"in", InterfaceRole::Server, "ISink"});
  }
  model::Binding binding;
  binding.client = {"Producer", "out"};
  binding.server = {"Sink", "in"};
  binding.desc.protocol = Protocol::Asynchronous;
  binding.desc.buffer_size = 16;
  arch.add_binding(binding);
  auto& rt = arch.add_thread_domain("RT1", DomainType::Realtime, 20);
  auto& reg = arch.add_thread_domain("reg1", DomainType::Regular, 5);
  arch.add_child(rt, *arch.find("Producer"));
  arch.add_child(reg, *arch.find("Sink"));
  arch.add_child(reg, *arch.find("Standby"));
  auto& heap = arch.add_memory_area("H1", AreaType::Heap, 0);
  arch.add_child(heap, rt);
  arch.add_child(heap, reg);
  model::ModeDecl run;
  run.name = "Run";
  run.components.push_back({"Producer", {}, {}});
  run.components.push_back({"Sink", {}, {}});
  run.components.push_back({"Standby", {}, {}});
  arch.add_mode(std::move(run));
  model::ModeDecl alt;
  alt.name = "Alt";
  alt.components.push_back({"Producer", {}, {}});
  alt.components.push_back({"Sink", {}, {}});
  alt.components.push_back({"Standby", {}, {}});
  alt.rebinds.push_back({"Producer", "out", "Standby"});
  arch.add_mode(std::move(alt));
  ASSERT_TRUE(validate::validate(arch).ok())
      << validate::validate(arch).to_string();

  auto app = soleil::build_application(arch, soleil::Mode::Soleil);
  app->start();
  reconfig::ModeManager manager(*app);
  const auto* sink = dynamic_cast<const SinkImpl*>(app->content("Sink"));
  const auto* standby_content =
      dynamic_cast<const SinkImpl*>(app->content("Standby"));

  app->iterate("Producer");
  EXPECT_EQ(sink->received(), 1u);

  ASSERT_TRUE(manager.request_transition("Alt"));
  app->iterate("Producer");
  EXPECT_EQ(standby_content->received(), 1u);
  EXPECT_EQ(sink->received(), 1u);

  ASSERT_TRUE(manager.request_transition("Run"));
  app->iterate("Producer");
  EXPECT_EQ(sink->received(), 2u);
  EXPECT_EQ(standby_content->received(), 1u);
  app->stop();
}

namespace {

/// Caller --sync--> <echo_name> (passive), single mode; the reload swaps
/// the echo service for a freshly added one.
Architecture make_sync_arch(const char* echo_name) {
  Architecture arch;
  auto& caller = arch.add_active("Caller", ActivationKind::Periodic,
                                 rtsj::RelativeTime::milliseconds(5));
  caller.set_content_class("CallerImpl");
  caller.set_cost(rtsj::RelativeTime::microseconds(20));
  caller.set_swappable(true);
  caller.add_interface({"svc", InterfaceRole::Client, "IEcho"});
  auto& echo = arch.add_passive(echo_name);
  echo.set_content_class("EchoImpl");
  echo.set_swappable(true);
  echo.add_interface({"svc", InterfaceRole::Server, "IEcho"});
  model::Binding binding;
  binding.client = {"Caller", "svc"};
  binding.server = {echo_name, "svc"};
  binding.desc.protocol = Protocol::Synchronous;
  arch.add_binding(binding);
  auto& rt = arch.add_thread_domain("RT1", DomainType::Realtime, 20);
  arch.add_child(rt, *arch.find("Caller"));
  auto& heap = arch.add_memory_area("H1", AreaType::Heap, 0);
  arch.add_child(heap, rt);
  arch.add_child(heap, *arch.find(echo_name));
  model::ModeDecl mode;
  mode.name = "Run";
  mode.components.push_back({"Caller", {}, {}});
  arch.add_mode(std::move(mode));
  return arch;
}

}  // namespace

TEST(PlanDeltaTest, SyncRebindOntoComponentAddedBySameDelta) {
  // The rebind's new server does not exist until this very delta admits
  // it — wiring must resolve against the in-progress plan, not the
  // pre-reload snapshot.
  const auto arch = make_sync_arch("EchoA");
  auto app = soleil::build_application(arch, soleil::Mode::Soleil);
  app->start();
  reconfig::ModeManager manager(*app);

  app->iterate("Caller");
  const auto* echo_a = dynamic_cast<const EchoImpl*>(app->content("EchoA"));
  ASSERT_NE(echo_a, nullptr);
  EXPECT_EQ(echo_a->invoked(), 1u);

  const auto target = make_sync_arch("EchoB");
  validate::Report report;
  ASSERT_TRUE(manager.request_reload(target, &report))
      << report.to_string();
  app->iterate("Caller");
  const auto* echo_b = dynamic_cast<const EchoImpl*>(app->content("EchoB"));
  ASSERT_NE(echo_b, nullptr);
  EXPECT_EQ(echo_b->invoked(), 1u);
  EXPECT_EQ(echo_a->invoked(), 1u);  // the removed service got no more
  app->stop();
}

TEST(PlanDeltaTest, InlineReloadBeforeRunGrowsTheLauncher) {
  // A reload applied while no run is active (inline quiescence, no
  // structure hook) must still reach the next run's release plan.
  const auto arch = make_base();
  auto app = soleil::build_application(arch, soleil::Mode::Soleil);
  app->start();
  reconfig::ModeManager manager(*app);
  runtime::Launcher launcher(*app);  // built before the reload

  Architecture target = make_base();
  auto& beacon = target.add_active("Beacon", ActivationKind::Periodic,
                                   rtsj::RelativeTime::milliseconds(10));
  beacon.set_content_class("SinkImpl");
  beacon.set_cost(rtsj::RelativeTime::microseconds(20));
  beacon.set_swappable(true);
  target.add_child(*target.find("RT1"), beacon);
  target.add_child(*target.find("H1"), beacon);
  {
    // List it in the mode so the manager publishes its settings.
    model::ModeDecl& mode =
        const_cast<model::ModeDecl&>(target.modes()[0]);
    mode.components.push_back({"Beacon", {}, {}});
  }
  validate::Report report;
  ASSERT_TRUE(manager.request_reload(target, &report))
      << report.to_string();

  runtime::Launcher::Options options;
  options.duration = rtsj::RelativeTime::milliseconds(80);
  options.mode_manager = &manager;
  launcher.run(options);
  EXPECT_GT(launcher.stats("Beacon").releases, 0u);
  EXPECT_GT(launcher.stats("Producer").releases, 0u);
  app->stop();
}

TEST(PlanDeltaTest, ReloadDeploysIntoDeclaredUnoccupiedScope) {
  // The running architecture declares a scoped area nobody occupies; a
  // reload may deploy into it (the environment created every declared
  // area at launch).
  Architecture arch = make_sync_arch("EchoA");
  arch.add_memory_area("S2", AreaType::Scoped, 8 * 1024, "spare");
  auto app = soleil::build_application(arch, soleil::Mode::Soleil);
  app->start();
  reconfig::ModeManager manager(*app);

  Architecture target = make_sync_arch("EchoA");
  auto& s2 = target.add_memory_area("S2", AreaType::Scoped, 8 * 1024,
                                    "spare");
  auto& svc = target.add_passive("ScopedSvc");
  svc.set_content_class("EchoImpl");
  svc.set_swappable(true);
  svc.add_interface({"svc", InterfaceRole::Server, "IEcho"});
  target.add_child(s2, svc);
  auto& user = target.add_active("ScopedUser", ActivationKind::Periodic,
                                 rtsj::RelativeTime::milliseconds(10));
  user.set_content_class("CallerImpl");
  user.set_cost(rtsj::RelativeTime::microseconds(20));
  user.set_swappable(true);
  user.add_interface({"svc", InterfaceRole::Client, "IEcho"});
  target.add_child(*target.find("RT1"), user);
  target.add_child(*target.find("H1"), user);
  model::Binding binding;
  binding.client = {"ScopedUser", "svc"};
  binding.server = {"ScopedSvc", "svc"};
  binding.desc.protocol = Protocol::Synchronous;
  target.add_binding(binding);
  {
    model::ModeDecl& mode =
        const_cast<model::ModeDecl&>(target.modes()[0]);
    mode.components.push_back({"ScopedUser", {}, {}});
  }

  validate::Report report;
  ASSERT_TRUE(manager.request_reload(target, &report))
      << report.to_string();
  app->iterate("ScopedUser");
  const auto* scoped =
      dynamic_cast<const EchoImpl*>(app->content("ScopedSvc"));
  ASSERT_NE(scoped, nullptr);
  EXPECT_EQ(scoped->invoked(), 1u);
  app->stop();
}

// ---- launcher growth/shrink ----------------------------------------------

TEST(PlanDeltaTest, LauncherGrowsAndShrinksAcrossReload) {
  // Wall-clock partitioned run: mid-run the reload removes the periodic
  // Producer (and its pipeline tail) and adds a fresh periodic Beacon —
  // the removed timeline retires, the new one enters on the anchor grid.
  const auto arch = make_base();
  auto app = soleil::build_application(arch, soleil::Mode::Soleil, 2);
  app->start();
  reconfig::ModeManager manager(*app);
  runtime::Launcher launcher(*app);

  runtime::Launcher::Options options;
  options.duration = rtsj::RelativeTime::milliseconds(300);
  options.workers = 2;
  options.mode_manager = &manager;

  Architecture target;
  {
    auto& beacon = target.add_active("Beacon", ActivationKind::Periodic,
                                     rtsj::RelativeTime::milliseconds(10));
    beacon.set_content_class("SinkImpl");
    beacon.set_cost(rtsj::RelativeTime::microseconds(20));
    beacon.set_swappable(true);
    auto& rt = target.add_thread_domain("RT1", DomainType::Realtime, 20);
    target.add_child(rt, beacon);
    auto& heap = target.add_memory_area("H1", AreaType::Heap, 0);
    target.add_child(heap, rt);
    model::ModeDecl mode;
    mode.name = "Run";
    mode.components.push_back({"Beacon", {}, {}});
    target.add_mode(std::move(mode));
  }

  std::thread executive([&] { launcher.run(options); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  validate::Report report;
  const bool accepted = manager.request_reload(target, &report);
  executive.join();
  ASSERT_TRUE(accepted) << report.to_string();

  const auto& producer_stats = launcher.stats("Producer");
  const auto& beacon_stats = launcher.stats("Beacon");
  EXPECT_GT(producer_stats.releases, 0u);
  EXPECT_GT(beacon_stats.releases, 0u);
  const auto* beacon =
      dynamic_cast<const SinkImpl*>(app->content("Beacon"));
  ASSERT_NE(beacon, nullptr);
  EXPECT_EQ(beacon->released(), beacon_stats.releases);
  // Conservation across the removal: everything the producer sent was
  // consumed by the sink before the pipeline retired.
  const auto* producer =
      dynamic_cast<const ProducerImpl*>(app->content("Producer"));
  const auto* sink = dynamic_cast<const SinkImpl*>(app->content("Sink"));
  EXPECT_EQ(producer->sent(), sink->received());
  std::uint64_t dropped = 0;
  for (const auto& buffer : app->buffers()) dropped += buffer->dropped_total();
  EXPECT_EQ(dropped, 0u);
  app->stop();
}

// ---- sim mirror -----------------------------------------------------------

TEST(PlanDeltaTest, SimPlanChangeReplaysBitForBit) {
  const auto base = make_base();
  const auto target = make_swapped_sink();
  const auto running = soleil::snapshot_assembly(base, 1);
  const auto rp = reconfig::plan_reload(running, target);
  ASSERT_TRUE(rp.ok()) << rp.report.to_string();

  const auto run_once = [&] {
    sim::PreemptiveScheduler sched(1);
    sched.enable_trace();
    sim::SimMapping mapping;
    sim::TaskConfig producer;
    producer.name = "Producer";
    producer.priority = 20;
    producer.release = sim::ReleaseKind::Periodic;
    producer.start = rtsj::AbsoluteTime::epoch();
    producer.period = rtsj::RelativeTime::milliseconds(5);
    producer.cost = rtsj::RelativeTime::microseconds(50);
    mapping.tasks["Producer"] = sched.add_task(producer);
    sim::TaskConfig sink;
    sink.name = "Sink";
    sink.priority = 5;
    sink.release = sim::ReleaseKind::Sporadic;
    sink.cost = rtsj::RelativeTime::microseconds(30);
    mapping.tasks["Sink"] = sched.add_task(sink);

    reconfig::schedule_plan_delta(
        sched, rp.delta, mapping,
        rtsj::AbsoluteTime::epoch() + rtsj::RelativeTime::milliseconds(23),
        rtsj::AbsoluteTime::epoch());
    sched.run_until(rtsj::AbsoluteTime::epoch() +
                    rtsj::RelativeTime::milliseconds(60));

    std::vector<std::string> rendered;
    for (const auto& ev : sched.trace()) {
      rendered.push_back(ev.to_string(sched));
    }
    return std::make_pair(std::move(rendered), mapping);
  };

  const auto first = run_once();
  const auto second = run_once();
  EXPECT_EQ(first.first, second.first);  // bit-for-bit
  EXPECT_TRUE(first.second.has("Sink2"));

  // The removed task ticks silently after the change; the added one
  // exists and is enabled.
  sim::PreemptiveScheduler sched(1);
  sched.enable_trace();
  sim::SimMapping mapping;
  sim::TaskConfig producer;
  producer.name = "Producer";
  producer.priority = 20;
  producer.release = sim::ReleaseKind::Periodic;
  producer.start = rtsj::AbsoluteTime::epoch();
  producer.period = rtsj::RelativeTime::milliseconds(5);
  producer.cost = rtsj::RelativeTime::microseconds(50);
  mapping.tasks["Producer"] = sched.add_task(producer);
  sim::TaskConfig sink;
  sink.name = "Sink";
  sink.priority = 5;
  sink.release = sim::ReleaseKind::Sporadic;
  mapping.tasks["Sink"] = sched.add_task(sink);
  reconfig::schedule_plan_delta(
      sched, rp.delta, mapping,
      rtsj::AbsoluteTime::epoch() + rtsj::RelativeTime::milliseconds(23),
      rtsj::AbsoluteTime::epoch());
  sched.run_until(rtsj::AbsoluteTime::epoch() +
                  rtsj::RelativeTime::milliseconds(60));
  EXPECT_FALSE(sched.task_enabled(mapping.task("Sink")));
  EXPECT_TRUE(sched.task_enabled(mapping.task("Sink2")));
  std::size_t plan_changes = 0;
  for (const auto& ev : sched.trace()) {
    if (ev.kind == sim::TraceKind::PlanChange) ++plan_changes;
  }
  EXPECT_EQ(plan_changes, 1u);
}

TEST(SimPlanChangeTest, AddedPeriodicEntersOnAnchorGrid) {
  sim::PreemptiveScheduler sched(1);
  sched.enable_trace();
  sim::PreemptiveScheduler::PlanChange change;
  sim::TaskConfig added;
  added.name = "Late";
  added.priority = 10;
  added.release = sim::ReleaseKind::Periodic;
  added.start = rtsj::AbsoluteTime::epoch();  // anchor
  added.period = rtsj::RelativeTime::milliseconds(10);
  added.cost = rtsj::RelativeTime::microseconds(100);
  change.additions.push_back(added);
  const auto ids = sched.schedule_plan_change(
      rtsj::AbsoluteTime::epoch() + rtsj::RelativeTime::milliseconds(25),
      std::move(change));
  ASSERT_EQ(ids.size(), 1u);
  sched.run_until(rtsj::AbsoluteTime::epoch() +
                  rtsj::RelativeTime::milliseconds(60));
  // First release at 30 ms: the first grid point strictly after the
  // change instant; then every 10 ms.
  std::vector<std::int64_t> releases;
  for (const auto& ev : sched.trace()) {
    if (ev.kind == sim::TraceKind::Release && ev.task == ids[0]) {
      releases.push_back(ev.time.nanos());
    }
  }
  ASSERT_GE(releases.size(), 3u);
  EXPECT_EQ(releases[0], rtsj::RelativeTime::milliseconds(30).nanos());
  EXPECT_EQ(releases[1], rtsj::RelativeTime::milliseconds(40).nanos());
  EXPECT_EQ(releases[2], rtsj::RelativeTime::milliseconds(50).nanos());
}

}  // namespace
}  // namespace rtcf
