// Runtime adaptation (§4.2): per-component lifecycle and RTSJ-checked
// rebinding across the generation modes.
#include <gtest/gtest.h>

#include "comm/content.hpp"
#include "runtime/content_registry.hpp"
#include "scenario/production_scenario.hpp"
#include "soleil/application.hpp"

namespace rtcf {
namespace {

using soleil::Mode;

class CountingConsole final : public comm::Content {
 public:
  comm::Message on_invoke(const comm::Message& request) override {
    ++calls;
    comm::Message ack;
    ack.sequence = request.sequence;
    return ack;
  }
  int calls = 0;
};

class HeapConsole final : public comm::Content {
 public:
  comm::Message on_invoke(const comm::Message&) override { return {}; }
};

/// Fig. 4 plus a legal (immortal) and an illegal (heap) alternate console.
model::Architecture extended_architecture() {
  auto arch = scenario::make_production_architecture();
  auto& backup = arch.add_passive("BackupConsole");
  backup.set_content_class("CountingConsole");
  backup.add_interface(
      {"iConsole", model::InterfaceRole::Server, "IConsole"});
  arch.add_child(*arch.find("Imm1"), backup);
  auto& heap_console = arch.add_passive("HeapConsole");
  heap_console.set_content_class("HeapConsole");
  heap_console.add_interface(
      {"iConsole", model::InterfaceRole::Server, "IConsole"});
  arch.add_child(*arch.find("H1"), heap_console);
  return arch;
}

struct RegisterContent {
  RegisterContent() {
    runtime::ContentRegistry::instance().register_class<CountingConsole>(
        "CountingConsole");
    runtime::ContentRegistry::instance().register_class<HeapConsole>(
        "HeapConsole");
  }
};
const RegisterContent register_content;

class ReconfigTest : public ::testing::TestWithParam<Mode> {};

TEST_P(ReconfigTest, LegalRebindRedirectsTraffic) {
  const auto arch = extended_architecture();
  auto app = soleil::build_application(arch, GetParam());
  app->start();
  for (int i = 0; i < 200; ++i) app->iterate("ProductionLine");
  const auto before = scenario::collect_counters(*app);
  ASSERT_GT(before.console_reports, 0u);

  auto report =
      app->rebind_sync("MonitoringSystem", "iConsole", "BackupConsole");
  if (GetParam() == Mode::UltraMerge) {
    EXPECT_FALSE(report.ok()) << "ULTRA_MERGE is static";
    EXPECT_TRUE(report.has_rule("MODE-STATIC"));
    return;
  }
  ASSERT_TRUE(report.ok()) << report.to_string();
  EXPECT_TRUE(report.has_rule("RECONF-PATTERN"));

  for (int i = 0; i < 200; ++i) app->iterate("ProductionLine");
  const auto after = scenario::collect_counters(*app);
  EXPECT_EQ(after.console_reports, before.console_reports)
      << "primary console no longer receives reports";
  const auto* backup =
      dynamic_cast<const CountingConsole*>(app->content("BackupConsole"));
  EXPECT_GT(backup->calls, 0);
}

TEST_P(ReconfigTest, IllegalRebindIsRefusedAndWiringUntouched) {
  const auto arch = extended_architecture();
  auto app = soleil::build_application(arch, GetParam());
  app->start();
  auto report =
      app->rebind_sync("MonitoringSystem", "iConsole", "HeapConsole");
  EXPECT_FALSE(report.ok());
  if (GetParam() != Mode::UltraMerge) {
    EXPECT_TRUE(report.has_rule("RECONF-NHRT-HEAP"));
  }
  // Traffic still flows to the original console.
  for (int i = 0; i < 200; ++i) app->iterate("ProductionLine");
  EXPECT_GT(scenario::collect_counters(*app).console_reports, 0u);
}

TEST_P(ReconfigTest, UnknownEndpointsAreReported) {
  const auto arch = extended_architecture();
  auto app = soleil::build_application(arch, GetParam());
  if (GetParam() == Mode::UltraMerge) return;
  EXPECT_FALSE(
      app->rebind_sync("Ghost", "iConsole", "BackupConsole").ok());
  EXPECT_FALSE(
      app->rebind_sync("MonitoringSystem", "noPort", "BackupConsole").ok());
  EXPECT_FALSE(
      app->rebind_sync("MonitoringSystem", "iConsole", "Ghost").ok());
}

TEST_P(ReconfigTest, PerComponentLifecycle) {
  const auto arch = extended_architecture();
  auto app = soleil::build_application(arch, GetParam());
  app->start();
  if (GetParam() == Mode::UltraMerge) {
    EXPECT_FALSE(app->set_component_started("MonitoringSystem", false));
    return;
  }
  ASSERT_TRUE(app->set_component_started("MonitoringSystem", false));
  app->iterate("ProductionLine");
  const auto counters = scenario::collect_counters(*app);
  EXPECT_EQ(counters.produced, 1u) << "producer still runs";
  EXPECT_EQ(counters.processed, 0u) << "stopped component rejects delivery";
  ASSERT_TRUE(app->set_component_started("MonitoringSystem", true));
  app->iterate("ProductionLine");
  EXPECT_EQ(scenario::collect_counters(*app).processed, 1u);
}

INSTANTIATE_TEST_SUITE_P(AllModes, ReconfigTest,
                         ::testing::Values(Mode::Soleil, Mode::MergeAll,
                                           Mode::UltraMerge),
                         [](const auto& info) {
                           return std::string(soleil::to_string(info.param));
                         });

}  // namespace
}  // namespace rtcf
