// Partitioned fixed-priority scheduling over multiple simulated CPUs.
#include <gtest/gtest.h>

#include <tuple>

#include "scenario/production_scenario.hpp"
#include "sim/architecture_sim.hpp"
#include "sim/scheduler.hpp"
#include "soleil/application.hpp"

namespace rtcf::sim {
namespace {

using rtsj::AbsoluteTime;
using rtsj::RelativeTime;

AbsoluteTime at_ms(std::int64_t ms) {
  return AbsoluteTime::epoch() + RelativeTime::milliseconds(ms);
}

TaskConfig periodic(const char* name, int priority, std::int64_t period_us,
                    std::int64_t cost_us, std::size_t cpu = 0,
                    ThreadKind kind = ThreadKind::Realtime) {
  TaskConfig cfg;
  cfg.name = name;
  cfg.kind = kind;
  cfg.priority = priority;
  cfg.release = ReleaseKind::Periodic;
  cfg.period = RelativeTime::microseconds(period_us);
  cfg.cost = RelativeTime::microseconds(cost_us);
  cfg.cpu = cpu;
  return cfg;
}

/// The trace as comparable values (time, kind, task, seq).
std::vector<std::tuple<std::int64_t, TraceKind, TaskId, std::uint64_t>>
trace_data(const PreemptiveScheduler& sched) {
  std::vector<std::tuple<std::int64_t, TraceKind, TaskId, std::uint64_t>> out;
  for (const TraceEvent& ev : sched.trace()) {
    out.emplace_back(ev.time.nanos(), ev.kind, ev.task, ev.release_seq);
  }
  return out;
}

// The acceptance bar: a multi-CPU scheduler given one partition reproduces
// the single-CPU trace bit-for-bit.
TEST(PartitionedSimTest, SinglePartitionTraceIsBitForBitIdentical) {
  auto build = [](PreemptiveScheduler& sched) {
    sched.enable_trace();
    sched.add_task(periodic("low", 12, 5'000, 2'000));
    sched.add_task(periodic("high", 30, 2'000, 300));
    sched.add_task(periodic("nhrt", 25, 3'000, 500, 0,
                            ThreadKind::NoHeapRealtime));
    GcModel gc;
    gc.interval = RelativeTime::milliseconds(7);
    gc.pause = RelativeTime::milliseconds(1);
    sched.set_gc_model(gc);
    sched.run_until(at_ms(100));
  };
  PreemptiveScheduler single(1);
  PreemptiveScheduler multi(4);  // same workload, everything pinned to cpu 0
  build(single);
  build(multi);
  EXPECT_EQ(trace_data(single), trace_data(multi));
  EXPECT_EQ(single.gc_pause_count(), multi.gc_pause_count());
}

TEST(PartitionedSimTest, CpusScheduleIndependently) {
  PreemptiveScheduler sched(2);
  // Same priority, same release instant: on one CPU they would serialize
  // (2 ms then 4 ms response); on two CPUs both finish in 2 ms.
  const TaskId a = sched.add_task(periodic("a", 20, 10'000, 2'000, 0));
  const TaskId b = sched.add_task(periodic("b", 20, 10'000, 2'000, 1));
  sched.run_until(at_ms(10));
  EXPECT_DOUBLE_EQ(sched.stats(a).response_times_us.max(), 2'000.0);
  EXPECT_DOUBLE_EQ(sched.stats(b).response_times_us.max(), 2'000.0);
  EXPECT_EQ(sched.stats(a).preemptions, 0u);
  EXPECT_EQ(sched.stats(b).preemptions, 0u);
}

TEST(PartitionedSimTest, SameCpuTasksStillContend) {
  PreemptiveScheduler sched(2);
  const TaskId a = sched.add_task(periodic("a", 20, 10'000, 2'000, 1));
  const TaskId b = sched.add_task(periodic("b", 20, 10'000, 2'000, 1));
  sched.run_until(at_ms(10));
  // FIFO within the band on one CPU: the second task waits for the first.
  EXPECT_DOUBLE_EQ(sched.stats(a).response_times_us.max(), 2'000.0);
  EXPECT_DOUBLE_EQ(sched.stats(b).response_times_us.max(), 4'000.0);
}

TEST(PartitionedSimTest, GcStallsEveryCpuExceptNhrt) {
  PreemptiveScheduler sched(2);
  // Long-running RT task on each CPU plus an NHRT task on CPU 1.
  const TaskId rt0 = sched.add_task(periodic("rt0", 20, 50'000, 20'000, 0));
  const TaskId rt1 = sched.add_task(periodic("rt1", 20, 50'000, 20'000, 1));
  const TaskId nhrt = sched.add_task(
      periodic("nhrt", 30, 10'000, 1'000, 1, ThreadKind::NoHeapRealtime));
  GcModel gc;
  gc.interval = RelativeTime::milliseconds(5);
  gc.pause = RelativeTime::milliseconds(2);
  sched.set_gc_model(gc);
  sched.run_until(at_ms(50));
  EXPECT_GT(sched.gc_pause_count(), 0u);
  // Both RT tasks ate GC preemptions (one collector, every CPU stalled)...
  EXPECT_GT(sched.stats(rt0).preemptions, 0u);
  EXPECT_GT(sched.stats(rt1).preemptions, 0u);
  // ...while the NHRT pipeline kept its uncontended response time.
  EXPECT_DOUBLE_EQ(sched.stats(nhrt).response_times_us.max(), 1'000.0);
  EXPECT_EQ(sched.stats(nhrt).deadline_misses, 0u);
}

TEST(PartitionedSimTest, CrossCpuPipelineChainsArrivals) {
  PreemptiveScheduler sched(2);
  auto client = periodic("client", 25, 10'000, 1'000, 0);
  const TaskId client_id = sched.add_task(std::move(client));
  TaskConfig server;
  server.name = "server";
  server.priority = 20;
  server.release = ReleaseKind::Sporadic;
  server.cost = RelativeTime::microseconds(500);
  server.cpu = 1;
  const TaskId server_id = sched.add_task(std::move(server));
  sched.set_on_complete(client_id, [&sched, server_id](AbsoluteTime t) {
    sched.post_arrival(server_id, t);
  });
  sched.run_until(at_ms(100));
  EXPECT_EQ(sched.stats(client_id).releases_completed, 10u);
  EXPECT_EQ(sched.stats(server_id).releases_completed, 10u);
  // The server runs alone on CPU 1: response == cost despite the client's
  // concurrent execution on CPU 0.
  EXPECT_DOUBLE_EQ(sched.stats(server_id).response_times_us.max(), 500.0);
}

TEST(PartitionedSimTest, PlanAffinityMapsOntoSimCpus) {
  const auto arch = scenario::make_production_architecture();
  auto app = soleil::build_application(arch, soleil::Mode::Soleil, 3);
  const soleil::Plan& plan = app->plan();
  PreemptiveScheduler sched(3);
  const SimMapping mapping = map_architecture(
      arch, sched,
      [&plan](const std::string& name) { return plan.partition_of(name); });
  for (const auto& [name, task] : mapping.tasks) {
    EXPECT_EQ(sched.config(task).cpu, plan.partition_of(name)) << name;
  }
  sched.run_until(at_ms(100));
  EXPECT_GT(sched.stats(mapping.task("ProductionLine")).releases_completed,
            0u);
}

TEST(PartitionedSimTest, TasksRejectOutOfRangeCpus) {
  PreemptiveScheduler sched(2);
  auto cfg = periodic("bad", 20, 1'000, 100, 2);
  EXPECT_THROW(sched.add_task(std::move(cfg)), std::invalid_argument);
}

}  // namespace
}  // namespace rtcf::sim
