// The gateway data plane (`ctest -L dataplane`): BATCH/CREDIT codecs,
// coalescing and credit flow control in dist::DataPlane, v2<->v3
// negotiation, the two-node end-to-end batched path, and the virtual-time
// mirror's replay equality (docs/DATAPLANE.md is the spec under test).
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <thread>

#include "comm/channel.hpp"
#include "dist/cluster_sim.hpp"
#include "dist/dataplane.hpp"
#include "dist/node_runtime.hpp"
#include "dist/plan_codec.hpp"
#include "dist/protocol.hpp"
#include "dist/wire.hpp"
#include "runtime/content_registry.hpp"
#include "sim/scheduler.hpp"

namespace rtcf::dist {
namespace {

using model::ActivationKind;
using model::Architecture;
using model::Binding;
using model::Criticality;
using model::DomainType;
using model::InterfaceRole;
using model::Protocol;
using validate::NodeMap;

comm::Message make_message(std::uint64_t sequence) {
  comm::Message m;
  m.type_id = 3;
  m.sequence = sequence;
  m.timestamp_ns = static_cast<std::int64_t>(1000 + sequence);
  m.store<std::uint64_t>(sequence * 7);
  return m;
}

// ---- codecs ---------------------------------------------------------------

TEST(BatchCodecTest, RoundTripsMultiRouteFrames) {
  BatchPayload payload;
  payload.routes.push_back({"Producer", "out",
                            {make_message(1), make_message(2)}});
  payload.routes.push_back({"Watchdog", "tick", {make_message(9)}});
  const comm::Frame frame = make_batch(payload);
  EXPECT_EQ(frame.type, static_cast<std::uint16_t>(FrameType::Batch));

  const BatchPayload again = parse_batch(frame);
  ASSERT_EQ(again.routes.size(), 2u);
  EXPECT_EQ(again.routes[0].client, "Producer");
  EXPECT_EQ(again.routes[0].port, "out");
  ASSERT_EQ(again.routes[0].messages.size(), 2u);
  EXPECT_EQ(again.routes[1].client, "Watchdog");
  ASSERT_EQ(again.routes[1].messages.size(), 1u);
  const comm::Message& m = again.routes[0].messages[1];
  EXPECT_EQ(m.sequence, 2u);
  EXPECT_EQ(m.type_id, 3u);
  EXPECT_EQ(m.timestamp_ns, 1002);
  EXPECT_EQ(m.load<std::uint64_t>(), 14u);
}

TEST(BatchCodecTest, RejectsEveryTruncation) {
  BatchPayload payload;
  payload.routes.push_back({"C", "p", {make_message(1), make_message(2)}});
  const comm::Frame full = make_batch(payload);
  for (std::size_t cut = 0; cut < full.payload.size(); ++cut) {
    comm::Frame torn = full;
    torn.payload.resize(cut);
    EXPECT_THROW(parse_batch(torn), WireError) << "cut at " << cut;
  }
}

TEST(CreditCodecTest, RoundTripsAndRejectsTruncation) {
  const comm::Frame frame = make_credit({"Producer", "out", 128});
  EXPECT_EQ(frame.type, static_cast<std::uint16_t>(FrameType::Credit));
  const CreditPayload again = parse_credit(frame);
  EXPECT_EQ(again.client, "Producer");
  EXPECT_EQ(again.port, "out");
  EXPECT_EQ(again.credits, 128u);
  for (std::size_t cut = 0; cut < frame.payload.size(); ++cut) {
    comm::Frame torn = frame;
    torn.payload.resize(cut);
    EXPECT_THROW(parse_credit(torn), WireError) << "cut at " << cut;
  }
}

TEST(HelloCodecTest, AnnouncesProtocolVersionAndShmToken) {
  const comm::Frame frame = make_hello("alpha", "/rtcf.alpha.beta");
  const HelloInfo info = parse_hello_info(frame);
  EXPECT_EQ(info.node, "alpha");
  EXPECT_EQ(info.codec_version, kCodecVersion);
  EXPECT_EQ(info.protocol_version, kProtocolVersion);
  EXPECT_EQ(info.shm_token, "/rtcf.alpha.beta");
  // The v2 accessor still reads the leading fields only.
  EXPECT_EQ(parse_hello(frame), "alpha");
}

TEST(HelloCodecTest, LegacyHelloWithoutTrailingFieldsParsesAsV2) {
  // A pre-v3 peer's HELLO: node + codec version, nothing appended.
  WireWriter w;
  w.str("legacy");
  w.u16(kCodecVersion);
  comm::Frame frame;
  frame.type = static_cast<std::uint16_t>(FrameType::Hello);
  frame.payload = w.take();
  const HelloInfo info = parse_hello_info(frame);
  EXPECT_EQ(info.node, "legacy");
  EXPECT_EQ(info.protocol_version, 2u);
  EXPECT_TRUE(info.shm_token.empty());
}

// ---- DataPlane unit behaviour ---------------------------------------------

/// Drains every frame currently on `far` without waiting.
std::vector<comm::Frame> drain(comm::Channel& far) {
  std::vector<comm::Frame> frames;
  comm::Frame frame;
  while (far.receive(frame, rtsj::RelativeTime::zero())) {
    frames.push_back(frame);
  }
  return frames;
}

TEST(DataPlaneTest, CoalescesUntilBatchMaxThenFlushesOneFrame) {
  DataPlaneConfig config;
  config.batch_max = 4;
  config.flush_interval = rtsj::RelativeTime::milliseconds(200);
  config.credit_window = 64;
  config.route_queue_cap = 64;
  DataPlane plane(config);
  plane.set_peer_version("beta", kProtocolVersion);
  auto [near, far] = comm::LoopbackChannel::make_pair();
  const std::size_t route = plane.add_route("Producer", "out", near, "beta");

  for (std::uint64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(plane.offer(route, make_message(i)), DataPlane::Offer::Queued);
  }
  EXPECT_TRUE(drain(*far).empty()) << "nothing may flush below batch_max";

  EXPECT_EQ(plane.offer(route, make_message(3)), DataPlane::Offer::Sent);
  const auto frames = drain(*far);
  ASSERT_EQ(frames.size(), 1u) << "one BATCH frame, not four writes";
  const BatchPayload batch = parse_batch(frames[0]);
  ASSERT_EQ(batch.routes.size(), 1u);
  ASSERT_EQ(batch.routes[0].messages.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(batch.routes[0].messages[i].sequence, i) << "order preserved";
  }
  const DataPlaneStats stats = plane.stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.sent, 4u);
  EXPECT_EQ(stats.size_flushes, 1u);
  EXPECT_EQ(stats.legacy_sends, 0u);
}

TEST(DataPlaneTest, DeadlineFlushSendsAgedPartialBatches) {
  DataPlaneConfig config;
  config.batch_max = 100;
  config.flush_interval = rtsj::RelativeTime::milliseconds(50);
  DataPlane plane(config);
  plane.set_peer_version("beta", kProtocolVersion);
  auto [near, far] = comm::LoopbackChannel::make_pair();
  const std::size_t route = plane.add_route("Producer", "out", near, "beta");

  EXPECT_EQ(plane.offer(route, make_message(0)), DataPlane::Offer::Queued);
  EXPECT_EQ(plane.offer(route, make_message(1)), DataPlane::Offer::Queued);
  EXPECT_EQ(plane.flush(false), 0u) << "younger than flush_interval";

  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_EQ(plane.flush(false), 2u);
  const auto frames = drain(*far);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(parse_batch(frames[0]).routes[0].messages.size(), 2u);
  EXPECT_EQ(plane.stats().deadline_flushes, 1u);
}

TEST(DataPlaneTest, CreditExhaustionBackpressuresUntilReplenished) {
  DataPlaneConfig config;
  config.batch_max = 1;  // flush every offer while credit remains
  config.flush_interval = rtsj::RelativeTime::zero();
  config.credit_window = 2;
  config.route_queue_cap = 16;
  DataPlane plane(config);
  plane.set_peer_version("beta", kProtocolVersion);
  auto [near, far] = comm::LoopbackChannel::make_pair();
  const std::size_t route = plane.add_route("Producer", "out", near, "beta");

  EXPECT_EQ(plane.offer(route, make_message(0)), DataPlane::Offer::Sent);
  EXPECT_EQ(plane.offer(route, make_message(1)), DataPlane::Offer::Sent);
  // Window exhausted: the route queues instead of writing the channel.
  EXPECT_EQ(plane.offer(route, make_message(2)), DataPlane::Offer::Queued);
  EXPECT_EQ(plane.flush(false), 0u) << "no credit, no wire";
  EXPECT_EQ(drain(*far).size(), 2u);
  EXPECT_EQ(plane.stats().queued, 1u);

  // The entry side grants; the queued message drains on the next flush.
  plane.on_credit({"Producer", "out", 2});
  EXPECT_EQ(plane.flush(false), 1u);
  const auto frames = drain(*far);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(parse_batch(frames[0]).routes[0].messages[0].sequence, 2u);
  EXPECT_EQ(plane.stats().queued, 0u);
}

TEST(DataPlaneTest, FullRouteQueueDropsNewest) {
  DataPlaneConfig config;
  config.batch_max = 100;
  config.flush_interval = rtsj::RelativeTime::zero();
  config.credit_window = 0;  // sending disabled: everything queues
  config.route_queue_cap = 3;
  DataPlane plane(config);
  plane.set_peer_version("beta", kProtocolVersion);
  auto [near, far] = comm::LoopbackChannel::make_pair();
  const std::size_t route = plane.add_route("Producer", "out", near, "beta");

  for (std::uint64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(plane.offer(route, make_message(i)), DataPlane::Offer::Queued);
  }
  EXPECT_EQ(plane.offer(route, make_message(3)), DataPlane::Offer::Dropped);
  const DataPlaneStats stats = plane.stats();
  EXPECT_EQ(stats.overflow_drops, 1u);
  EXPECT_EQ(stats.queued, 3u);
  EXPECT_EQ(stats.offered, 4u);

  // The three accepted survivors drain once credit exists; the dropped
  // message never reappears (drop-newest, docs/DATAPLANE.md §4).
  plane.on_credit({"Producer", "out", 10});
  EXPECT_EQ(plane.flush(false), 3u);
  const auto frames = drain(*far);
  ASSERT_EQ(frames.size(), 1u);
  const BatchPayload batch = parse_batch(frames[0]);
  ASSERT_EQ(batch.routes[0].messages.size(), 3u);
  EXPECT_EQ(batch.routes[0].messages.back().sequence, 2u);
}

TEST(DataPlaneTest, LegacyPeerFallsBackToPerMessageData) {
  DataPlane plane;  // defaults; peer never announced v3
  auto [near, far] = comm::LoopbackChannel::make_pair();
  const std::size_t route = plane.add_route("Producer", "out", near, "beta");
  EXPECT_EQ(plane.peer_version("beta"), 2u);

  for (std::uint64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(plane.offer(route, make_message(i)), DataPlane::Offer::Sent);
  }
  const auto frames = drain(*far);
  ASSERT_EQ(frames.size(), 3u) << "one DATA frame per message";
  for (std::uint64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(frames[i].type, static_cast<std::uint16_t>(FrameType::Data));
    EXPECT_EQ(parse_data(frames[i]).message.sequence, i);
  }
  const DataPlaneStats stats = plane.stats();
  EXPECT_EQ(stats.legacy_sends, 3u);
  EXPECT_EQ(stats.batches, 0u);
}

TEST(DataPlaneTest, QueuedMessagesSurviveARouteRefresh) {
  DataPlaneConfig config;
  config.batch_max = 100;
  config.flush_interval = rtsj::RelativeTime::zero();
  config.credit_window = 0;
  config.route_queue_cap = 16;
  DataPlane plane(config);
  plane.set_peer_version("beta", kProtocolVersion);
  auto [near, far] = comm::LoopbackChannel::make_pair();
  const std::size_t route = plane.add_route("Producer", "out", near, "beta");
  EXPECT_EQ(plane.offer(route, make_message(0)), DataPlane::Offer::Queued);
  EXPECT_EQ(plane.offer(route, make_message(1)), DataPlane::Offer::Queued);

  // A commit refreshes the route table: deactivate, then re-add the same
  // (client, port) over a new channel. Nothing in flight may be lost.
  plane.clear_routes();
  EXPECT_EQ(plane.offer(route, make_message(9)), DataPlane::Offer::Dropped)
      << "inactive routes accept nothing";
  auto [near2, far2] = comm::LoopbackChannel::make_pair();
  const std::size_t again =
      plane.add_route("Producer", "out", near2, "beta");
  EXPECT_EQ(again, route) << "the (client, port) key is the identity";

  plane.on_credit({"Producer", "out", 8});
  EXPECT_EQ(plane.flush(false), 2u);
  EXPECT_TRUE(drain(*far).empty()) << "the old channel sees nothing";
  const auto frames = drain(*far2);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(parse_batch(frames[0]).routes[0].messages.size(), 2u);
}

TEST(DataPlaneTest, EntrySideGrantsOnConsumeThreshold) {
  DataPlaneConfig config;
  config.credit_window = 8;  // grant threshold max(1, 8/2) = 4
  DataPlane plane(config);
  auto [reverse, far] = comm::LoopbackChannel::make_pair();
  const std::size_t entry =
      plane.add_entry_route("Producer", "out", reverse, "alpha");

  plane.note_injected(entry, 3);
  EXPECT_TRUE(drain(*far).empty()) << "below the replenish threshold";
  plane.note_injected(entry, 1);
  auto frames = drain(*far);
  ASSERT_EQ(frames.size(), 1u);
  const CreditPayload grant = parse_credit(frames[0]);
  EXPECT_EQ(grant.client, "Producer");
  EXPECT_EQ(grant.port, "out");
  EXPECT_EQ(grant.credits, 4u);
  EXPECT_EQ(plane.stats().credits_granted, 4u);

  // grant_all flushes sub-threshold remainders (the stop() drain).
  plane.note_injected(entry, 1);
  EXPECT_EQ(plane.grant_all(), 1u);
  frames = drain(*far);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(parse_credit(frames[0]).credits, 1u);
}

// ---- end to end across two NodeRuntimes -----------------------------------

class DpProducerImpl final : public comm::Content {
 public:
  void on_release() override {
    comm::Message m;
    m.sequence = ++sent_;
    port(0).send(m);
  }
  std::uint64_t sent() const noexcept { return sent_; }

 private:
  std::uint64_t sent_ = 0;
};

class DpSinkImpl final : public comm::Content {
 public:
  void on_message(const comm::Message&) override { ++received_; }
  std::uint64_t received() const noexcept { return received_; }

 private:
  std::uint64_t received_ = 0;
};

RTCF_REGISTER_CONTENT(DpProducerImpl)
RTCF_REGISTER_CONTENT(DpSinkImpl)

/// Producer@alpha --async--> Sink@beta, producing every millisecond.
Architecture bridge_arch() {
  Architecture arch;
  auto& producer = arch.add_active("Producer", ActivationKind::Periodic,
                                   rtsj::RelativeTime::milliseconds(1));
  producer.set_content_class("DpProducerImpl");
  producer.set_cost(rtsj::RelativeTime::microseconds(20));
  producer.set_swappable(true);
  producer.add_interface({"out", InterfaceRole::Client, "ISink"});
  auto& sink = arch.add_active("Sink", ActivationKind::Sporadic);
  sink.set_content_class("DpSinkImpl");
  sink.set_criticality(Criticality::Low);
  sink.set_swappable(true);
  sink.add_interface({"in", InterfaceRole::Server, "ISink"});
  Binding bridge;
  bridge.client = {"Producer", "out"};
  bridge.server = {"Sink", "in"};
  bridge.desc.protocol = Protocol::Asynchronous;
  bridge.desc.buffer_size = 64;
  arch.add_binding(bridge);
  auto& rt = arch.add_thread_domain("RT_A", DomainType::Realtime, 20);
  arch.add_child(rt, producer);
  auto& reg = arch.add_thread_domain("reg_B", DomainType::Regular, 5);
  arch.add_child(reg, sink);
  model::ModeDecl normal;
  normal.name = "Normal";
  normal.components.push_back({"Producer", rtsj::RelativeTime::zero(), {}});
  normal.components.push_back({"Sink", rtsj::RelativeTime::zero(), {}});
  arch.add_mode(std::move(normal));
  model::ModeDecl degraded;
  degraded.name = "Degraded";
  degraded.degraded = true;
  degraded.components.push_back(
      {"Producer", rtsj::RelativeTime::milliseconds(50), {}});
  arch.add_mode(std::move(degraded));
  return arch;
}

NodeMap bridge_map() {
  NodeMap map;
  map.nodes = {"alpha", "beta"};
  map.assignment = {{"Producer", "alpha"}, {"Sink", "beta"}};
  return map;
}

TEST(DataPlaneEndToEndTest, TwoV3NodesBridgeBatchedTrafficWithoutLoss) {
  const Architecture global = bridge_arch();
  const NodeMap map = bridge_map();
  NodeRuntime::Options options;
  options.run_duration = rtsj::RelativeTime::milliseconds(300);
  NodeRuntime alpha(global, map, "alpha", options);
  NodeRuntime beta(global, map, "beta", options);
  auto [ab, ba] = comm::LoopbackChannel::make_pair();
  alpha.connect_peer("beta", ab);
  beta.connect_peer("alpha", ba);

  alpha.start();
  beta.start();
  alpha.join_executive();
  beta.join_executive();
  alpha.stop();
  beta.stop();

  // HELLO negotiation made both directions v3.
  EXPECT_EQ(alpha.data_plane().peer_version("beta"), kProtocolVersion);
  EXPECT_EQ(beta.data_plane().peer_version("alpha"), kProtocolVersion);

  const auto* producer = dynamic_cast<const DpProducerImpl*>(
      alpha.application().content("Producer"));
  const auto* sink =
      dynamic_cast<const DpSinkImpl*>(beta.application().content("Sink"));
  ASSERT_NE(producer, nullptr);
  ASSERT_NE(sink, nullptr);
  EXPECT_GT(producer->sent(), 0u);
  EXPECT_EQ(producer->sent(), sink->received()) << "zero-loss conservation";
  EXPECT_EQ(alpha.gateway_stats().forwarded, producer->sent());
  EXPECT_EQ(beta.gateway_stats().injected, sink->received());

  // The bridged traffic rode BATCH frames. (A handful of messages may go
  // out as legacy DATA before the serve thread processes beta's HELLO,
  // so the legacy counter is not asserted zero here — the unit tests pin
  // the pure-v3 behaviour.)
  const DataPlaneStats stats = alpha.data_plane().stats();
  EXPECT_GT(stats.batches, 0u);
  EXPECT_EQ(stats.queued, 0u) << "stop() drains every route";
}

TEST(DataPlaneEndToEndTest, UnannouncedPeerGetsLegacyDataThenUpgrades) {
  const Architecture global = bridge_arch();
  const NodeMap map = bridge_map();
  NodeRuntime::Options options;
  options.run_duration = rtsj::RelativeTime::milliseconds(400);
  NodeRuntime alpha(global, map, "alpha", options);
  // The far end of the peer channel is the test, playing beta's transport:
  // first silent (alpha must assume v2), then announcing v3 by HELLO.
  auto [ab, ba] = comm::LoopbackChannel::make_pair();
  alpha.connect_peer("beta", ab);

  alpha.start();
  std::uint64_t data_frames = 0;
  std::uint64_t batch_frames = 0;
  const auto pump = [&](int millis) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(millis);
    comm::Frame frame;
    while (std::chrono::steady_clock::now() < deadline) {
      if (!ba->receive(frame, rtsj::RelativeTime::milliseconds(10))) {
        continue;
      }
      if (frame.type == static_cast<std::uint16_t>(FrameType::Data)) {
        ++data_frames;
      } else if (frame.type ==
                 static_cast<std::uint16_t>(FrameType::Batch)) {
        batch_frames += parse_batch(frame).routes[0].messages.size();
      }
    }
  };

  pump(100);
  EXPECT_EQ(alpha.data_plane().peer_version("beta"), 2u);
  EXPECT_GT(data_frames, 0u) << "pre-HELLO traffic uses per-message DATA";
  EXPECT_EQ(batch_frames, 0u);

  // beta announces v3: alpha's exit route switches to BATCH mid-run.
  ba->send(make_hello("beta"));
  pump(200);
  EXPECT_EQ(alpha.data_plane().peer_version("beta"), kProtocolVersion);
  EXPECT_GT(batch_frames, 0u) << "post-HELLO traffic coalesces";

  alpha.stop();
}

// ---- the virtual-time mirror ----------------------------------------------

TEST(DataPlaneSimTest, BatchedMirrorReplaysBitForBitAndConservesMessages) {
  const Architecture global = bridge_arch();
  const NodeMap map = bridge_map();

  const auto run_once = [&] {
    sim::PreemptiveScheduler sched(map.nodes.size());
    sched.enable_trace();
    SimDataPlane data_plane;
    data_plane.batch_max = 4;
    data_plane.flush_interval = rtsj::RelativeTime::microseconds(300);
    data_plane.credit_window = 8;
    data_plane.credit_rtt = rtsj::RelativeTime::microseconds(200);
    data_plane.route_queue_cap = 32;
    data_plane.stats = std::make_shared<std::vector<RouteSimStats>>();
    map_cluster(global, map, sched, rtsj::RelativeTime::microseconds(50),
                nullptr, data_plane);
    sched.run_until(rtsj::AbsoluteTime::epoch() +
                    rtsj::RelativeTime::milliseconds(100));
    std::vector<std::string> rendered;
    for (const auto& ev : sched.trace()) {
      rendered.push_back(ev.to_string(sched));
    }
    return std::make_pair(rendered, *data_plane.stats);
  };

  const auto first = run_once();
  const auto second = run_once();
  EXPECT_EQ(first.first, second.first) << "batched replay must be exact";
  EXPECT_FALSE(first.first.empty());

  ASSERT_EQ(first.second.size(), 1u) << "one bridged route";
  const RouteSimStats& s = first.second[0];
  EXPECT_GT(s.offered, 0u);
  EXPECT_GT(s.batches, 0u);
  EXPECT_EQ(s.offered,
            s.delivered + s.chaos_dropped + s.overflow_dropped + s.queued)
      << "DATA-CONSERVATION";
  EXPECT_EQ(second.second[0].offered, s.offered)
      << "stats replay with the trace";
}

}  // namespace
}  // namespace rtcf::dist
