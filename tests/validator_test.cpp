// The RTSJ conformance rule engine (§3.1–3.2), rule by rule.
#include <gtest/gtest.h>

#include <limits>

#include "model/views.hpp"
#include "scenario/production_scenario.hpp"
#include "validate/validator.hpp"

namespace rtcf::validate {
namespace {

using namespace rtcf::model;

/// Minimal valid skeleton: one periodic active component in an RT domain
/// in immortal memory.
Architecture base_architecture() {
  Architecture arch;
  auto& a = arch.add_active("A", ActivationKind::Periodic,
                            rtsj::RelativeTime::milliseconds(5));
  a.set_content_class("AImpl");
  auto& domain = arch.add_thread_domain("D", DomainType::Realtime, 20);
  arch.add_child(domain, a);
  auto& imm = arch.add_memory_area("Imm", AreaType::Immortal, 1024);
  arch.add_child(imm, domain);
  return arch;
}

TEST(ValidatorTest, CleanArchitecturePasses) {
  const auto report = validate(base_architecture());
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_EQ(report.warning_count(), 0u);
}

TEST(ValidatorTest, MotivationExamplePasses) {
  const auto report = validate(scenario::make_production_architecture());
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(ValidatorTest, ActiveWithoutDomainIsAnError) {
  Architecture arch;
  auto& a = arch.add_active("Orphan", ActivationKind::Periodic,
                            rtsj::RelativeTime::milliseconds(1));
  a.set_content_class("X");
  const auto report = validate(arch);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has_rule("AC-DOMAIN-UNIQUE"));
}

TEST(ValidatorTest, ActiveInTwoDomainsIsAnError) {
  auto arch = base_architecture();
  auto& second = arch.add_thread_domain("D2", DomainType::Realtime, 22);
  arch.add_child(second, *arch.find("A"));
  const auto report = validate(arch);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has_rule("AC-DOMAIN-UNIQUE"));
}

TEST(ValidatorTest, PeriodicNeedsPositivePeriod) {
  Architecture arch;
  auto& a = arch.add_active("A", ActivationKind::Periodic,
                            rtsj::RelativeTime::zero());
  a.set_content_class("X");
  auto& domain = arch.add_thread_domain("D", DomainType::Realtime, 20);
  arch.add_child(domain, a);
  const auto report = validate(arch);
  EXPECT_TRUE(report.has_rule("AC-PERIOD-POSITIVE"));
}

TEST(ValidatorTest, SporadicWithoutTriggerWarns) {
  Architecture arch;
  auto& a = arch.add_active("S", ActivationKind::Sporadic);
  a.set_content_class("X");
  auto& domain = arch.add_thread_domain("D", DomainType::Realtime, 20);
  arch.add_child(domain, a);
  const auto report = validate(arch);
  EXPECT_TRUE(report.has_rule("AC-SPORADIC-TRIGGER"));
  // Warning, not error.
  EXPECT_EQ(report.by_rule("AC-SPORADIC-TRIGGER")[0].severity,
            Severity::Warning);
}

TEST(ValidatorTest, MissingContentClassWarns) {
  Architecture arch;
  auto& a = arch.add_active("A", ActivationKind::Periodic,
                            rtsj::RelativeTime::milliseconds(1));
  auto& domain = arch.add_thread_domain("D", DomainType::Realtime, 20);
  arch.add_child(domain, a);
  const auto report = validate(arch);
  EXPECT_TRUE(report.has_rule("AC-CONTENT-CLASS"));
}

TEST(ValidatorTest, ThreadDomainsMustNotNest) {
  auto arch = base_architecture();
  auto& inner = arch.add_thread_domain("DInner", DomainType::Realtime, 21);
  arch.add_child(*arch.find("D"), inner);
  const auto report = validate(arch);
  EXPECT_TRUE(report.has_rule("TD-NO-NESTING"));
}

TEST(ValidatorTest, ThreadDomainsContainOnlyActiveComponents) {
  auto arch = base_architecture();
  auto& passive = arch.add_passive("P");
  passive.set_content_class("PImpl");
  arch.add_child(*arch.find("D"), passive);
  const auto report = validate(arch);
  EXPECT_TRUE(report.has_rule("TD-ACTIVE-ONLY"));
}

TEST(ValidatorTest, DomainPriorityMustMatchBand) {
  {
    Architecture arch;
    arch.add_thread_domain("TooLow", DomainType::NoHeapRealtime, 5);
    EXPECT_TRUE(validate(arch).has_rule("TD-PRIORITY-RANGE"));
  }
  {
    Architecture arch;
    arch.add_thread_domain("TooHigh", DomainType::Regular, 20);
    EXPECT_TRUE(validate(arch).has_rule("TD-PRIORITY-RANGE"));
  }
  {
    Architecture arch;
    arch.add_thread_domain("FineRt", DomainType::Realtime, 38);
    arch.add_thread_domain("FineReg", DomainType::Regular, 10);
    EXPECT_FALSE(validate(arch).has_rule("TD-PRIORITY-RANGE"));
  }
}

TEST(ValidatorTest, NhrtDomainMustNotEncapsulateHeap) {
  Architecture arch;
  auto& nhrt = arch.add_thread_domain("N", DomainType::NoHeapRealtime, 30);
  auto& heap = arch.add_memory_area("H", AreaType::Heap, 0);
  arch.add_child(nhrt, heap);
  const auto report = validate(arch);
  EXPECT_TRUE(report.has_rule("TD-NHRT-NO-HEAP"));
}

TEST(ValidatorTest, NhrtComponentMustNotLiveOnHeap) {
  Architecture arch;
  auto& a = arch.add_active("A", ActivationKind::Periodic,
                            rtsj::RelativeTime::milliseconds(1));
  a.set_content_class("X");
  auto& nhrt = arch.add_thread_domain("N", DomainType::NoHeapRealtime, 30);
  arch.add_child(nhrt, a);
  auto& heap = arch.add_memory_area("H", AreaType::Heap, 0);
  arch.add_child(heap, a);  // sharing: A is in the domain AND the heap area
  const auto report = validate(arch);
  EXPECT_TRUE(report.has_rule("TD-NHRT-NO-HEAP"));
}

TEST(ValidatorTest, NonFunctionalComponentsDeclareNoInterfaces) {
  Architecture arch;
  auto& domain = arch.add_thread_domain("D", DomainType::Realtime, 20);
  domain.add_interface({"x", InterfaceRole::Server, "I"});
  const auto report = validate(arch);
  EXPECT_TRUE(report.has_rule("NF-NO-INTERFACES"));
}

TEST(ValidatorTest, ScopedAreaNeedsSize) {
  Architecture arch;
  arch.add_memory_area("S", AreaType::Scoped, 0);
  EXPECT_TRUE(validate(arch).has_rule("MA-SCOPED-SIZE"));
}

TEST(ValidatorTest, ScopedAreaSingleParentAtDesignTime) {
  Architecture arch;
  auto& s = arch.add_memory_area("S", AreaType::Scoped, 1024);
  auto& p1 = arch.add_memory_area("P1", AreaType::Scoped, 4096);
  auto& p2 = arch.add_memory_area("P2", AreaType::Scoped, 4096);
  arch.add_child(p1, s);
  arch.add_child(p2, s);
  const auto report = validate(arch);
  EXPECT_TRUE(report.has_rule("MA-SCOPED-SINGLE-PARENT"));
}

TEST(ValidatorTest, UndeployedFunctionalComponentWarns) {
  Architecture arch;
  auto& p = arch.add_passive("Floating");
  p.set_content_class("X");
  const auto report = validate(arch);
  EXPECT_TRUE(report.has_rule("MA-DEPLOYED"));
}

TEST(ValidatorTest, BindingEndpointResolution) {
  auto arch = base_architecture();
  arch.add_binding({{"A", "nope"}, {"Ghost", "x"}, {}});
  const auto report = validate(arch);
  const auto diags = report.by_rule("BIND-ENDPOINTS");
  // Unknown server component + unknown client interface.
  EXPECT_GE(diags.size(), 2u);
}

TEST(ValidatorTest, BindingRoleAndSignatureChecks) {
  Architecture arch;
  auto& a = arch.add_active("A", ActivationKind::Periodic,
                            rtsj::RelativeTime::milliseconds(1));
  a.set_content_class("AI");
  a.add_interface({"out", InterfaceRole::Client, "IFoo"});
  auto& b = arch.add_passive("B");
  b.set_content_class("BI");
  b.add_interface({"in", InterfaceRole::Server, "IBar"});
  auto& domain = arch.add_thread_domain("D", DomainType::Realtime, 20);
  arch.add_child(domain, a);
  auto& imm = arch.add_memory_area("Imm", AreaType::Immortal, 1024);
  arch.add_child(imm, domain);
  arch.add_child(imm, b);

  // Signature mismatch IFoo vs IBar.
  arch.add_binding({{"A", "out"}, {"B", "in"}, {}});
  EXPECT_TRUE(validate(arch).has_rule("BIND-ENDPOINTS"));

  // Role mismatch: using a server interface as client end.
  arch.mutable_bindings().clear();
  arch.add_binding({{"B", "in"}, {"A", "out"}, {}});
  EXPECT_TRUE(validate(arch).has_rule("BIND-ENDPOINTS"));
}

TEST(ValidatorTest, AsyncBindingNeedsBufferSize) {
  auto arch = scenario::make_production_architecture();
  arch.mutable_bindings()[0].desc.buffer_size = 0;
  EXPECT_TRUE(validate(arch).has_rule("BIND-ASYNC-BUFFER"));
}

TEST(ValidatorTest, SyncNhrtToHeapIsRejected) {
  auto arch = scenario::make_production_architecture();
  // Rewire the monitoring system's synchronous console binding at the
  // heap-allocated audit log: NHRT -> heap synchronous = RTSJ violation.
  auto* audit = arch.find("AuditLog");
  audit->add_interface({"iConsole", InterfaceRole::Server, "IConsole"});
  arch.mutable_bindings()[1].server = {"AuditLog", "iConsole"};
  const auto report = validate(arch);
  EXPECT_TRUE(report.has_rule("BIND-NHRT-HEAP-SYNC"));
}

TEST(ValidatorTest, UnknownPatternIsRejected) {
  auto arch = scenario::make_production_architecture();
  arch.mutable_bindings()[1].desc.pattern = "teleport";
  EXPECT_TRUE(validate(arch).has_rule("BIND-PATTERN-KNOWN"));
}

TEST(ValidatorTest, InapplicablePatternIsRejected) {
  auto arch = scenario::make_production_architecture();
  // scope-enter on a same-area asynchronous binding: not applicable.
  arch.mutable_bindings()[0].desc.pattern = "scope-enter";
  EXPECT_TRUE(validate(arch).has_rule("BIND-PATTERN-KNOWN"));
}

TEST(ValidatorTest, CrossAreaBindingGetsPatternSuggestion) {
  const auto arch = scenario::make_production_architecture();
  const auto report = validate(arch);
  const auto suggestions = report.by_rule("BIND-PATTERN-SUGGEST");
  ASSERT_EQ(suggestions.size(), 2u);  // console (sync) + audit (async)
  EXPECT_NE(suggestions[0].message.find("scope-enter"), std::string::npos);
  EXPECT_NE(suggestions[1].message.find("immortal-forward"),
            std::string::npos);
}

TEST(ValidatorTest, ContractedComponentIsCompleteAndClean) {
  auto arch = base_architecture();
  auto* a = arch.find_as<ActiveComponent>("A");
  a->set_criticality(Criticality::Low);
  TimingContract contract;
  contract.wcet_budget = rtsj::RelativeTime::milliseconds(1);
  contract.miss_ratio_bound = 0.1;
  contract.window = 8;
  a->set_timing_contract(contract);
  const auto report = validate(arch);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_FALSE(report.has_rule("AC-CONTRACT-COMPLETE"));
}

TEST(ValidatorTest, ContractWithoutCriticalityIsAnError) {
  auto arch = base_architecture();
  auto* a = arch.find_as<ActiveComponent>("A");
  TimingContract contract;
  contract.wcet_budget = rtsj::RelativeTime::milliseconds(1);
  a->set_timing_contract(contract);
  const auto report = validate(arch);
  EXPECT_FALSE(report.ok());
  ASSERT_TRUE(report.has_rule("AC-CONTRACT-COMPLETE"));
  EXPECT_EQ(report.by_rule("AC-CONTRACT-COMPLETE")[0].severity,
            Severity::Error);
  EXPECT_EQ(report.by_rule("AC-CONTRACT-COMPLETE")[0].subject, "A");
}

TEST(ValidatorTest, ContractWithoutDeadlineIsAnError) {
  // A sporadic component with no minimum interarrival time has no implicit
  // deadline, so a miss-ratio contract on it is unverifiable.
  Architecture arch;
  auto& s = arch.add_active("S", ActivationKind::Sporadic);
  s.set_content_class("X");
  s.set_criticality(Criticality::Low);
  TimingContract contract;
  contract.miss_ratio_bound = 0.2;
  s.set_timing_contract(contract);
  auto& domain = arch.add_thread_domain("D", DomainType::Realtime, 20);
  arch.add_child(domain, s);
  const auto report = validate(arch);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has_rule("AC-CONTRACT-COMPLETE"));
}

TEST(ValidatorTest, ContractBoundsMustBeSane) {
  auto arch = base_architecture();
  auto* a = arch.find_as<ActiveComponent>("A");
  a->set_criticality(Criticality::High);
  TimingContract contract;
  contract.miss_ratio_bound = 1.5;   // outside [0, 1]
  contract.max_arrival_rate_hz = -3; // negative
  contract.window = 0;               // empty window
  a->set_timing_contract(contract);
  const auto report = validate(arch);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.by_rule("AC-CONTRACT-BOUNDS").size(), 3u);

  // NaN bounds must be rejected too (every comparison against NaN is
  // false, so naive range checks would let them through).
  contract.miss_ratio_bound = std::numeric_limits<double>::quiet_NaN();
  contract.max_arrival_rate_hz = std::numeric_limits<double>::quiet_NaN();
  contract.window = 8;
  a->set_timing_contract(contract);
  const auto nan_report = validate(arch);
  EXPECT_EQ(nan_report.by_rule("AC-CONTRACT-BOUNDS").size(), 2u);
}

TEST(ValidatorTest, ExecutingDomainsPropagateThroughSyncBindings) {
  const auto arch = scenario::make_production_architecture();
  // Console is passive: it executes on its synchronous caller's domain
  // (the NHRT2 monitoring domain).
  const auto domains = executing_domains(arch, *arch.find("Console"));
  ASSERT_EQ(domains.size(), 1u);
  EXPECT_EQ(domains[0]->name(), "NHRT2");
  // AuditLog is active: exactly its own domain.
  const auto audit = executing_domains(arch, *arch.find("AuditLog"));
  ASSERT_EQ(audit.size(), 1u);
  EXPECT_EQ(audit[0]->name(), "reg1");
}

}  // namespace
}  // namespace rtcf::validate
