// Shared-memory ring transport tests (`ctest -L dataplane`): creation and
// attach validation, bidirectional framing, ring wrap-around, the
// torn-record close rule, and the bounded send stall on a full ring
// (docs/DATAPLANE.md §5 is the normative region layout under test).
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <string>

#include "comm/channel.hpp"
#include "comm/shm_ring.hpp"

namespace rtcf::comm {
namespace {

/// A per-test region name: concurrent ctest runs must not collide.
std::string region_name(const char* tag) {
  return std::string("/rtcf-shm-test-") + tag + "." +
         std::to_string(::getpid());
}

Frame make_frame(std::uint16_t type, std::size_t payload_bytes) {
  Frame frame;
  frame.type = type;
  frame.payload.resize(payload_bytes);
  for (std::size_t i = 0; i < payload_bytes; ++i) {
    frame.payload[i] = static_cast<std::uint8_t>((type + i) & 0xFF);
  }
  return frame;
}

/// Maps the raw region the way a second implementation would, so tests
/// can corrupt specific offsets of the normative layout.
struct RawRegion {
  explicit RawRegion(const std::string& name) {
    fd = ::shm_open(name.c_str(), O_RDWR, 0);
    if (fd < 0) return;
    const ::off_t end = ::lseek(fd, 0, SEEK_END);
    if (end > 0) {
      bytes = static_cast<std::size_t>(end);
      base = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd,
                    0);
      if (base == MAP_FAILED) base = nullptr;
    }
  }
  ~RawRegion() {
    if (base != nullptr) ::munmap(base, bytes);
    if (fd >= 0) ::close(fd);
  }
  bool ok() const { return base != nullptr; }
  void store_u32(std::size_t offset, std::uint32_t value) {
    std::memcpy(static_cast<std::uint8_t*>(base) + offset, &value,
                sizeof(value));
  }

  int fd = -1;
  void* base = nullptr;
  std::size_t bytes = 0;
};

TEST(ShmRingTest, CreateAttachRoundTripsBothDirections) {
  const std::string name = region_name("roundtrip");
  auto creator = ShmRingChannel::create(name, 4096);
  ASSERT_NE(creator, nullptr);
  EXPECT_EQ(creator->capacity(), 4096u);
  EXPECT_EQ(creator->name(), name);
  auto attacher = ShmRingChannel::attach(name);
  ASSERT_NE(attacher, nullptr);
  EXPECT_EQ(attacher->capacity(), 4096u);

  // creator -> attacher, then the reverse ring: the two directions are
  // independent SPSC rings in the same region.
  Frame received;
  ASSERT_TRUE(creator->send(make_frame(7, 48)));
  ASSERT_TRUE(attacher->receive(received, rtsj::RelativeTime::zero()));
  EXPECT_EQ(received.type, 7u);
  EXPECT_EQ(received.payload, make_frame(7, 48).payload);

  ASSERT_TRUE(attacher->send(make_frame(9, 0)));
  ASSERT_TRUE(creator->receive(received, rtsj::RelativeTime::zero()));
  EXPECT_EQ(received.type, 9u);
  EXPECT_TRUE(received.payload.empty());

  // An empty ring is a clean timeout, not an error.
  EXPECT_FALSE(creator->receive(received, rtsj::RelativeTime::zero()));
  EXPECT_TRUE(creator->open());

  // close() is observed by both endpoints through the region header.
  attacher->close();
  EXPECT_FALSE(attacher->open());
  EXPECT_FALSE(creator->open());
  EXPECT_FALSE(creator->send(make_frame(1, 8)));
}

TEST(ShmRingTest, AttachFailsWithoutARegion) {
  EXPECT_EQ(ShmRingChannel::attach(region_name("absent")), nullptr);
}

TEST(ShmRingTest, CreateFailsWhenTheNameExists) {
  const std::string name = region_name("exclusive");
  auto first = ShmRingChannel::create(name, 4096);
  ASSERT_NE(first, nullptr);
  // O_EXCL: the second creator must lose the race, never truncate a live
  // region under its peer.
  EXPECT_EQ(ShmRingChannel::create(name, 4096), nullptr);
}

TEST(ShmRingTest, WrapAroundPreservesFraming) {
  // A small ring forces the byte stream to wrap many times; every record
  // must still come out intact and in order (records split across the
  // wrap point are the case under test).
  const std::string name = region_name("wrap");
  auto creator = ShmRingChannel::create(name, 256);
  ASSERT_NE(creator, nullptr);
  auto attacher = ShmRingChannel::attach(name);
  ASSERT_NE(attacher, nullptr);

  Frame received;
  for (std::uint16_t i = 0; i < 200; ++i) {
    const std::size_t payload_bytes = (i * 7) % 49;
    ASSERT_TRUE(creator->send(make_frame(i, payload_bytes))) << "frame " << i;
    ASSERT_TRUE(
        attacher->receive(received, rtsj::RelativeTime::milliseconds(100)))
        << "frame " << i;
    EXPECT_EQ(received.type, i);
    ASSERT_EQ(received.payload.size(), payload_bytes) << "frame " << i;
    EXPECT_EQ(received.payload, make_frame(i, payload_bytes).payload)
        << "frame " << i;
  }
}

TEST(ShmRingTest, TornRecordSizeClosesTheChannel) {
  const std::string name = region_name("torn");
  auto creator = ShmRingChannel::create(name, 4096);
  ASSERT_NE(creator, nullptr);
  auto attacher = ShmRingChannel::attach(name);
  ASSERT_NE(attacher, nullptr);
  ASSERT_TRUE(creator->send(make_frame(7, 32)));

  // Stomp the pending record's u32 length (ring 0's data starts at the
  // fixed header offset) with an implausible value: the reader must treat
  // the stream as unrecoverable and close, exactly like the TCP
  // transport's framing-violation rule.
  {
    RawRegion raw(name);
    ASSERT_TRUE(raw.ok());
    raw.store_u32(ShmRingChannel::kHeaderBytes, 0xFFFFFFF0u);
  }
  Frame received;
  EXPECT_FALSE(attacher->receive(received, rtsj::RelativeTime::zero()));
  EXPECT_FALSE(attacher->open());
  EXPECT_FALSE(creator->open()) << "the close is region-wide";
}

TEST(ShmRingTest, WrongLayoutVersionIsRejectedAtAttach) {
  const std::string name = region_name("layout");
  auto creator = ShmRingChannel::create(name, 4096);
  ASSERT_NE(creator, nullptr);
  {
    RawRegion raw(name);
    ASSERT_TRUE(raw.ok());
    raw.store_u32(8, ShmRingChannel::kLayoutVersion + 1);
  }
  EXPECT_EQ(ShmRingChannel::attach(name), nullptr);
}

TEST(ShmRingTest, FullRingSendFailsAfterTheStallBound) {
  // No reader ever drains: the ring fills, the sender spins out its
  // bounded stall, then fails and closes — a wedged co-located peer can
  // stall the executive for at most send_stall, never forever.
  const std::string name = region_name("stall");
  auto creator =
      ShmRingChannel::create(name, 128, rtsj::RelativeTime::milliseconds(20));
  ASSERT_NE(creator, nullptr);
  auto attacher = ShmRingChannel::attach(name);
  ASSERT_NE(attacher, nullptr);

  bool failed = false;
  for (int i = 0; i < 8 && !failed; ++i) {
    failed = !creator->send(make_frame(1, 24));
  }
  EXPECT_TRUE(failed) << "a 128-byte ring cannot absorb 8x32-byte records";
  EXPECT_FALSE(creator->open());
}

TEST(ShmRingTest, OversizeFrameIsRefused) {
  const std::string name = region_name("oversize");
  auto creator =
      ShmRingChannel::create(name, 128, rtsj::RelativeTime::milliseconds(20));
  ASSERT_NE(creator, nullptr);
  // A record larger than the whole ring can never fit; send must refuse
  // it without waiting for room that cannot appear.
  EXPECT_FALSE(creator->send(make_frame(1, 200)));
}

}  // namespace
}  // namespace rtcf::comm
