// The runtime-monitoring subsystem: lock-free telemetry histograms (area
// storage, concurrent exactness), stochastic contract checking (WCET /
// miss-ratio / arrival-rate windows), the overload governor's escalation
// policy, and the violation callback end-to-end through an assembled
// application with an overrunning component.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "model/views.hpp"
#include "monitor/contract.hpp"
#include "monitor/governor.hpp"
#include "monitor/runtime_monitor.hpp"
#include "monitor/telemetry.hpp"
#include "runtime/content_registry.hpp"
#include "runtime/launcher.hpp"
#include "rtsj/memory/memory_area.hpp"
#include "soleil/application.hpp"

namespace rtcf::monitor {
namespace {

using model::ActivationKind;
using model::Architecture;
using model::AreaType;
using model::Criticality;
using model::DomainType;
using model::TimingContract;

// ---- telemetry -----------------------------------------------------------

TEST(LatencyHistogramTest, BinsCoverTheFullRange) {
  EXPECT_EQ(LatencyHistogram::bin_index(0), 0u);
  EXPECT_EQ(LatencyHistogram::bin_index(1), 0u);
  EXPECT_EQ(LatencyHistogram::bin_index(2), 1u);
  EXPECT_EQ(LatencyHistogram::bin_index(3), 1u);
  EXPECT_EQ(LatencyHistogram::bin_index(1024), 10u);
  // The tail bin absorbs everything beyond 2^47 ns (~1.6 days).
  EXPECT_EQ(LatencyHistogram::bin_index(~std::uint64_t{0}),
            LatencyHistogram::kBins - 1);
  EXPECT_EQ(LatencyHistogram::bin_floor(10), 1024u);
}

// N writer threads hammer one histogram; every recorded sample must land
// in exactly one bin — exact totals, no bin loss. The record path is
// relaxed atomics only (no locks, no allocation), so this also serves as
// the ASan/UBSan stress for the monitoring hot path.
TEST(LatencyHistogramTest, ConcurrentRecordingLosesNothing) {
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 200'000;

  LatencyHistogram hist;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&hist, t] {
      // Deterministic per-thread pseudo-random walk over many decades.
      std::uint64_t x = 0x9e3779b97f4a7c15ull * (t + 1);
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        hist.record(x % 50'000'000);  // 0 .. 50 ms in ns
      }
    });
  }
  for (auto& w : writers) w.join();

  const std::uint64_t expected = kThreads * kPerThread;
  EXPECT_EQ(hist.count(), expected);
  std::uint64_t across_bins = 0;
  for (std::size_t b = 0; b < LatencyHistogram::kBins; ++b) {
    across_bins += hist.bin(b);
  }
  EXPECT_EQ(across_bins, expected) << "bin loss under concurrency";
  EXPECT_LE(hist.max_nanos(), 50'000'000u);
  EXPECT_GT(hist.percentile_upper_nanos(99), 0u);
}

TEST(TelemetryTest, StorageComesFromTheRtsjArea) {
  auto& immortal = rtsj::ImmortalMemory::instance();
  const std::size_t before = immortal.memory_consumed();
  auto* telemetry = immortal.make<ComponentTelemetry>("X");
  EXPECT_TRUE(immortal.contains(telemetry));
  EXPECT_GE(immortal.memory_consumed() - before, sizeof(ComponentTelemetry));
  telemetry->record_release(1'000, 2'000, 10, false);
  telemetry->record_release(3'000, 4'000, 20, true);
  EXPECT_EQ(telemetry->releases.load(), 2u);
  EXPECT_EQ(telemetry->deadline_misses.load(), 1u);
  EXPECT_EQ(telemetry->response_ns.count(), 2u);
}

// ---- contract monitor ----------------------------------------------------

TEST(ContractMonitorTest, WcetOverrunFiresImmediately) {
  TimingContract contract;
  contract.wcet_budget = rtsj::RelativeTime::microseconds(500);
  contract.window = 4;
  ContractMonitor monitor("C", contract);

  Violation out[2];
  WindowOutcome outcome = WindowOutcome::Open;
  EXPECT_EQ(monitor.record_execution(rtsj::RelativeTime::microseconds(400),
                                     false, out, &outcome),
            0);
  EXPECT_EQ(monitor.record_execution(rtsj::RelativeTime::microseconds(900),
                                     false, out, &outcome),
            1);
  EXPECT_EQ(out[0].kind, ViolationKind::WcetOverrun);
  EXPECT_STREQ(out[0].component, "C");
  EXPECT_DOUBLE_EQ(out[0].observed, 900.0);
  EXPECT_DOUBLE_EQ(out[0].bound, 500.0);
}

TEST(ContractMonitorTest, MissRatioEvaluatedAtWindowBoundary) {
  TimingContract contract;
  contract.miss_ratio_bound = 0.25;
  contract.window = 8;
  ContractMonitor monitor("C", contract);

  Violation out[2];
  WindowOutcome outcome = WindowOutcome::Open;
  // 3 misses in 8 releases -> ratio 0.375 > 0.25, reported exactly once,
  // when the 8th release closes the window.
  int fired_total = 0;
  for (int i = 0; i < 8; ++i) {
    const int fired = monitor.record_execution(
        rtsj::RelativeTime::microseconds(10), i < 3, out, &outcome);
    fired_total += fired;
    if (i < 7) {
      EXPECT_EQ(outcome, WindowOutcome::Open);
    }
  }
  EXPECT_EQ(fired_total, 1);
  EXPECT_EQ(outcome, WindowOutcome::Violated);
  EXPECT_EQ(out[0].kind, ViolationKind::MissRatio);
  EXPECT_DOUBLE_EQ(out[0].observed, 0.375);
  EXPECT_DOUBLE_EQ(out[0].bound, 0.25);

  // A clean window afterwards reports Clean and fires nothing.
  int fired_clean = 0;
  for (int i = 0; i < 8; ++i) {
    fired_clean += monitor.record_execution(
        rtsj::RelativeTime::microseconds(10), false, out, &outcome);
  }
  EXPECT_EQ(fired_clean, 0);
  EXPECT_EQ(outcome, WindowOutcome::Clean);
  EXPECT_EQ(monitor.windows_closed(), 2u);
}

TEST(ContractMonitorTest, ArrivalRateBound) {
  TimingContract contract;
  contract.max_arrival_rate_hz = 1000.0;  // at most one per millisecond
  contract.window = 8;
  ContractMonitor monitor("C", contract);

  // 10 kHz burst: 8 arrivals 100 us apart must trip the bound once the
  // window fills.
  Violation v{};
  bool fired = false;
  for (int i = 0; i < 16 && !fired; ++i) {
    fired = monitor.record_arrival(
        rtsj::AbsoluteTime::epoch() +
            rtsj::RelativeTime::microseconds(100 * i),
        &v);
  }
  ASSERT_TRUE(fired);
  EXPECT_EQ(v.kind, ViolationKind::ArrivalRate);
  EXPECT_GT(v.observed, 1000.0);

  // Arrivals at 100 Hz never violate.
  ContractMonitor slow("S", contract);
  for (int i = 0; i < 64; ++i) {
    EXPECT_FALSE(slow.record_arrival(
        rtsj::AbsoluteTime::epoch() + rtsj::RelativeTime::milliseconds(10 * i),
        &v));
  }
}

// ---- governor ------------------------------------------------------------

TEST(OverloadGovernorTest, EscalatesOnSustainedViolationOnly) {
  OverloadGovernor::Options options;
  options.sustain_windows = 2;
  OverloadGovernor governor(options);
  const auto low = governor.add_component("low", Criticality::Low);
  const auto high = governor.add_component("high", Criticality::High);

  EXPECT_EQ(governor.level(), GovernorLevel::Normal);
  governor.on_window_violated(high);
  EXPECT_EQ(governor.level(), GovernorLevel::Normal) << "one window is noise";
  governor.on_window_clean(high);
  governor.on_window_violated(high);
  EXPECT_EQ(governor.level(), GovernorLevel::Normal)
      << "clean window resets the streak";

  governor.on_window_violated(high);
  governor.on_window_violated(high);
  EXPECT_EQ(governor.level(), GovernorLevel::RateLimit);
  // High-criticality components are never degraded, whatever the level.
  EXPECT_EQ(governor.admit_release(high), OverloadGovernor::Admission::Run);

  // Low components run one release in rate_limit_divisor while limited.
  int admitted = 0;
  for (int i = 0; i < 10; ++i) {
    if (governor.admit_release(low) == OverloadGovernor::Admission::Run) {
      ++admitted;
    }
  }
  EXPECT_EQ(admitted, 5);

  governor.on_window_violated(high);
  governor.on_window_violated(high);
  EXPECT_EQ(governor.level(), GovernorLevel::Shed);
  EXPECT_EQ(governor.admit_release(low), OverloadGovernor::Admission::Shed);
  EXPECT_EQ(governor.admit_release(high), OverloadGovernor::Admission::Run);

  const auto decisions = governor.decisions();
  ASSERT_EQ(decisions.size(), 2u);
  EXPECT_EQ(decisions[0].level, GovernorLevel::RateLimit);
  EXPECT_EQ(decisions[1].level, GovernorLevel::Shed);
  EXPECT_STREQ(decisions[0].trigger, "high");
}

TEST(OverloadGovernorTest, RecoversWhenTheViolatorGoesClean) {
  OverloadGovernor::Options options;
  options.sustain_windows = 1;
  options.clear_windows = 2;
  OverloadGovernor governor(options);
  const auto noisy = governor.add_component("noisy", Criticality::High);
  const auto bystander = governor.add_component("quiet", Criticality::High);

  governor.on_window_violated(noisy);
  EXPECT_EQ(governor.level(), GovernorLevel::RateLimit);

  // Clean windows from components that never violated do not de-escalate.
  for (int i = 0; i < 8; ++i) governor.on_window_clean(bystander);
  EXPECT_EQ(governor.level(), GovernorLevel::RateLimit);

  governor.on_window_clean(noisy);
  EXPECT_EQ(governor.level(), GovernorLevel::RateLimit);
  governor.on_window_clean(noisy);
  EXPECT_EQ(governor.level(), GovernorLevel::Normal);
}

// ---- violation callback through a real assembly --------------------------

/// Content that busy-spins a configurable duration per release — the
/// injected overrunner.
class OverrunContent final : public comm::Content {
 public:
  static std::int64_t spin_micros;
  void on_release() override {
    const auto& clock = rtsj::SteadyClock::instance();
    const auto until =
        clock.now() + rtsj::RelativeTime::microseconds(spin_micros);
    while (clock.now() < until) {
    }
  }
};
std::int64_t OverrunContent::spin_micros = 0;

RTCF_REGISTER_CONTENT(OverrunContent)

struct CapturedViolation {
  std::string component;
  ViolationKind kind{};
  double observed = 0.0;
  double bound = 0.0;
};

TEST(RuntimeMonitorTest, ViolationCallbackFiresWithComponentAndRatio) {
  // One periodic component whose content overruns both its WCET budget and
  // its deadline on every release.
  Architecture arch;
  auto& hog = arch.add_active("Hog", ActivationKind::Periodic,
                              rtsj::RelativeTime::milliseconds(2));
  hog.set_content_class("OverrunContent");
  hog.set_criticality(Criticality::High);
  TimingContract contract;
  contract.wcet_budget = rtsj::RelativeTime::microseconds(500);
  contract.miss_ratio_bound = 0.5;
  contract.window = 4;
  hog.set_timing_contract(contract);
  auto& domain = arch.add_thread_domain("D", DomainType::Realtime, 20);
  arch.add_child(domain, hog);
  auto& area = arch.add_memory_area("M", AreaType::Immortal, 0);
  arch.add_child(area, domain);

  OverrunContent::spin_micros = 3000;  // 3 ms > 2 ms period > 500 us budget
  auto app = soleil::build_application(arch, soleil::Mode::Soleil);

  std::vector<CapturedViolation> captured;
  app->monitor().set_violation_callback(
      [](void* arg, const Violation& v) {
        auto* sink = static_cast<std::vector<CapturedViolation>*>(arg);
        sink->push_back(
            CapturedViolation{v.component, v.kind, v.observed, v.bound});
      },
      &captured);

  app->start();
  runtime::Launcher launcher(*app);
  runtime::Launcher::Options options;
  options.duration = rtsj::RelativeTime::milliseconds(40);
  launcher.run(options);
  app->stop();
  OverrunContent::spin_micros = 0;

  ASSERT_GE(launcher.stats("Hog").releases, 8u);
  ASSERT_FALSE(captured.empty());
  bool saw_overrun = false;
  bool saw_ratio = false;
  for (const auto& v : captured) {
    EXPECT_EQ(v.component, "Hog");
    if (v.kind == ViolationKind::WcetOverrun) {
      saw_overrun = true;
      EXPECT_GE(v.observed, 3000.0);  // at least the spin, in us
      EXPECT_DOUBLE_EQ(v.bound, 500.0);
    }
    if (v.kind == ViolationKind::MissRatio) {
      saw_ratio = true;
      // Every release overruns a 2 ms period by construction.
      EXPECT_DOUBLE_EQ(v.observed, 1.0);
      EXPECT_DOUBLE_EQ(v.bound, 0.5);
    }
  }
  EXPECT_TRUE(saw_overrun);
  EXPECT_TRUE(saw_ratio);

  // Sustained violation escalated the governor even though nothing could
  // be shed (the only component is high-criticality).
  EXPECT_NE(app->monitor().governor().level(), GovernorLevel::Normal);
  // Telemetry counted every violation and kept its storage in the area.
  const auto* entry = app->monitor().find("Hog");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->telemetry->contract_violations.load(), captured.size());
  EXPECT_TRUE(app->plan().find_component("Hog")->area->contains(
      entry->telemetry));
}

}  // namespace
}  // namespace rtcf::monitor
