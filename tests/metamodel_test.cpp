// The component metamodel (Fig. 2): hierarchy, sharing, queries, views.
#include <gtest/gtest.h>

#include "model/views.hpp"

namespace rtcf::model {
namespace {

TEST(MetamodelTest, ComponentKindsAndFactories) {
  Architecture arch;
  auto& a = arch.add_active("A", ActivationKind::Periodic,
                            rtsj::RelativeTime::milliseconds(1));
  auto& p = arch.add_passive("P");
  auto& d = arch.add_thread_domain("D", DomainType::Realtime, 20);
  auto& m = arch.add_memory_area("M", AreaType::Scoped, 1024);
  EXPECT_EQ(a.kind(), ComponentKind::Active);
  EXPECT_EQ(p.kind(), ComponentKind::Passive);
  EXPECT_EQ(d.kind(), ComponentKind::ThreadDomain);
  EXPECT_EQ(m.kind(), ComponentKind::MemoryArea);
  EXPECT_TRUE(a.is_functional());
  EXPECT_TRUE(p.is_functional());
  EXPECT_FALSE(d.is_functional());
  EXPECT_FALSE(m.is_functional());
  EXPECT_EQ(arch.components().size(), 4u);
}

TEST(MetamodelTest, DuplicateNamesRejected) {
  Architecture arch;
  arch.add_passive("X");
  EXPECT_THROW(arch.add_passive("X"), std::invalid_argument);
  EXPECT_THROW(arch.add_thread_domain("X", DomainType::Regular, 5),
               std::invalid_argument);
}

TEST(MetamodelTest, SharingGivesMultipleSupers) {
  Architecture arch;
  auto& shared = arch.add_passive("Shared");
  auto& area1 = arch.add_memory_area("A1", AreaType::Immortal, 0);
  auto& area2 = arch.add_memory_area("A2", AreaType::Scoped, 1024);
  arch.add_child(area1, shared);
  arch.add_child(area2, shared);
  EXPECT_EQ(shared.supers().size(), 2u);
  EXPECT_TRUE(shared.has_ancestor(&area1));
  EXPECT_TRUE(shared.has_ancestor(&area2));
  // memory_areas_of sees both (sharing), innermost-first order by BFS.
  EXPECT_EQ(arch.memory_areas_of(shared).size(), 2u);
}

TEST(MetamodelTest, ContainmentCyclesRejected) {
  Architecture arch;
  auto& a = arch.add_memory_area("A", AreaType::Scoped, 1024);
  auto& b = arch.add_memory_area("B", AreaType::Scoped, 1024);
  arch.add_child(a, b);
  EXPECT_THROW(arch.add_child(b, a), std::invalid_argument);
  EXPECT_THROW(arch.add_child(a, a), std::invalid_argument);
  // Idempotent re-add is fine.
  EXPECT_NO_THROW(arch.add_child(a, b));
  EXPECT_EQ(a.subs().size(), 1u);
}

TEST(MetamodelTest, InterfaceDeclarationAndLookup) {
  Architecture arch;
  auto& a = arch.add_active("A", ActivationKind::Sporadic);
  a.add_interface({"in", InterfaceRole::Server, "I"});
  a.add_interface({"out", InterfaceRole::Client, "J"});
  EXPECT_THROW(a.add_interface({"in", InterfaceRole::Client, "K"}),
               std::invalid_argument);
  ASSERT_NE(a.find_interface("out"), nullptr);
  EXPECT_EQ(a.find_interface("out")->signature, "J");
  EXPECT_EQ(a.find_interface("zzz"), nullptr);
}

TEST(MetamodelTest, TransitiveDomainAndAreaQueries) {
  Architecture arch;
  auto& a = arch.add_active("A", ActivationKind::Sporadic);
  auto& d = arch.add_thread_domain("D", DomainType::Realtime, 20);
  auto& inner = arch.add_memory_area("Inner", AreaType::Scoped, 1024);
  auto& outer = arch.add_memory_area("Outer", AreaType::Scoped, 4096);
  arch.add_child(d, a);
  arch.add_child(inner, d);
  arch.add_child(outer, inner);
  EXPECT_EQ(arch.thread_domain_of(a), &d);
  // A's innermost area is Inner (via the domain), with Outer above it.
  EXPECT_EQ(arch.memory_area_of(a), &inner);
  const auto all = arch.memory_areas_of(a);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0], &inner);
  EXPECT_EQ(all[1], &outer);
  // Roots: only Outer has no supers.
  const auto roots = arch.roots();
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0], &outer);
}

TEST(MetamodelTest, FindAsChecksType) {
  Architecture arch;
  arch.add_passive("P");
  EXPECT_NE(arch.find_as<PassiveComponent>("P"), nullptr);
  EXPECT_EQ(arch.find_as<ActiveComponent>("P"), nullptr);
  EXPECT_EQ(arch.find("missing"), nullptr);
}

TEST(ViewsTest, PhasesOnlyExposeTheirOperations) {
  // Compile-time property of the facades; here we exercise the flow end to
  // end and confirm the merged result.
  Architecture arch;
  BusinessView business(arch);
  auto& producer = business.active("Producer", ActivationKind::Periodic,
                                   rtsj::RelativeTime::milliseconds(2));
  auto& sink = business.passive("Sink");
  business.client_port(producer, "out", "IData");
  business.server_port(sink, "in", "IData");
  business.bind_sync("Producer", "out", "Sink", "in");

  ThreadManagementView threads(arch);
  auto& domain = threads.domain("D", DomainType::Realtime, 20);
  threads.deploy(domain, producer);

  MemoryManagementView memory(arch);
  auto& imm = memory.area("Imm", AreaType::Immortal, 0);
  memory.deploy(imm, domain);
  memory.deploy(imm, sink);

  EXPECT_EQ(arch.thread_domain_of(producer), &domain);
  EXPECT_EQ(arch.memory_area_of(producer), &imm);
  EXPECT_EQ(arch.memory_area_of(sink), &imm);
  ASSERT_EQ(arch.bindings().size(), 1u);
  EXPECT_EQ(arch.bindings()[0].desc.protocol, Protocol::Synchronous);
}

TEST(MetamodelTest, EnumToStringCoverage) {
  EXPECT_STREQ(to_string(ComponentKind::Active), "ActiveComponent");
  EXPECT_STREQ(to_string(ActivationKind::Periodic), "periodic");
  EXPECT_STREQ(to_string(InterfaceRole::Client), "client");
  EXPECT_STREQ(to_string(Protocol::Asynchronous), "asynchronous");
  EXPECT_STREQ(to_string(DomainType::NoHeapRealtime), "NHRT");
  EXPECT_STREQ(to_string(AreaType::Scoped), "scope");
}

}  // namespace
}  // namespace rtcf::model
