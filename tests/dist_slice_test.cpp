// Node slicing and the DIST-* rules: gateway synthesis, hierarchy
// preservation, mode filtering, cut violations (`ctest -L dist`).
#include <gtest/gtest.h>

#include "dist/gateway.hpp"
#include "dist/slice.hpp"
#include "soleil/plan.hpp"
#include "validate/distribution.hpp"
#include "validate/validator.hpp"

namespace rtcf::dist {
namespace {

using model::ActivationKind;
using model::Architecture;
using model::Binding;
using model::Criticality;
using model::DomainType;
using model::InterfaceRole;
using model::Protocol;
using validate::NodeMap;

NodeMap two_node_map() {
  NodeMap map;
  map.nodes = {"alpha", "beta"};
  map.assignment = {{"Producer", "alpha"}, {"Relay", "alpha"},
                    {"Sink", "beta"}};
  return map;
}

/// Producer@alpha --async--> Sink@beta, plus a local sync helper on alpha.
Architecture two_node_arch() {
  Architecture arch;
  auto& producer = arch.add_active("Producer", ActivationKind::Periodic,
                                   rtsj::RelativeTime::milliseconds(5));
  producer.set_content_class("ProducerImpl");
  producer.set_cost(rtsj::RelativeTime::microseconds(50));
  producer.set_swappable(true);
  producer.add_interface({"out", InterfaceRole::Client, "ISink"});
  producer.add_interface({"relay", InterfaceRole::Client, "IRelay"});

  auto& relay = arch.add_passive("Relay");
  relay.set_content_class("RelayImpl");
  relay.add_interface({"relay", InterfaceRole::Server, "IRelay"});

  auto& sink = arch.add_active("Sink", ActivationKind::Sporadic);
  sink.set_content_class("SinkImpl");
  sink.set_criticality(Criticality::Low);
  sink.set_swappable(true);
  sink.add_interface({"in", InterfaceRole::Server, "ISink"});

  Binding bridge;
  bridge.client = {"Producer", "out"};
  bridge.server = {"Sink", "in"};
  bridge.desc.protocol = Protocol::Asynchronous;
  bridge.desc.buffer_size = 16;
  arch.add_binding(bridge);

  Binding local;
  local.client = {"Producer", "relay"};
  local.server = {"Relay", "relay"};
  local.desc.protocol = Protocol::Synchronous;
  arch.add_binding(local);

  auto& rt = arch.add_thread_domain("RT_A", DomainType::Realtime, 20);
  arch.add_child(rt, producer);
  auto& reg = arch.add_thread_domain("reg_B", DomainType::Regular, 5);
  arch.add_child(reg, sink);

  model::ModeDecl normal;
  normal.name = "Normal";
  normal.components.push_back({"Producer", rtsj::RelativeTime::zero(), {}});
  normal.components.push_back({"Sink", rtsj::RelativeTime::zero(), {}});
  arch.add_mode(std::move(normal));
  model::ModeDecl degraded;
  degraded.name = "Degraded";
  degraded.degraded = true;
  degraded.components.push_back(
      {"Producer", rtsj::RelativeTime::milliseconds(20), {}});
  arch.add_mode(std::move(degraded));
  return arch;
}

TEST(DistRulesTest, CleanCutValidates) {
  const Architecture arch = two_node_arch();
  const auto plan = soleil::snapshot_assembly(arch, 1);
  const auto report = validate_distribution(plan, two_node_map());
  EXPECT_TRUE(report.ok()) << report.to_string();
  // The bridged binding is reported informationally.
  EXPECT_TRUE(report.has_rule("DIST-ASYNC-BRIDGED"));
}

TEST(DistRulesTest, UnmappedAndUnknownNodesAreErrors) {
  const Architecture arch = two_node_arch();
  const auto plan = soleil::snapshot_assembly(arch, 1);
  NodeMap map = two_node_map();
  map.assignment.erase("Relay");              // unmapped
  map.assignment["Sink"] = "gamma";           // undeclared node
  const auto report = validate_distribution(plan, map);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.by_rule("DIST-NODE-UNKNOWN").size(), 2u);
}

TEST(DistRulesTest, SyncBindingsMustNotCrossNodes) {
  const Architecture arch = two_node_arch();
  const auto plan = soleil::snapshot_assembly(arch, 1);
  NodeMap map = two_node_map();
  map.assignment["Relay"] = "beta";  // Producer -> Relay is synchronous
  const auto report = validate_distribution(plan, map);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has_rule("DIST-SYNC-CROSS-NODE"));
}

TEST(DistRulesTest, CompositesMustNotSpanNodes) {
  Architecture arch = two_node_arch();
  // Tear a domain apart: move Sink into Producer's domain.
  auto* rt = arch.find_as<model::ThreadDomain>("RT_A");
  auto* sink = arch.find("Sink");
  ASSERT_NE(rt, nullptr);
  ASSERT_NE(sink, nullptr);
  arch.add_child(*rt, *sink);
  const auto plan = soleil::snapshot_assembly(arch, 1);
  const auto report = validate_distribution(plan, two_node_map());
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has_rule("DIST-DOMAIN-SPAN"));
}

TEST(DistRulesTest, CrossNodeModeRebindIsRejected) {
  Architecture arch = two_node_arch();
  model::ModeDecl weird;
  weird.name = "Weird";
  weird.components.push_back({"Producer", rtsj::RelativeTime::zero(), {}});
  weird.rebinds.push_back({"Producer", "out", "Sink"});
  arch.add_mode(std::move(weird));
  const auto plan = soleil::snapshot_assembly(arch, 1);
  const auto report = validate_distribution(plan, two_node_map());
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has_rule("DIST-REBIND-CROSS-NODE"));
}

TEST(SliceTest, ClientSideGetsAnExitGateway) {
  const Architecture arch = two_node_arch();
  const Architecture slice = slice_architecture(arch, two_node_map(), "alpha");

  EXPECT_NE(slice.find("Producer"), nullptr);
  EXPECT_NE(slice.find("Relay"), nullptr);
  EXPECT_EQ(slice.find("Sink"), nullptr);

  const std::string exit_name = gateway_exit_name("Producer", "out");
  const auto* exit = slice.find_as<model::ActiveComponent>(exit_name);
  ASSERT_NE(exit, nullptr);
  EXPECT_EQ(exit->activation(), ActivationKind::Sporadic);
  EXPECT_EQ(exit->content_class(), kGatewayExitClass);
  EXPECT_TRUE(exit->swappable());
  const auto* itf = exit->find_interface("in");
  ASSERT_NE(itf, nullptr);
  EXPECT_EQ(itf->signature, "ISink");

  // The bridge half re-targets the client port locally.
  bool rewired = false;
  for (const Binding& b : slice.bindings()) {
    if (b.client.component == "Producer" && b.client.interface == "out") {
      EXPECT_EQ(b.server.component, exit_name);
      EXPECT_EQ(b.desc.buffer_size, 16u);
      rewired = true;
    }
  }
  EXPECT_TRUE(rewired);

  // The synthesized deployment exists and the slice passes the full rule
  // engine on its own.
  EXPECT_NE(slice.find(kGatewayArea), nullptr);
  EXPECT_NE(slice.find(kGatewayDomain), nullptr);
  const auto report = validate::validate(slice);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(SliceTest, ServerSideGetsAnEntryGateway) {
  const Architecture arch = two_node_arch();
  const Architecture slice = slice_architecture(arch, two_node_map(), "beta");

  EXPECT_NE(slice.find("Sink"), nullptr);
  EXPECT_EQ(slice.find("Producer"), nullptr);

  const std::string entry_name = gateway_entry_name("Producer", "out");
  const auto* entry = slice.find_as<model::PassiveComponent>(entry_name);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->content_class(), kGatewayEntryClass);
  const auto* itf = entry->find_interface("out");
  ASSERT_NE(itf, nullptr);
  EXPECT_EQ(itf->role, InterfaceRole::Client);

  bool wired = false;
  for (const Binding& b : slice.bindings()) {
    if (b.client.component == entry_name) {
      EXPECT_EQ(b.server.component, "Sink");
      EXPECT_EQ(b.desc.protocol, Protocol::Asynchronous);
      wired = true;
    }
  }
  EXPECT_TRUE(wired);
  const auto report = validate::validate(slice);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(SliceTest, ModesAreFilteredPerNodeButKeepEveryName) {
  const Architecture arch = two_node_arch();
  const Architecture alpha = slice_architecture(arch, two_node_map(), "alpha");
  const Architecture beta = slice_architecture(arch, two_node_map(), "beta");

  ASSERT_EQ(alpha.modes().size(), 2u);
  ASSERT_EQ(beta.modes().size(), 2u);
  const auto* alpha_degraded = alpha.find_mode("Degraded");
  const auto* beta_degraded = beta.find_mode("Degraded");
  ASSERT_NE(alpha_degraded, nullptr);
  ASSERT_NE(beta_degraded, nullptr);
  EXPECT_EQ(alpha_degraded->components.size(), 1u);
  // A cluster demotion shuts down everything beta manages: the degraded
  // mode exists there with an empty local component set.
  EXPECT_TRUE(beta_degraded->components.empty());
  EXPECT_TRUE(beta_degraded->degraded);
}

TEST(SliceTest, SlicingIsDeterministic) {
  const Architecture arch = two_node_arch();
  const auto a = soleil::snapshot_assembly(
      slice_architecture(arch, two_node_map(), "alpha"), 1);
  const auto b = soleil::snapshot_assembly(
      slice_architecture(arch, two_node_map(), "alpha"), 1);
  EXPECT_TRUE(a == b);
}

TEST(SliceTest, RoutesEnumerateTheCut) {
  const Architecture arch = two_node_arch();
  const auto routes = compute_routes(arch, two_node_map());
  ASSERT_EQ(routes.size(), 1u);
  EXPECT_EQ(routes[0].client, "Producer");
  EXPECT_EQ(routes[0].port, "out");
  EXPECT_EQ(routes[0].client_node, "alpha");
  EXPECT_EQ(routes[0].server, "Sink");
  EXPECT_EQ(routes[0].iface, "in");
  EXPECT_EQ(routes[0].server_node, "beta");
}

}  // namespace
}  // namespace rtcf::dist
