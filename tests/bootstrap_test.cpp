// The bootstrap API behind generated code: executing the Fig. 4 bootstrap
// sequence exactly as the CodeEmitter emits it (§3.3 initialization
// procedures), plus the ordering contract.
#include <gtest/gtest.h>

#include "scenario/production_scenario.hpp"
#include "soleil/bootstrap_api.hpp"
#include "soleil/code_emitter.hpp"

namespace rtcf::soleil {
namespace {

/// Replays the statements that gen/Bootstrap.cpp (MERGE_ALL flavour)
/// contains for the Fig. 4 architecture — the same calls, hand-transcribed.
void replay_generated_bootstrap(BootstrapContext& bootstrap) {
  bootstrap.use_immortal("Imm1");
  bootstrap.create_scope("cscope", 28 * 1024);
  bootstrap.use_heap("H1");
  bootstrap.create_domain("NHRT1", "NHRT", 30);
  bootstrap.create_domain("NHRT2", "NHRT", 25);
  bootstrap.create_domain("reg1", "Regular", 5);
  bootstrap.create_thread("ProductionLine", "NHRT1");
  bootstrap.create_thread("MonitoringSystem", "NHRT2");
  bootstrap.create_thread("AuditLog", "reg1");
  bootstrap.create_content("ProductionLine", "ProductionLineImpl", "Imm1");
  bootstrap.create_content("MonitoringSystem", "MonitoringSystemImpl",
                           "Imm1");
  bootstrap.create_content("Console", "ConsoleImpl", "S1");
  bootstrap.create_content("AuditLog", "AuditLogImpl", "H1");
}

TEST(BootstrapTest, ReplaysTheGeneratedSequence) {
  const auto arch = scenario::make_production_architecture();
  BootstrapContext bootstrap(arch);
  replay_generated_bootstrap(bootstrap);

  // Wiring phase: buffers and patterns as the membranes request them.
  auto& monitor_buffer = bootstrap.make_buffer("MonitoringSystem", 10);
  EXPECT_EQ(&monitor_buffer.area(), &rtsj::ImmortalMemory::instance());
  auto& audit_buffer = bootstrap.make_buffer("AuditLog", 10);
  EXPECT_EQ(&audit_buffer.area(), &rtsj::ImmortalMemory::instance())
      << "heap consumers get immortal buffers (NHRT-safe default)";
  auto pattern = bootstrap.make_pattern("scope-enter", "Console");
  EXPECT_EQ(pattern.op(), membrane::PatternOp::ScopeEnter);

  bootstrap.start_all();
  EXPECT_TRUE(bootstrap.started());

  // The bootstrapped pieces are live: contents exist in the right areas,
  // the sync entry reaches the console.
  EXPECT_TRUE(rtsj::ImmortalMemory::instance().contains(
      bootstrap.content("ProductionLine")));
  comm::Message alarm;
  alarm.type_id = scenario::kAlarmType;
  alarm.store(scenario::Alarm{0.99, 1});
  const auto ack = pattern.call(*bootstrap.server_entry("Console"), alarm);
  EXPECT_EQ(ack.type_id, scenario::kAckType);

  // The audit trail of operations is complete and ordered.
  const auto& log = bootstrap.log();
  ASSERT_GE(log.size(), 12u);
  EXPECT_EQ(log.front(), "use_immortal Imm1");
  EXPECT_EQ(log.back(), "start_all");
}

TEST(BootstrapTest, OrderingContractIsEnforced) {
  const auto arch = scenario::make_production_architecture();
  {
    BootstrapContext bootstrap(arch);
    bootstrap.create_domain("NHRT1", "NHRT", 30);
    // Areas after domains: out of order.
    EXPECT_THROW(bootstrap.use_immortal("Imm1"), BootstrapError);
  }
  {
    BootstrapContext bootstrap(arch);
    // Threads before their domain is declared.
    EXPECT_THROW(bootstrap.create_thread("ProductionLine", "NHRT1"),
                 BootstrapError);
  }
  {
    BootstrapContext bootstrap(arch);
    // Wiring before contents exist.
    EXPECT_THROW((void)bootstrap.server_entry("Console"), BootstrapError);
    EXPECT_THROW((void)bootstrap.content("Console"), BootstrapError);
  }
}

TEST(BootstrapTest, RejectsArchitectureMismatches) {
  const auto arch = scenario::make_production_architecture();
  BootstrapContext bootstrap(arch);
  EXPECT_THROW(bootstrap.use_immortal("NoSuchArea"), BootstrapError);
  EXPECT_THROW(bootstrap.create_scope("ghost-scope", 1024), BootstrapError);
  EXPECT_THROW(bootstrap.create_domain("NHRT1", "NHRT", 99),
               BootstrapError)
      << "descriptor drift between generated code and architecture";
  EXPECT_THROW(bootstrap.create_domain("NHRT1", "Regular", 30),
               BootstrapError);
}

TEST(BootstrapTest, EmittedBootstrapNamesOnlyValidOperations) {
  // Cross-check: every bootstrap.<op> call the emitter writes is part of
  // the BootstrapContext API exercised above.
  const auto arch = scenario::make_production_architecture();
  const auto code = emit_infrastructure(arch, Mode::MergeAll);
  const auto* bootstrap_file = code.find("gen/Bootstrap.cpp");
  ASSERT_NE(bootstrap_file, nullptr);
  const std::string& text = bootstrap_file->contents;
  for (const char* op :
       {"bootstrap.use_immortal", "bootstrap.create_scope",
        "bootstrap.use_heap", "bootstrap.create_domain",
        "bootstrap.create_thread", "bootstrap.create_content",
        "bootstrap.start_all"}) {
    EXPECT_NE(text.find(op), std::string::npos) << op;
  }
}

}  // namespace
}  // namespace rtcf::soleil
