// Full-flow integration: ADL text -> validation -> generation (each mode)
// -> wall-clock execution -> introspection, i.e. the complete Fig. 3 +
// Fig. 5 pipeline in one test, plus cross-cutting consistency checks.
#include <gtest/gtest.h>

#include "adl/loader.hpp"
#include "runtime/launcher.hpp"
#include "scenario/production_scenario.hpp"
#include "sim/architecture_sim.hpp"
#include "soleil/application.hpp"
#include "soleil/code_emitter.hpp"
#include "validate/validator.hpp"

namespace rtcf {
namespace {

using soleil::Mode;

TEST(IntegrationTest, AdlToExecutionAcrossAllModes) {
  // 1. Parse the paper's Fig. 4 description.
  auto arch = adl::load_architecture(scenario::production_adl());
  // 2. Validate (design-time feedback loop).
  const auto report = validate::validate(arch);
  ASSERT_TRUE(report.ok()) << report.to_string();
  // 3. Generate + execute in every mode; 4. compare counters.
  scenario::ScenarioCounters reference;
  bool first = true;
  for (const Mode mode : {Mode::Soleil, Mode::MergeAll, Mode::UltraMerge}) {
    auto app = soleil::build_application(arch, mode);
    app->start();
    for (int i = 0; i < 500; ++i) app->iterate("ProductionLine");
    const auto counters = scenario::collect_counters(*app);
    if (first) {
      reference = counters;
      first = false;
      EXPECT_EQ(counters.produced, 500u);
      EXPECT_GT(counters.anomalies, 0u);
    } else {
      EXPECT_EQ(counters, reference) << soleil::to_string(mode);
    }
    app->stop();
  }
}

TEST(IntegrationTest, WallClockLaunchOfAdlArchitecture) {
  auto arch = adl::load_architecture(scenario::production_adl());
  auto app = soleil::build_application(arch, Mode::Soleil);
  app->start();
  runtime::Launcher launcher(*app);
  runtime::Launcher::Options options;
  options.duration = rtsj::RelativeTime::milliseconds(60);
  launcher.run(options);
  const auto& stats = launcher.stats("ProductionLine");
  EXPECT_GE(stats.releases, 3u);
  EXPECT_EQ(scenario::collect_counters(*app).processed, stats.releases);
  app->stop();
}

TEST(IntegrationTest, SimAndRuntimeAgreeOnPipelineFanout) {
  // The discrete-event mapping and the runtime assembly must express the
  // same pipeline: one PL release -> one MS release -> one audit record.
  const auto arch = scenario::make_production_architecture();

  sim::PreemptiveScheduler sched;
  const auto mapping = sim::map_architecture(arch, sched);
  sched.run_until(rtsj::AbsoluteTime::epoch() +
                  rtsj::RelativeTime::milliseconds(500));
  const auto pl = sched.stats(mapping.task("ProductionLine")).releases_completed;
  const auto ms =
      sched.stats(mapping.task("MonitoringSystem")).releases_completed;
  const auto audit = sched.stats(mapping.task("AuditLog")).releases_completed;
  EXPECT_EQ(pl, ms);
  EXPECT_EQ(ms, audit);

  auto app = soleil::build_application(arch, Mode::MergeAll);
  app->start();
  for (std::uint64_t i = 0; i < pl; ++i) app->iterate("ProductionLine");
  const auto counters = scenario::collect_counters(*app);
  EXPECT_EQ(counters.produced, pl);
  EXPECT_EQ(counters.processed, ms);
  EXPECT_EQ(counters.audit_records, audit);
}

TEST(IntegrationTest, EmittedCodeAgreesWithRuntimePlan) {
  // The source emitter and the runtime assembly resolve patterns through
  // the same shared function; spot-check they agree on the Fig. 4 bindings.
  const auto arch = scenario::make_production_architecture();
  auto app = soleil::build_application(arch, Mode::Soleil);
  const auto code = soleil::emit_infrastructure(arch, Mode::Soleil);
  const auto* ms_membrane = code.find("gen/MonitoringSystemMembrane.hpp");
  ASSERT_NE(ms_membrane, nullptr);
  for (const auto& pb : app->plan().bindings) {
    if (pb.client->name() != "MonitoringSystem") continue;
    const std::string needle =
        std::string("pattern=") + membrane::to_string(pb.op);
    EXPECT_NE(ms_membrane->contents.find(needle), std::string::npos)
        << "emitted code must name the planned pattern " << needle;
  }
}

TEST(IntegrationTest, ThreadReleaseCountsMatchActivations) {
  const auto arch = scenario::make_production_architecture();
  auto app = soleil::build_application(arch, Mode::Soleil);
  app->start();
  constexpr int kIterations = 100;
  for (int i = 0; i < kIterations; ++i) app->iterate("ProductionLine");
  // Every component's logical thread saw exactly one release per
  // transaction (run-to-completion, no lost or duplicated activations).
  EXPECT_EQ(app->thread_of("ProductionLine")->release_count(),
            static_cast<std::uint64_t>(kIterations));
  EXPECT_EQ(app->thread_of("MonitoringSystem")->release_count(),
            static_cast<std::uint64_t>(kIterations));
  EXPECT_EQ(app->thread_of("AuditLog")->release_count(),
            static_cast<std::uint64_t>(kIterations));
  // Buffer accounting: both async buffers moved one message per iteration.
  for (const auto& buffer : app->buffers()) {
    EXPECT_EQ(buffer->enqueued_total(),
              static_cast<std::uint64_t>(kIterations));
    EXPECT_EQ(buffer->dropped_total(), 0u);
    EXPECT_TRUE(buffer->empty());
  }
  app->stop();
}

TEST(IntegrationTest, ScopeConsumptionIsSteadyAcrossIterations) {
  // RTSJ discipline: steady-state operation must not grow any region
  // (no per-iteration allocation in immortal or the console scope).
  const auto arch = scenario::make_production_architecture();
  auto app = soleil::build_application(arch, Mode::Soleil);
  app->start();
  app->iterate("ProductionLine");
  const auto immortal_after_first =
      rtsj::ImmortalMemory::instance().memory_consumed();
  const auto scope_after_first =
      app->environment().scopes()[0]->memory_consumed();
  for (int i = 0; i < 1000; ++i) app->iterate("ProductionLine");
  EXPECT_EQ(rtsj::ImmortalMemory::instance().memory_consumed(),
            immortal_after_first)
      << "immortal memory must not grow at steady state";
  EXPECT_EQ(app->environment().scopes()[0]->memory_consumed(),
            scope_after_first)
      << "the console scope must not grow at steady state";
  app->stop();
}

}  // namespace
}  // namespace rtcf
