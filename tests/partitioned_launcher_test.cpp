// Partitioned multi-worker executive: the production scenario spread over
// worker threads with lock-free cross-worker bindings.
#include <gtest/gtest.h>

#include "runtime/launcher.hpp"
#include "scenario/production_scenario.hpp"

namespace rtcf::runtime {
namespace {

using scenario::collect_counters;

void run_partitioned_scenario(soleil::Mode mode, std::size_t workers) {
  const auto arch = scenario::make_production_architecture();
  auto app = soleil::build_application(arch, mode, workers);
  app->start();
  Launcher launcher(*app);
  Launcher::Options options;
  options.duration = rtsj::RelativeTime::milliseconds(150);
  options.workers = workers;
  launcher.run(options);

  const auto& stats = launcher.stats("ProductionLine");
  EXPECT_GE(stats.releases, 8u);
  EXPECT_EQ(stats.response_us.count(), stats.releases);

  // Zero loss below buffer capacity: the final drain leaves nothing in
  // flight, so the sporadic consumers processed every produced message.
  const auto counters = collect_counters(*app);
  EXPECT_EQ(counters.produced, stats.releases);
  EXPECT_EQ(counters.processed, counters.produced);
  EXPECT_EQ(counters.audit_records, counters.processed);
  EXPECT_EQ(counters.console_reports, counters.anomalies);
  for (const auto& buffer : app->buffers()) {
    EXPECT_EQ(buffer->dropped_total(), 0u)
        << "10 ms period against polling workers must not overflow";
    EXPECT_TRUE(buffer->empty()) << "final drain left messages behind";
  }
  app->stop();
}

TEST(PartitionedLauncherTest, SoleilFourWorkersZeroLoss) {
  run_partitioned_scenario(soleil::Mode::Soleil, 4);
}

TEST(PartitionedLauncherTest, MergeAllTwoWorkersZeroLoss) {
  run_partitioned_scenario(soleil::Mode::MergeAll, 2);
}

TEST(PartitionedLauncherTest, UltraMergeFourWorkersZeroLoss) {
  run_partitioned_scenario(soleil::Mode::UltraMerge, 4);
}

TEST(PartitionedLauncherTest, WorkerCountMustMatchThePlan) {
  const auto arch = scenario::make_production_architecture();
  auto app = soleil::build_application(arch, soleil::Mode::Soleil, 2);
  app->start();
  Launcher launcher(*app);
  Launcher::Options options;
  options.workers = 4;  // plan says 2
  EXPECT_THROW(launcher.run(options), std::invalid_argument);
  app->stop();
}

// A partitioned assembly driven single-threaded (iterate + pump) computes
// exactly what the single-partition assembly computes: partitioning changes
// where work runs, never what it computes.
TEST(PartitionedLauncherTest, PartitionedAssemblyIsFunctionallyIdentical) {
  const auto arch = scenario::make_production_architecture();
  auto single = soleil::build_application(arch, soleil::Mode::Soleil);
  auto split = soleil::build_application(arch, soleil::Mode::Soleil, 4);
  single->start();
  split->start();
  for (int i = 0; i < 1000; ++i) {
    single->iterate("ProductionLine");
    split->iterate("ProductionLine");
  }
  EXPECT_EQ(collect_counters(*single), collect_counters(*split));
  single->stop();
  split->stop();
}

// Regression for the multi-worker drain audit: the final single-threaded
// pump() after the workers join re-runs leftover *activations*, and must
// not touch per-component release/deadline-miss aggregation. Launcher
// stats are written only in dispatch_entry (never during the drain), and
// each drained activation is recorded exactly once by the consumer's
// telemetry — so producer counts, consumer counts, and launcher stats all
// reconcile exactly.
TEST(PartitionedLauncherTest, FinalDrainAggregatesStatsOnce) {
  const auto arch = scenario::make_production_architecture();
  auto app = soleil::build_application(arch, soleil::Mode::Soleil, 4);
  app->start();
  Launcher launcher(*app);
  Launcher::Options options;
  options.duration = rtsj::RelativeTime::milliseconds(150);
  options.workers = 4;
  launcher.run(options);

  const auto counters = collect_counters(*app);
  const auto& pl = launcher.stats("ProductionLine");
  // One stats record per dispatched release — a double-counting drain
  // would break every one of these equalities.
  EXPECT_EQ(pl.releases, counters.produced);
  EXPECT_EQ(pl.response_us.count(), pl.releases);
  EXPECT_EQ(pl.start_lateness_us.count(), pl.releases);
  EXPECT_LE(pl.deadline_misses, pl.releases);

  // Telemetry side: periodic releases counted once by the launcher,
  // message-driven activations counted once by the timing interceptor —
  // whether a worker pumped them or the final drain did.
  auto& mon = app->monitor();
  EXPECT_EQ(mon.find("ProductionLine")->telemetry->releases.load(),
            pl.releases);
  EXPECT_EQ(mon.find("MonitoringSystem")->telemetry->activations.load(),
            counters.processed);
  EXPECT_EQ(mon.find("AuditLog")->telemetry->activations.load(),
            counters.audit_records);
  app->stop();
}

TEST(PartitionedLauncherTest, PerComponentDeadlineStatsReported) {
  const auto arch = scenario::make_production_architecture();
  auto app = soleil::build_application(arch, soleil::Mode::Soleil, 4);
  app->start();
  Launcher launcher(*app);
  Launcher::Options options;
  options.duration = rtsj::RelativeTime::milliseconds(120);
  options.workers = 4;
  launcher.run(options);
  for (const auto& [name, stats] : launcher.all_stats()) {
    EXPECT_FALSE(name.empty());
    EXPECT_EQ(stats.response_us.count(), stats.releases);
    EXPECT_LE(stats.deadline_misses, stats.releases);
  }
  app->stop();
}

}  // namespace
}  // namespace rtcf::runtime
