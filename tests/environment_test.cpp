// RuntimeEnvironment: architecture -> RTSJ substrate mapping, scope
// pinning, nesting, and teardown.
#include <gtest/gtest.h>

#include "model/views.hpp"
#include "runtime/environment.hpp"
#include "scenario/production_scenario.hpp"

namespace rtcf::runtime {
namespace {

using namespace rtcf::model;

TEST(EnvironmentTest, MapsTheMotivationScenario) {
  const auto arch = scenario::make_production_architecture();
  RuntimeEnvironment env(arch);
  EXPECT_EQ(&env.area_for(*arch.find("ProductionLine")),
            &rtsj::ImmortalMemory::instance());
  EXPECT_EQ(&env.area_for(*arch.find("AuditLog")),
            &rtsj::HeapMemory::instance());
  auto& console_area = env.area_for(*arch.find("Console"));
  EXPECT_EQ(console_area.kind(), rtsj::AreaKind::Scoped);
  EXPECT_EQ(console_area.name(), "cscope");
  EXPECT_EQ(console_area.size(), 28u * 1024u);
}

TEST(EnvironmentTest, ScopesArePinnedWhileEnvironmentLives) {
  const auto arch = scenario::make_production_architecture();
  rtsj::ScopedMemory* scope = nullptr;
  {
    RuntimeEnvironment env(arch);
    ASSERT_EQ(env.scopes().size(), 1u);
    scope = env.scopes()[0];
    EXPECT_GE(scope->reference_count(), 1) << "wedge pin holds the scope";
    // Objects allocated in the pinned scope survive enter/exit cycles.
    auto* value = scope->make<int>(5);
    scope->enter([&] { EXPECT_EQ(*value, 5); });
    EXPECT_GT(scope->memory_consumed(), 0u);
  }
  // Environment gone: pin released; the ScopedMemory object itself is
  // owned by the environment, so no dangling access here — this test only
  // verifies nothing crashed during teardown.
}

TEST(EnvironmentTest, UndeployedComponentDefaultsToHeap) {
  Architecture arch;
  auto& p = arch.add_passive("Floating");
  p.set_content_class("X");
  RuntimeEnvironment env(arch);
  EXPECT_EQ(&env.area_for(p), &rtsj::HeapMemory::instance());
}

TEST(EnvironmentTest, NestedScopesMirrorTheArchitecture) {
  Architecture arch;
  auto& outer = arch.add_memory_area("Outer", AreaType::Scoped, 64 * 1024);
  auto& inner = arch.add_memory_area("Inner", AreaType::Scoped, 8 * 1024);
  arch.add_child(outer, inner);
  RuntimeEnvironment env(arch);
  auto& outer_rt =
      static_cast<rtsj::ScopedMemory&>(env.area_runtime(outer));
  auto& inner_rt =
      static_cast<rtsj::ScopedMemory&>(env.area_runtime(inner));
  EXPECT_EQ(inner_rt.parent(), &outer_rt)
      << "runtime parenting mirrors design-time nesting";
  EXPECT_TRUE(inner_rt.descends_from(&outer_rt));
}

TEST(EnvironmentTest, SiblingScopesAreNotParented) {
  Architecture arch;
  arch.add_memory_area("Sa", AreaType::Scoped, 8 * 1024);
  arch.add_memory_area("Sb", AreaType::Scoped, 8 * 1024);
  RuntimeEnvironment env(arch);
  const auto scopes = env.scopes();
  ASSERT_EQ(scopes.size(), 2u);
  EXPECT_EQ(scopes[0]->parent(), nullptr);
  EXPECT_EQ(scopes[1]->parent(), nullptr);
}

TEST(EnvironmentTest, ThreadsMatchDomainDescriptors) {
  const auto arch = scenario::make_production_architecture();
  RuntimeEnvironment env(arch);
  const auto* ms = arch.find_as<ActiveComponent>("MonitoringSystem");
  auto& thread = env.thread_for(*ms);
  EXPECT_EQ(thread.kind(), rtsj::ThreadKind::NoHeapRealtime);
  EXPECT_EQ(thread.priority(), 25);
  EXPECT_EQ(thread.profile().kind, rtsj::ReleaseKind::Sporadic);
}

TEST(EnvironmentTest, ThreadForUndomainedComponentThrows) {
  Architecture arch;
  auto& a = arch.add_active("Orphan", ActivationKind::Periodic,
                            rtsj::RelativeTime::milliseconds(1));
  RuntimeEnvironment env(arch);
  EXPECT_THROW((void)env.thread_for(a), std::invalid_argument);
}

TEST(EnvironmentTest, RunInAreaSetsAllocationContext) {
  const auto arch = scenario::make_production_architecture();
  RuntimeEnvironment env(arch);
  auto& scope = env.area_for(*arch.find("Console"));
  const rtsj::MemoryArea* observed = nullptr;
  env.run_in_area(scope, [&] { observed = &rtsj::current_area(); });
  EXPECT_EQ(observed, &scope);
  env.run_in_area(rtsj::ImmortalMemory::instance(), [&] {
    observed = &rtsj::current_area();
  });
  EXPECT_EQ(observed, &rtsj::ImmortalMemory::instance());
}

TEST(EnvironmentTest, ScopedContentsAreFinalizedOnTeardown) {
  static int destructions = 0;
  struct Probe {
    ~Probe() { ++destructions; }
  };
  Architecture arch;
  arch.add_memory_area("S", AreaType::Scoped, 8 * 1024);
  destructions = 0;
  {
    RuntimeEnvironment env(arch);
    env.scopes()[0]->make<Probe>();
    EXPECT_EQ(destructions, 0);
  }
  EXPECT_EQ(destructions, 1)
      << "pin release must reclaim the scope and run finalizers";
}

}  // namespace
}  // namespace rtcf::runtime
