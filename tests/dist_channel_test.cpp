// Control channels: loopback pair semantics and the TCP transport's
// length-prefixed framing (`ctest -L dist`).
#include <gtest/gtest.h>

#include <thread>

#include "comm/channel.hpp"

namespace rtcf::comm {
namespace {

Frame make_frame(std::uint16_t type, std::initializer_list<std::uint8_t> b) {
  Frame frame;
  frame.type = type;
  frame.payload.assign(b);
  return frame;
}

TEST(LoopbackChannelTest, FramesCrossInOrderBothDirections) {
  auto [a, b] = LoopbackChannel::make_pair();
  ASSERT_TRUE(a->send(make_frame(1, {0x11})));
  ASSERT_TRUE(a->send(make_frame(2, {0x22, 0x23})));
  ASSERT_TRUE(b->send(make_frame(3, {})));

  Frame frame;
  ASSERT_TRUE(b->receive(frame, rtsj::RelativeTime::zero()));
  EXPECT_EQ(frame.type, 1);
  ASSERT_TRUE(b->receive(frame, rtsj::RelativeTime::zero()));
  EXPECT_EQ(frame.type, 2);
  EXPECT_EQ(frame.payload.size(), 2u);
  EXPECT_FALSE(b->receive(frame, rtsj::RelativeTime::zero()));

  ASSERT_TRUE(a->receive(frame, rtsj::RelativeTime::zero()));
  EXPECT_EQ(frame.type, 3);
}

TEST(LoopbackChannelTest, ReceiveTimesOutAndCloseUnblocks) {
  auto [a, b] = LoopbackChannel::make_pair();
  Frame frame;
  EXPECT_FALSE(b->receive(frame, rtsj::RelativeTime::milliseconds(5)));

  std::thread closer([&a] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    a->close();
  });
  // A blocked receive wakes on close and reports failure.
  EXPECT_FALSE(b->receive(frame, rtsj::RelativeTime::milliseconds(500)));
  closer.join();
  EXPECT_FALSE(b->open());
  EXPECT_FALSE(a->send(make_frame(1, {})));
}

TEST(LoopbackChannelTest, QueuedFramesSurviveClose) {
  auto [a, b] = LoopbackChannel::make_pair();
  ASSERT_TRUE(a->send(make_frame(7, {0x01})));
  a->close();
  Frame frame;
  // In-flight frames are still delivered after close (drain semantics).
  EXPECT_TRUE(b->receive(frame, rtsj::RelativeTime::zero()));
  EXPECT_EQ(frame.type, 7);
  EXPECT_FALSE(b->receive(frame, rtsj::RelativeTime::zero()));
}

TEST(TcpChannelTest, ListeningReceiveHonorsItsTimeoutWithNoPeer) {
  auto server = TcpChannel::listen(0);
  ASSERT_NE(server, nullptr);
  Frame frame;
  const auto start = std::chrono::steady_clock::now();
  // No peer ever connects: the receive must time out, not block in
  // accept() (a serve loop polls with tiny timeouts and must stay
  // responsive to shutdown).
  EXPECT_FALSE(server->receive(frame, rtsj::RelativeTime::milliseconds(20)));
  EXPECT_FALSE(server->receive(frame, rtsj::RelativeTime::zero()));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            2000);
}

TEST(TcpChannelTest, FramesCrossTheSocketWithLengthPrefixes) {
  auto server = TcpChannel::listen(0);
  ASSERT_NE(server, nullptr);
  ASSERT_NE(server->bound_port(), 0);

  auto client = TcpChannel::connect("127.0.0.1", server->bound_port());
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(server->accept_one());

  Frame big;
  big.type = 42;
  big.payload.resize(100000);
  for (std::size_t i = 0; i < big.payload.size(); ++i) {
    big.payload[i] = static_cast<std::uint8_t>(i * 31);
  }
  ASSERT_TRUE(client->send(big));
  ASSERT_TRUE(client->send(make_frame(43, {0xAA})));

  Frame frame;
  ASSERT_TRUE(server->receive(frame, rtsj::RelativeTime::milliseconds(2000)));
  EXPECT_EQ(frame.type, 42);
  EXPECT_EQ(frame.payload, big.payload);
  ASSERT_TRUE(server->receive(frame, rtsj::RelativeTime::milliseconds(2000)));
  EXPECT_EQ(frame.type, 43);

  // And the reverse direction.
  ASSERT_TRUE(server->send(make_frame(44, {0x01, 0x02})));
  ASSERT_TRUE(client->receive(frame, rtsj::RelativeTime::milliseconds(2000)));
  EXPECT_EQ(frame.type, 44);

  // A receive with no traffic times out cleanly.
  EXPECT_FALSE(client->receive(frame, rtsj::RelativeTime::milliseconds(10)));

  server->close();
  EXPECT_FALSE(client->receive(frame, rtsj::RelativeTime::milliseconds(200)));
}

}  // namespace
}  // namespace rtcf::comm
