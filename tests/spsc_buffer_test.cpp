// Lock-free SPSC message buffer: single-thread semantics identical to the
// base MessageBuffer, plus cross-thread FIFO/loss/drop guarantees under a
// real producer/consumer race (exercised under the ASan/UBSan CI job).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "comm/spsc_message_buffer.hpp"
#include "rtsj/memory/context.hpp"

namespace rtcf::comm {
namespace {

Message with_seq(std::uint64_t seq) {
  Message m;
  m.sequence = seq;
  m.store(seq);
  return m;
}

TEST(SpscBufferTest, FifoWithDropNewestCounting) {
  SpscMessageBuffer buffer(rtsj::ImmortalMemory::instance(), 2);
  EXPECT_TRUE(buffer.concurrent());
  EXPECT_TRUE(buffer.push(with_seq(1)));
  EXPECT_TRUE(buffer.push(with_seq(2)));
  // Overflow sheds the *newest* message — same policy as the base buffer.
  EXPECT_FALSE(buffer.push(with_seq(3)));
  EXPECT_EQ(buffer.dropped_total(), 1u);
  EXPECT_EQ(buffer.enqueued_total(), 2u);
  EXPECT_EQ(buffer.size(), 2u);
  EXPECT_TRUE(buffer.full());
  EXPECT_EQ(buffer.pop()->sequence, 1u);
  EXPECT_EQ(buffer.pop()->sequence, 2u);
  EXPECT_FALSE(buffer.pop().has_value());
  EXPECT_TRUE(buffer.empty());
}

TEST(SpscBufferTest, SlotsLiveInTheGivenArea) {
  rtsj::ScopedMemory scope("spsc-scope", 16 * 1024);
  const auto consumed_before = scope.memory_consumed();
  SpscMessageBuffer buffer(scope, 10);
  EXPECT_GE(scope.memory_consumed() - consumed_before, 10 * sizeof(Message));
  EXPECT_EQ(&buffer.area(), &scope);
}

TEST(SpscBufferTest, NoLossBelowCapacity) {
  SpscMessageBuffer buffer(rtsj::ImmortalMemory::instance(), 64);
  for (std::uint64_t i = 0; i < 64; ++i) {
    EXPECT_TRUE(buffer.push(with_seq(i)));
  }
  EXPECT_EQ(buffer.dropped_total(), 0u);
  for (std::uint64_t i = 0; i < 64; ++i) {
    auto m = buffer.pop();
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->sequence, i);
  }
}

TEST(SpscBufferTest, PolymorphicUseThroughBasePointer) {
  SpscMessageBuffer spsc(rtsj::ImmortalMemory::instance(), 4);
  MessageBuffer* base = &spsc;
  EXPECT_TRUE(base->push(with_seq(7)));
  EXPECT_EQ(base->size(), 1u);
  EXPECT_EQ(base->pop()->sequence, 7u);
  EXPECT_TRUE(base->concurrent());
  MessageBuffer plain(rtsj::ImmortalMemory::instance(), 4);
  EXPECT_FALSE(plain.concurrent());
}

// Producer retries on full: the consumer must observe every message exactly
// once, in order. This is the zero-loss-below-capacity guarantee under a
// real cross-thread race (a retried push re-offers the same message; only
// the enqueued count measures delivery).
TEST(SpscBufferStressTest, CrossThreadFifoWithoutLoss) {
  SpscMessageBuffer buffer(rtsj::ImmortalMemory::instance(), 32);
  constexpr std::uint64_t kCount = 50'000;

  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kCount; ++i) {
      while (!buffer.push(with_seq(i))) {
        std::this_thread::yield();  // single-core hosts need the consumer on
      }
    }
  });

  std::uint64_t expected = 0;
  while (expected < kCount) {
    if (auto m = buffer.pop()) {
      ASSERT_EQ(m->sequence, expected) << "FIFO order broken";
      ASSERT_EQ(m->load<std::uint64_t>(), expected) << "payload corrupted";
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_EQ(buffer.enqueued_total(), kCount);
  EXPECT_TRUE(buffer.empty());
}

// Producer never retries: drops are expected, and the books must balance —
// attempts == enqueued + dropped, consumer receives exactly the enqueued
// messages, still strictly in order.
TEST(SpscBufferStressTest, DropAccountingUnderOverflow) {
  SpscMessageBuffer buffer(rtsj::ImmortalMemory::instance(), 8);
  constexpr std::uint64_t kAttempts = 50'000;
  std::atomic<bool> done{false};

  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kAttempts; ++i) {
      buffer.push(with_seq(i));
    }
    done.store(true, std::memory_order_release);
  });

  std::uint64_t received = 0;
  std::uint64_t last_seq = 0;
  bool first = true;
  for (;;) {
    if (auto m = buffer.pop()) {
      if (!first) {
        ASSERT_GT(m->sequence, last_seq) << "order or duplication bug";
      }
      last_seq = m->sequence;
      first = false;
      ++received;
      continue;
    }
    if (done.load(std::memory_order_acquire) && buffer.empty()) break;
    std::this_thread::yield();
  }
  producer.join();
  EXPECT_EQ(buffer.enqueued_total() + buffer.dropped_total(), kAttempts);
  EXPECT_EQ(received, buffer.enqueued_total());
  EXPECT_GT(buffer.dropped_total(), 0u)
      << "an 8-slot buffer cannot absorb 200k unthrottled pushes";
}

}  // namespace
}  // namespace rtcf::comm
