// Partition assignment in the Soleil plan: synchronous clusters stay
// together, assignments are deterministic and balanced, and only crossing
// asynchronous bindings get the lock-free SPSC buffer variant.
#include <gtest/gtest.h>

#include "scenario/production_scenario.hpp"
#include "soleil/application.hpp"

namespace rtcf::soleil {
namespace {

TEST(PartitionPlanTest, SinglePartitionPlanIsUnchanged) {
  const auto arch = scenario::make_production_architecture();
  auto app = build_application(arch, Mode::Soleil);
  const Plan& plan = app->plan();
  EXPECT_EQ(plan.partition_count, 1u);
  for (const auto& pc : plan.components) EXPECT_EQ(pc.partition, 0u);
  for (const auto& pb : plan.bindings) EXPECT_FALSE(pb.cross_partition);
  for (const auto& buffer : app->buffers()) {
    EXPECT_FALSE(buffer->concurrent())
        << "single-partition assemblies keep the single-threaded buffer";
  }
}

TEST(PartitionPlanTest, SyncClustersShareAPartition) {
  const auto arch = scenario::make_production_architecture();
  auto app = build_application(arch, Mode::Soleil, 4);
  const Plan& plan = app->plan();
  EXPECT_EQ(plan.partition_count, 4u);
  for (const auto& pc : plan.components) EXPECT_LT(pc.partition, 4u);
  // MonitoringSystem reports to the Console synchronously: the call runs
  // the Console on MonitoringSystem's worker, so both must be co-located.
  EXPECT_EQ(plan.partition_of("MonitoringSystem"),
            plan.partition_of("Console"));
  for (const auto& pb : plan.bindings) {
    if (pb.protocol == model::Protocol::Synchronous) {
      EXPECT_FALSE(pb.cross_partition)
          << "synchronous bindings must never cross workers";
    }
  }
}

TEST(PartitionPlanTest, ClustersSpreadAcrossPartitions) {
  const auto arch = scenario::make_production_architecture();
  auto app = build_application(arch, Mode::Soleil, 4);
  const Plan& plan = app->plan();
  // Three clusters — {ProductionLine}, {MonitoringSystem, Console},
  // {AuditLog} — over four partitions: all three land on distinct workers.
  EXPECT_NE(plan.partition_of("ProductionLine"),
            plan.partition_of("MonitoringSystem"));
  EXPECT_NE(plan.partition_of("ProductionLine"),
            plan.partition_of("AuditLog"));
  EXPECT_NE(plan.partition_of("MonitoringSystem"),
            plan.partition_of("AuditLog"));
}

TEST(PartitionPlanTest, AssignmentIsDeterministic) {
  const auto arch = scenario::make_production_architecture();
  auto a = build_application(arch, Mode::Soleil, 3);
  auto b = build_application(arch, Mode::Soleil, 3);
  for (const auto& pc : a->plan().components) {
    EXPECT_EQ(pc.partition,
              b->plan().partition_of(pc.component->name()));
  }
}

TEST(PartitionPlanTest, CrossPartitionBindingsGetSpscBuffers) {
  const auto arch = scenario::make_production_architecture();
  for (const Mode mode : {Mode::Soleil, Mode::MergeAll, Mode::UltraMerge}) {
    auto app = build_application(arch, mode, 4);
    // Buffers are created in plan-binding order; collect the async
    // bindings' crossing flags the same way.
    std::vector<bool> crossing;
    for (const auto& pb : app->plan().bindings) {
      if (pb.protocol == model::Protocol::Asynchronous) {
        crossing.push_back(pb.cross_partition);
      }
    }
    ASSERT_EQ(crossing.size(), app->buffers().size());
    for (std::size_t i = 0; i < crossing.size(); ++i) {
      EXPECT_EQ(app->buffers()[i]->concurrent(), crossing[i])
          << to_string(mode) << " buffer " << i;
    }
  }
}

TEST(PartitionPlanTest, MorePartitionsThanClustersLeavesWorkersIdle) {
  const auto arch = scenario::make_production_architecture();
  auto app = build_application(arch, Mode::Soleil, 8);
  EXPECT_EQ(app->plan().partition_count, 8u);
  for (const auto& pc : app->plan().components) {
    EXPECT_LT(pc.partition, 8u);
  }
}

}  // namespace
}  // namespace rtcf::soleil
