// RTSJ memory-area semantics: allocation contexts, scope reference
// counting, the single parent rule, executeInArea, and portals.
#include <gtest/gtest.h>

#include "rtsj/memory/area_registry.hpp"
#include "rtsj/memory/context.hpp"
#include "rtsj/memory/memory_area.hpp"

namespace rtcf::rtsj {
namespace {

TEST(MemoryAreaTest, HeapAndImmortalAreSingletons) {
  EXPECT_EQ(&HeapMemory::instance(), &HeapMemory::instance());
  EXPECT_EQ(&ImmortalMemory::instance(), &ImmortalMemory::instance());
  EXPECT_EQ(HeapMemory::instance().kind(), AreaKind::Heap);
  EXPECT_EQ(ImmortalMemory::instance().kind(), AreaKind::Immortal);
}

TEST(MemoryAreaTest, ScopedAllocationStaysInsideRegion) {
  ScopedMemory scope("s", 4096);
  auto* x = scope.make<int>(42);
  EXPECT_EQ(*x, 42);
  EXPECT_TRUE(scope.contains(x));
  EXPECT_FALSE(HeapMemory::instance().contains(x));
  EXPECT_GE(scope.memory_consumed(), sizeof(int));
}

TEST(MemoryAreaTest, ScopedExhaustionThrowsOutOfMemory) {
  ScopedMemory scope("tiny", 64);
  EXPECT_THROW(
      {
        for (int i = 0; i < 100; ++i) scope.allocate(32, 8);
      },
      OutOfMemoryError);
}

TEST(MemoryAreaTest, DeclaredSizeIsReported) {
  ScopedMemory scope("sized", 28 * 1024);
  EXPECT_EQ(scope.size(), 28u * 1024u);
  EXPECT_EQ(scope.memory_consumed(), 0u);
  EXPECT_LE(scope.memory_remaining(), 28u * 1024u);
}

TEST(MemoryAreaTest, EnterSetsAllocationContext) {
  ScopedMemory scope("ctx", 4096);
  MemoryArea* inside = nullptr;
  scope.enter([&] { inside = &current_area(); });
  EXPECT_EQ(inside, &scope);
  // Outside the enter, the default context allocates on the heap.
  EXPECT_EQ(current_area().kind(), AreaKind::Heap);
}

TEST(MemoryAreaTest, ScopeReclaimedWhenLastThreadLeaves) {
  ScopedMemory scope("reclaim", 4096);
  scope.enter([&] {
    scope.make<int>(1);
    EXPECT_EQ(scope.reference_count(), 1);
    EXPECT_GT(scope.memory_consumed(), 0u);
  });
  EXPECT_EQ(scope.reference_count(), 0);
  EXPECT_EQ(scope.memory_consumed(), 0u) << "region must rewind on exit";
}

TEST(MemoryAreaTest, FinalizersRunOnReclamation) {
  static int destructions = 0;
  struct Probe {
    ~Probe() { ++destructions; }
  };
  destructions = 0;
  ScopedMemory scope("finalize", 4096);
  scope.enter([&] {
    scope.make<Probe>();
    scope.make<Probe>();
    EXPECT_EQ(destructions, 0);
  });
  EXPECT_EQ(destructions, 2);
}

TEST(MemoryAreaTest, NestedEnterEstablishesParentChain) {
  ScopedMemory outer("outer", 4096);
  ScopedMemory inner("inner", 4096);
  outer.enter([&] {
    inner.enter([&] {
      EXPECT_EQ(inner.parent(), &outer);
      EXPECT_TRUE(inner.descends_from(&outer));
      EXPECT_TRUE(inner.descends_from(&inner));
      EXPECT_FALSE(outer.descends_from(&inner));
    });
  });
  EXPECT_EQ(inner.parent(), nullptr) << "unparented after reclamation";
}

TEST(MemoryAreaTest, SingleParentRuleRejectsSecondParent) {
  ScopedMemory a("a", 4096);
  ScopedMemory b("b", 4096);
  ScopedMemory child("child", 4096);
  // Keep `child` parented under `a` while probing from `b`.
  ThreadContext pinner("pin", ThreadKind::Realtime, 20,
                       &ImmortalMemory::instance());
  ScopePin pin_a(a, pinner);
  ScopePin pin_child(child, pinner);
  ASSERT_EQ(child.parent(), &a);
  b.enter([&] {
    EXPECT_THROW(child.enter([] {}), ScopedCycleException);
  });
}

TEST(MemoryAreaTest, ReEnteringInnermostScopeIsACycle) {
  ScopedMemory scope("cycle", 4096);
  scope.enter([&] {
    EXPECT_THROW(scope.enter([] {}), ScopedCycleException);
  });
}

TEST(MemoryAreaTest, ScopeCanBeReparentedAfterReclamation) {
  ScopedMemory a("a2", 4096);
  ScopedMemory b("b2", 4096);
  ScopedMemory child("child2", 4096);
  a.enter([&] { child.enter([&] { EXPECT_EQ(child.parent(), &a); }); });
  // Reference count hit zero: the next enter may choose a new parent.
  b.enter([&] { child.enter([&] { EXPECT_EQ(child.parent(), &b); }); });
}

TEST(MemoryAreaTest, ExecuteInAreaRequiresScopeOnStack) {
  ScopedMemory scope("exec", 4096);
  EXPECT_THROW(scope.execute_in_area([] {}), InaccessibleAreaException);
  scope.enter([&] {
    // On the stack now: redirecting the allocation context is fine.
    ImmortalMemory::instance().execute_in_area([&] {
      EXPECT_EQ(current_area().kind(), AreaKind::Immortal);
    });
    scope.execute_in_area(
        [&] { EXPECT_EQ(&current_area(), &scope); });
  });
}

TEST(MemoryAreaTest, PortalMustLiveInsideTheScope) {
  ScopedMemory scope("portal", 4096);
  int heap_obj = 0;
  scope.enter([&] {
    auto* inside = scope.make<int>(7);
    scope.set_portal(inside);
    EXPECT_EQ(scope.portal(), inside);
    EXPECT_THROW(scope.set_portal(&heap_obj), IllegalAssignmentError);
  });
  // Portal cleared on reclamation; access from outside is illegal anyway.
  EXPECT_THROW((void)scope.portal(), InaccessibleAreaException);
}

TEST(MemoryAreaTest, ScopePinKeepsRegionAlive) {
  ScopedMemory scope("pinned", 4096);
  ThreadContext wedge("wedge", ThreadKind::Realtime, 20,
                      &ImmortalMemory::instance());
  {
    ScopePin pin(scope, wedge);
    EXPECT_EQ(scope.reference_count(), 1);
    scope.enter([&] { scope.make<int>(5); });
    // A normal enter/exit must not reclaim while pinned.
    EXPECT_GT(scope.memory_consumed(), 0u);
  }
  EXPECT_EQ(scope.reference_count(), 0);
  EXPECT_EQ(scope.memory_consumed(), 0u);
}

TEST(MemoryAreaTest, AreaRegistryResolvesOwnership) {
  ScopedMemory scope("registry", 4096);
  auto* in_scope = scope.make<double>(1.0);
  auto* in_immortal = ImmortalMemory::instance().make<double>(2.0);
  int stack_var = 0;
  EXPECT_EQ(AreaRegistry::instance().area_of(in_scope), &scope);
  EXPECT_EQ(AreaRegistry::instance().area_of(in_immortal),
            &ImmortalMemory::instance());
  EXPECT_EQ(AreaRegistry::instance().area_of(&stack_var), nullptr);
  EXPECT_EQ(AreaRegistry::instance().area_of(nullptr), nullptr);
}

TEST(MemoryAreaTest, NhrtCannotAllocateOnHeap) {
  ThreadContext nhrt("nhrt", ThreadKind::NoHeapRealtime, 30,
                     &ImmortalMemory::instance());
  ContextGuard guard(nhrt);
  EXPECT_THROW(HeapMemory::instance().allocate(8, 8), MemoryAccessError);
  // Immortal and scoped allocation remain legal.
  EXPECT_NO_THROW(ImmortalMemory::instance().allocate(8, 8));
}

TEST(MemoryAreaTest, RegularThreadAllocatesOnHeapByDefault) {
  ThreadContext regular("reg", ThreadKind::Regular, 5);
  ContextGuard guard(regular);
  EXPECT_EQ(current_area().kind(), AreaKind::Heap);
  EXPECT_NO_THROW(HeapMemory::instance().allocate(8, 8));
}

}  // namespace
}  // namespace rtcf::rtsj
