// Cross-scope communication patterns: design-time catalog and runtime
// semantics.
#include <gtest/gtest.h>

#include "comm/message.hpp"
#include "membrane/patterns.hpp"
#include "rtsj/memory/area_registry.hpp"
#include "rtsj/memory/context.hpp"
#include "validate/pattern_catalog.hpp"

namespace rtcf {
namespace {

using membrane::PatternOp;
using membrane::PatternRuntime;
using validate::AreaRelation;

comm::Message message_with(double v) {
  comm::Message m;
  m.type_id = 1;
  m.store(v);
  return m;
}

struct EchoServer final : comm::IInvocable {
  comm::Message invoke(const comm::Message& m) override {
    comm::Message out = m;
    out.type_id = 42;
    // Record where the request payload we received lives.
    observed_area = rtsj::AreaRegistry::instance().area_of(&m);
    return out;
  }
  const rtsj::MemoryArea* observed_area = nullptr;
};

TEST(PatternCatalogTest, NamesRoundTripThroughOps) {
  for (const auto& name : validate::known_patterns()) {
    const PatternOp op = membrane::pattern_op_from_name(name);
    EXPECT_EQ(membrane::to_string(op), name);
  }
  EXPECT_THROW(membrane::pattern_op_from_name("bogus"),
               std::invalid_argument);
}

TEST(PatternCatalogTest, ApplicabilityMatrix) {
  using model::Protocol;
  // direct: only same/server-outer.
  EXPECT_TRUE(validate::pattern_applicable("direct", AreaRelation::Same,
                                           Protocol::Synchronous));
  EXPECT_TRUE(validate::pattern_applicable(
      "direct", AreaRelation::ServerOuter, Protocol::Asynchronous));
  EXPECT_FALSE(validate::pattern_applicable(
      "direct", AreaRelation::ServerInner, Protocol::Synchronous));
  // scope-enter: sync into an inner scope only.
  EXPECT_TRUE(validate::pattern_applicable(
      "scope-enter", AreaRelation::ServerInner, Protocol::Synchronous));
  EXPECT_FALSE(validate::pattern_applicable(
      "scope-enter", AreaRelation::ServerInner, Protocol::Asynchronous));
  // wedge-thread: async into an inner scope.
  EXPECT_TRUE(validate::pattern_applicable(
      "wedge-thread", AreaRelation::ServerInner, Protocol::Asynchronous));
  // deep-copy/immortal-forward: universal.
  for (auto rel : {AreaRelation::Same, AreaRelation::ServerOuter,
                   AreaRelation::ServerInner, AreaRelation::Disjoint}) {
    EXPECT_TRUE(validate::pattern_applicable("deep-copy", rel,
                                             Protocol::Synchronous));
    EXPECT_TRUE(validate::pattern_applicable("immortal-forward", rel,
                                             Protocol::Asynchronous));
  }
  // handoff: disjoint only.
  EXPECT_TRUE(validate::pattern_applicable("handoff", AreaRelation::Disjoint,
                                           Protocol::Asynchronous));
  EXPECT_FALSE(validate::pattern_applicable("handoff", AreaRelation::Same,
                                            Protocol::Asynchronous));
}

TEST(PatternCatalogTest, SuggestionsFollowTheDecisionTable) {
  using model::Protocol;
  validate::PatternQuery q;
  q.relation = AreaRelation::Same;
  EXPECT_EQ(validate::suggest_pattern(q), "direct");

  q.relation = AreaRelation::ServerInner;
  q.protocol = Protocol::Synchronous;
  EXPECT_EQ(validate::suggest_pattern(q), "scope-enter");
  q.protocol = Protocol::Asynchronous;
  EXPECT_EQ(validate::suggest_pattern(q), "wedge-thread");

  q.relation = AreaRelation::ServerOuter;
  q.protocol = Protocol::Synchronous;
  q.server_in_heap = true;
  q.client_no_heap = true;
  EXPECT_EQ(validate::suggest_pattern(q), "") << "sync NHRT->heap: no cure";
  q.protocol = Protocol::Asynchronous;
  EXPECT_EQ(validate::suggest_pattern(q), "immortal-forward");

  q = {};
  q.relation = AreaRelation::Disjoint;
  q.protocol = Protocol::Synchronous;
  EXPECT_EQ(validate::suggest_pattern(q), "deep-copy");
  q.common_scope_ancestor = true;
  EXPECT_EQ(validate::suggest_pattern(q), "shared-scope");
}

class PatternRuntimeTest : public ::testing::Test {
 protected:
  rtsj::ScopedMemory server_scope_{"pat-server", 16 * 1024};
  rtsj::ScopedMemory other_scope_{"pat-other", 16 * 1024};
  rtsj::ThreadContext wedge_a_{"pat-wa", rtsj::ThreadKind::Realtime, 20,
                               &rtsj::ImmortalMemory::instance()};
  rtsj::ThreadContext wedge_b_{"pat-wb", rtsj::ThreadKind::Realtime, 20,
                               &rtsj::ImmortalMemory::instance()};
  rtsj::ScopePin pin_server_{server_scope_, wedge_a_};
  rtsj::ScopePin pin_other_{other_scope_, wedge_b_};
};

TEST_F(PatternRuntimeTest, DirectStagesNothing) {
  auto p = PatternRuntime::make(PatternOp::Direct, &server_scope_, nullptr);
  const auto m = message_with(1.0);
  EXPECT_EQ(&p.stage(m), &m);
  EXPECT_EQ(p.staged_count(), 0u);
  EXPECT_EQ(p.slot_bytes(), 0u);
}

TEST_F(PatternRuntimeTest, DeepCopyStagesIntoServerArea) {
  auto p = PatternRuntime::make(PatternOp::DeepCopy, &server_scope_,
                                &server_scope_);
  const auto m = message_with(2.0);
  const auto& staged = p.stage(m);
  EXPECT_NE(&staged, &m);
  EXPECT_TRUE(server_scope_.contains(&staged));
  EXPECT_EQ(staged.load<double>(), 2.0);
  EXPECT_EQ(p.staged_count(), 1u);
  EXPECT_EQ(p.slot_bytes(), sizeof(comm::Message));
}

TEST_F(PatternRuntimeTest, ImmortalForwardStagesIntoImmortal) {
  auto p =
      PatternRuntime::make(PatternOp::ImmortalForward, &server_scope_, nullptr);
  const auto& staged = p.stage(message_with(3.0));
  EXPECT_TRUE(rtsj::ImmortalMemory::instance().contains(&staged));
}

TEST_F(PatternRuntimeTest, HandoffStagesTwice) {
  auto p = PatternRuntime::make(PatternOp::Handoff, &server_scope_,
                                &other_scope_);
  const auto& staged = p.stage(message_with(4.0));
  // Final hop lives in the consumer (server) area.
  EXPECT_TRUE(server_scope_.contains(&staged));
  EXPECT_EQ(p.slot_bytes(), 2 * sizeof(comm::Message));
  EXPECT_EQ(staged.load<double>(), 4.0);
}

TEST_F(PatternRuntimeTest, ScopeEnterRunsInsideServerScope) {
  auto p =
      PatternRuntime::make(PatternOp::ScopeEnter, &server_scope_, nullptr);
  EchoServer server;
  int before = server_scope_.reference_count();
  const auto response = p.call(server, message_with(5.0));
  EXPECT_EQ(response.type_id, 42u);
  EXPECT_EQ(server_scope_.reference_count(), before)
      << "enter/exit must balance";
}

TEST_F(PatternRuntimeTest, ScopeEnterRequiresScopedArea) {
  EXPECT_THROW(PatternRuntime::make(PatternOp::ScopeEnter,
                                    &rtsj::ImmortalMemory::instance(),
                                    nullptr),
               std::invalid_argument);
}

TEST_F(PatternRuntimeTest, CopyingSyncCallDeliversStagedRequest) {
  auto p = PatternRuntime::make(PatternOp::DeepCopy, &server_scope_,
                                &server_scope_);
  EchoServer server;
  const auto response = p.call(server, message_with(6.0));
  EXPECT_EQ(response.type_id, 42u);
  EXPECT_EQ(server.observed_area, &server_scope_)
      << "server must see the copy in its own area, not the caller's";
}

TEST_F(PatternRuntimeTest, StagedSlotReusedAcrossSends) {
  auto p = PatternRuntime::make(PatternOp::DeepCopy, &server_scope_,
                                &server_scope_);
  const auto& first = p.stage(message_with(1.0));
  const auto& second = p.stage(message_with(2.0));
  EXPECT_EQ(&first, &second) << "preallocated slot, no per-send allocation";
  EXPECT_EQ(second.load<double>(), 2.0);
  EXPECT_EQ(p.staged_count(), 2u);
}

}  // namespace
}  // namespace rtcf
