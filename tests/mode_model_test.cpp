// Operational modes in the metamodel, the ADL, and the validator
// (MODE-COMPONENT-KNOWN, MODE-DEGRADED-UNIQUE, MODE-SWAPPABLE,
// MODE-SCHEDULABLE).
#include <gtest/gtest.h>

#include "adl/loader.hpp"
#include "scenario/production_scenario.hpp"
#include "validate/validator.hpp"

namespace rtcf {
namespace {

using model::Architecture;
using model::ModeComponentConfig;
using model::ModeDecl;

TEST(ModeModelTest, ModedProductionArchitectureValidates) {
  const auto arch = scenario::make_moded_production_architecture();
  const auto report = validate::validate(arch);
  EXPECT_TRUE(report.ok()) << report.to_string();
  ASSERT_EQ(arch.modes().size(), 3u);
  ASSERT_NE(arch.degraded_mode(), nullptr);
  EXPECT_EQ(arch.degraded_mode()->name, "Degraded");
  EXPECT_TRUE(arch.mode_managed("ProductionLine"));
  EXPECT_FALSE(arch.mode_managed("Console"));
}

TEST(ModeModelTest, AdlRoundTripPreservesModes) {
  const auto arch = scenario::make_moded_production_architecture();
  const std::string xml = adl::save_architecture(arch);
  const auto loaded = adl::load_architecture(xml);

  ASSERT_EQ(loaded.modes().size(), arch.modes().size());
  for (std::size_t i = 0; i < arch.modes().size(); ++i) {
    const ModeDecl& a = arch.modes()[i];
    const ModeDecl& b = loaded.modes()[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.degraded, b.degraded);
    ASSERT_EQ(a.components.size(), b.components.size());
    for (std::size_t j = 0; j < a.components.size(); ++j) {
      EXPECT_EQ(a.components[j].component, b.components[j].component);
      EXPECT_EQ(a.components[j].period, b.components[j].period);
      ASSERT_EQ(a.components[j].contract.has_value(),
                b.components[j].contract.has_value());
      if (a.components[j].contract) {
        EXPECT_EQ(a.components[j].contract->wcet_budget,
                  b.components[j].contract->wcet_budget);
        EXPECT_EQ(a.components[j].contract->miss_ratio_bound,
                  b.components[j].contract->miss_ratio_bound);
        EXPECT_EQ(a.components[j].contract->window,
                  b.components[j].contract->window);
      }
    }
    ASSERT_EQ(a.rebinds.size(), b.rebinds.size());
    for (std::size_t j = 0; j < a.rebinds.size(); ++j) {
      EXPECT_EQ(a.rebinds[j].client, b.rebinds[j].client);
      EXPECT_EQ(a.rebinds[j].port, b.rebinds[j].port);
      EXPECT_EQ(a.rebinds[j].server, b.rebinds[j].server);
    }
  }
  EXPECT_TRUE(loaded.find("ProductionLine")->swappable());
  EXPECT_TRUE(loaded.find("MonitoringSystem")->swappable());
  EXPECT_FALSE(loaded.find("AuditLog")->swappable());
  EXPECT_TRUE(validate::validate(loaded).ok());
}

TEST(ModeModelTest, LoaderParsesModeElements) {
  const auto arch = adl::load_architecture(R"(<Architecture>
    <ActiveComponent name="A" type="periodic" periodicity="5ms" cost="100us"
                     swappable="true">
      <content class="X"/>
    </ActiveComponent>
    <Mode name="Full">
      <Component name="A"/>
    </Mode>
    <Mode name="Slow" degraded="true">
      <Component name="A" periodicity="20ms">
        <TimingContract wcet="1ms" window="4"/>
      </Component>
    </Mode>
  </Architecture>)");
  ASSERT_EQ(arch.modes().size(), 2u);
  EXPECT_FALSE(arch.modes()[0].degraded);
  EXPECT_TRUE(arch.modes()[1].degraded);
  const ModeComponentConfig* slow = arch.modes()[1].find("A");
  ASSERT_NE(slow, nullptr);
  EXPECT_EQ(slow->period, rtsj::RelativeTime::milliseconds(20));
  ASSERT_TRUE(slow->contract.has_value());
  EXPECT_EQ(slow->contract->wcet_budget, rtsj::RelativeTime::milliseconds(1));
  EXPECT_EQ(slow->contract->window, 4u);
  EXPECT_TRUE(arch.find("A")->swappable());
}

TEST(ModeModelTest, ValidatorFlagsUnknownModeComponent) {
  auto arch = scenario::make_moded_production_architecture();
  ModeDecl bad;
  bad.name = "Ghostly";
  bad.components.push_back({"Ghost", {}, {}});
  bad.rebinds.push_back({"Ghost", "iConsole", "Console"});
  arch.add_mode(std::move(bad));
  const auto report = validate::validate(arch);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has_rule("MODE-COMPONENT-KNOWN"));
}

TEST(ModeModelTest, ValidatorRequiresSwappableForDifferingConfig) {
  auto arch = scenario::make_moded_production_architecture();
  arch.find("ProductionLine")->set_swappable(false);
  const auto report = validate::validate(arch);
  EXPECT_FALSE(report.ok());
  ASSERT_TRUE(report.has_rule("MODE-SWAPPABLE"));
  EXPECT_EQ(report.by_rule("MODE-SWAPPABLE").front().subject,
            "ProductionLine");
}

TEST(ModeModelTest, ValidatorChecksRebindLegality) {
  // Signature mismatch: AuditLog serves IAudit, not the port's IConsole.
  auto arch = scenario::make_moded_production_architecture();
  ModeDecl wrong_signature;
  wrong_signature.name = "WrongSignature";
  wrong_signature.components.push_back({"ProductionLine", {}, {}});
  wrong_signature.components.push_back({"MonitoringSystem", {}, {}});
  wrong_signature.components.push_back({"AuditLog", {}, {}});
  wrong_signature.rebinds.push_back(
      {"MonitoringSystem", "iConsole", "AuditLog"});
  arch.add_mode(std::move(wrong_signature));
  const auto mismatch_report = validate::validate(arch);
  EXPECT_FALSE(mismatch_report.ok());
  EXPECT_TRUE(mismatch_report.has_rule("MODE-REBIND-LEGAL"));

  // RTSJ violation: redirecting the NHRT monitoring system's synchronous
  // console calls into heap state has no legal pattern.
  auto heap_arch = scenario::make_moded_production_architecture();
  auto& heap_console = heap_arch.add_passive("HeapConsole");
  heap_console.set_content_class("ConsoleImpl");
  heap_console.add_interface(
      {"iConsole", model::InterfaceRole::Server, "IConsole"});
  heap_arch.add_child(*heap_arch.find("H1"), heap_console);
  ModeDecl into_heap;
  into_heap.name = "IntoHeap";
  into_heap.components.push_back({"ProductionLine", {}, {}});
  into_heap.components.push_back({"MonitoringSystem", {}, {}});
  into_heap.components.push_back({"AuditLog", {}, {}});
  into_heap.rebinds.push_back({"MonitoringSystem", "iConsole", "HeapConsole"});
  heap_arch.add_mode(std::move(into_heap));
  const auto heap_report = validate::validate(heap_arch);
  EXPECT_FALSE(heap_report.ok());
  EXPECT_TRUE(heap_report.has_rule("MODE-REBIND-LEGAL"));
}

TEST(ModeModelTest, ValidatorRequiresSwappableRebindClient) {
  auto arch = scenario::make_moded_production_architecture();
  arch.find("MonitoringSystem")->set_swappable(false);
  const auto report = validate::validate(arch);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has_rule("MODE-SWAPPABLE"));
}

TEST(ModeModelTest, ValidatorChecksPerModeSchedulability) {
  auto arch = scenario::make_moded_production_architecture();
  // An "Overdrive" mode running the 200 us producer every 100 us is over
  // 100 % utilization on its own — unschedulable however it is dispatched.
  ModeDecl overdrive;
  overdrive.name = "Overdrive";
  ModeComponentConfig fast;
  fast.component = "ProductionLine";
  fast.period = rtsj::RelativeTime::microseconds(100);
  overdrive.components.push_back(std::move(fast));
  overdrive.components.push_back({"MonitoringSystem", {}, {}});
  overdrive.components.push_back({"AuditLog", {}, {}});
  arch.add_mode(std::move(overdrive));
  const auto report = validate::validate(arch);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has_rule("MODE-SCHEDULABLE"));
  // The declared modes stay schedulable — only the new one is flagged.
  for (const auto& d : report.by_rule("MODE-SCHEDULABLE")) {
    EXPECT_EQ(d.subject, "Overdrive");
  }
}

TEST(ModeModelTest, ValidatorFlagsDuplicateDegradedModes) {
  auto arch = scenario::make_moded_production_architecture();
  ModeDecl second;
  second.name = "AlsoDegraded";
  second.degraded = true;
  second.components.push_back({"ProductionLine", {}, {}});
  second.components.push_back({"MonitoringSystem", {}, {}});
  second.components.push_back({"AuditLog", {}, {}});
  arch.add_mode(std::move(second));
  const auto report = validate::validate(arch);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has_rule("MODE-DEGRADED-UNIQUE"));
}

TEST(ModeModelTest, ArchitecturesWithoutModesGetNoModeDiagnostics) {
  const auto arch = scenario::make_production_architecture();
  const auto report = validate::validate(arch);
  EXPECT_TRUE(report.ok()) << report.to_string();
  for (const auto& d : report.diagnostics()) {
    EXPECT_EQ(d.rule.rfind("MODE-", 0), std::string::npos) << d.to_string();
  }
}

}  // namespace
}  // namespace rtcf
