// rtsj::Ref<T>: the RTSJ assignment rules and the NHRT read barrier.
#include <gtest/gtest.h>

#include "rtsj/memory/ref.hpp"

namespace rtcf::rtsj {
namespace {

struct Node {
  Ref<int> value;
};

TEST(RefTest, NullIsAlwaysStorable) {
  ScopedMemory scope("ref-null", 4096);
  auto* node = scope.make<Node>();
  EXPECT_NO_THROW(node->value = nullptr);
  EXPECT_FALSE(static_cast<bool>(node->value));
}

TEST(RefTest, StackHoldersMayReferenceAnything) {
  ScopedMemory scope("ref-stack", 4096);
  auto* scoped_int = scope.make<int>(1);
  auto* heap_int = HeapMemory::instance().make<int>(2);
  auto* immortal_int = ImmortalMemory::instance().make<int>(3);
  Node local;  // lives on the C++ stack: a "local variable" in RTSJ terms
  EXPECT_NO_THROW(local.value = scoped_int);
  EXPECT_NO_THROW(local.value = heap_int);
  EXPECT_NO_THROW(local.value = immortal_int);
}

TEST(RefTest, AnyAreaMayReferenceImmortal) {
  ScopedMemory scope("ref-imm", 4096);
  auto* immortal_int = ImmortalMemory::instance().make<int>(9);
  auto* scoped_node = scope.make<Node>();
  auto* heap_node = HeapMemory::instance().make<Node>();
  auto* immortal_node = ImmortalMemory::instance().make<Node>();
  EXPECT_NO_THROW(scoped_node->value = immortal_int);
  EXPECT_NO_THROW(heap_node->value = immortal_int);
  EXPECT_NO_THROW(immortal_node->value = immortal_int);
}

TEST(RefTest, HeapAndImmortalMayNotReferenceScoped) {
  ScopedMemory scope("ref-illegal", 4096);
  auto* scoped_int = scope.make<int>(5);
  auto* heap_node = HeapMemory::instance().make<Node>();
  auto* immortal_node = ImmortalMemory::instance().make<Node>();
  EXPECT_THROW(heap_node->value = scoped_int, IllegalAssignmentError);
  EXPECT_THROW(immortal_node->value = scoped_int, IllegalAssignmentError);
}

TEST(RefTest, InnerScopeMayReferenceOuterButNotViceVersa) {
  ScopedMemory outer("ref-outer", 4096);
  ScopedMemory inner("ref-inner", 4096);
  outer.enter([&] {
    auto* outer_int = outer.make<int>(1);
    auto* outer_node = outer.make<Node>();
    inner.enter([&] {
      auto* inner_int = inner.make<int>(2);
      auto* inner_node = inner.make<Node>();
      EXPECT_NO_THROW(inner_node->value = outer_int);
      EXPECT_THROW(outer_node->value = inner_int, IllegalAssignmentError);
    });
  });
}

TEST(RefTest, SiblingScopesMayNotReferenceEachOther) {
  ScopedMemory a("ref-sib-a", 4096);
  ScopedMemory b("ref-sib-b", 4096);
  ThreadContext wedge_a("wa", ThreadKind::Realtime, 20,
                        &ImmortalMemory::instance());
  ThreadContext wedge_b("wb", ThreadKind::Realtime, 20,
                        &ImmortalMemory::instance());
  ScopePin pin_a(a, wedge_a);
  ScopePin pin_b(b, wedge_b);
  auto* in_a = a.make<int>(1);
  auto* node_b = b.make<Node>();
  EXPECT_THROW(node_b->value = in_a, IllegalAssignmentError);
}

TEST(RefTest, NhrtReadBarrierOnHeapTargets) {
  auto* heap_int = HeapMemory::instance().make<int>(11);
  Node local;
  local.value = heap_int;

  ThreadContext nhrt("ref-nhrt", ThreadKind::NoHeapRealtime, 30,
                     &ImmortalMemory::instance());
  {
    ContextGuard guard(nhrt);
    EXPECT_THROW((void)*local.value, MemoryAccessError);
    EXPECT_THROW((void)local.value.get(), MemoryAccessError);
    // raw() is the unchecked escape hatch for infrastructure.
    EXPECT_EQ(local.value.raw(), heap_int);
  }
  // Off the NHRT, the same reference reads fine.
  EXPECT_EQ(*local.value, 11);
}

TEST(RefTest, NhrtMayReadImmortalAndScoped) {
  ScopedMemory scope("ref-nhrt-ok", 4096);
  ThreadContext wedge("w", ThreadKind::Realtime, 20,
                      &ImmortalMemory::instance());
  ScopePin pin(scope, wedge);
  auto* scoped_int = scope.make<int>(21);
  auto* immortal_int = ImmortalMemory::instance().make<int>(22);
  Node local;
  ThreadContext nhrt("ref-nhrt2", ThreadKind::NoHeapRealtime, 30,
                     &ImmortalMemory::instance());
  ContextGuard guard(nhrt);
  local.value = scoped_int;
  EXPECT_EQ(*local.value, 21);
  local.value = immortal_int;
  EXPECT_EQ(*local.value, 22);
}

TEST(RefTest, CopyPropagatesChecks) {
  ScopedMemory scope("ref-copy", 4096);
  auto* scoped_int = scope.make<int>(7);
  Node local;
  local.value = scoped_int;
  // Copy-assigning into a heap-held Ref re-runs the store check.
  auto* heap_node = HeapMemory::instance().make<Node>();
  EXPECT_THROW(heap_node->value = local.value, IllegalAssignmentError);
}

TEST(RefTest, TargetAreaIsCachedAtStore) {
  auto* heap_int = HeapMemory::instance().make<int>(1);
  Node local;
  local.value = heap_int;
  EXPECT_EQ(local.value.target_area(), &HeapMemory::instance());
  int stack_int = 2;
  local.value = &stack_int;
  EXPECT_EQ(local.value.target_area(), nullptr);
}

}  // namespace
}  // namespace rtcf::rtsj
