// Response-time analysis, including cross-validation against the
// discrete-event simulator: the analytic bound must dominate every
// simulated response, and be exact for the highest-priority task.
#include <gtest/gtest.h>

#include <random>

#include "scenario/production_scenario.hpp"
#include "sim/rta.hpp"
#include "sim/scheduler.hpp"

namespace rtcf::sim {
namespace {

using rtsj::RelativeTime;

RtaTask task(const char* name, int priority, std::int64_t period_us,
             std::int64_t cost_us) {
  RtaTask t;
  t.name = name;
  t.priority = priority;
  t.period = RelativeTime::microseconds(period_us);
  t.cost = RelativeTime::microseconds(cost_us);
  return t;
}

TEST(RtaTest, HighestPriorityTaskBoundEqualsItsCost) {
  const std::vector<RtaTask> tasks = {
      task("hi", 30, 10'000, 1'000),
      task("lo", 20, 20'000, 5'000),
  };
  const auto bound = response_time_bound(tasks, 0);
  ASSERT_TRUE(bound.has_value());
  EXPECT_EQ(*bound, RelativeTime::microseconds(1'000));
}

TEST(RtaTest, ClassicTextbookExample) {
  // Liu & Layland-style set: T=(7,2), (12,3), (20,5), priorities by rate.
  const std::vector<RtaTask> tasks = {
      task("t1", 30, 7'000, 2'000),
      task("t2", 25, 12'000, 3'000),
      task("t3", 20, 20'000, 5'000),
  };
  const auto r1 = response_time_bound(tasks, 0);
  const auto r2 = response_time_bound(tasks, 1);
  const auto r3 = response_time_bound(tasks, 2);
  ASSERT_TRUE(r1 && r2 && r3);
  EXPECT_EQ(r1->to_micros(), 2'000);
  EXPECT_EQ(r2->to_micros(), 5'000);  // 3 + 2
  // W3: 5 + 2*ceil(W/7) + 3*ceil(W/12) converges at 12 (two t1 releases,
  // one t2 release inside [0, 12)).
  EXPECT_EQ(r3->to_micros(), 12'000);
  EXPECT_TRUE(analyze(tasks).all_schedulable);
}

TEST(RtaTest, OverloadedSetIsUnschedulable) {
  const std::vector<RtaTask> tasks = {
      task("a", 30, 10'000, 6'000),
      task("b", 20, 10'000, 6'000),  // 120 % utilization
  };
  const auto result = analyze(tasks);
  EXPECT_FALSE(result.all_schedulable);
  EXPECT_TRUE(result.entries[0].schedulable);
  EXPECT_FALSE(result.entries[1].schedulable);
}

TEST(RtaTest, ArchitectureExtraction) {
  const auto arch = scenario::make_production_architecture();
  const auto tasks = tasks_from_architecture(arch);
  // Only ProductionLine qualifies (periodic with cost); the sporadic
  // components are unconstrained.
  ASSERT_EQ(tasks.size(), 1u);
  EXPECT_EQ(tasks[0].name, "ProductionLine");
  EXPECT_EQ(tasks[0].priority, 30);
  EXPECT_EQ(tasks[0].period, RelativeTime::milliseconds(10));
  const auto result = analyze(tasks);
  EXPECT_TRUE(result.all_schedulable);
}

class RtaVsSimulatorProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(RtaVsSimulatorProperty, AnalyticBoundDominatesSimulation) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<std::int64_t> period_us(5'000, 50'000);
  std::uniform_int_distribution<int> task_count(2, 6);

  const int n = task_count(rng);
  std::vector<std::int64_t> periods;
  for (int i = 0; i < n; ++i) periods.push_back(period_us(rng));
  // Rate-monotonic priorities (shortest period highest): the Liu & Layland
  // bound guarantees schedulability at 60 % total utilization.
  std::sort(periods.begin(), periods.end());
  std::vector<RtaTask> tasks;
  for (int i = 0; i < n; ++i) {
    tasks.push_back(
        task(("t" + std::to_string(i)).c_str(), 35 - i, periods[i],
             std::max<std::int64_t>(periods[i] * 6 / (10 * n), 1)));
  }
  const auto result = analyze(tasks);
  ASSERT_TRUE(result.all_schedulable)
      << "60 % utilization under RM priorities must fit";

  PreemptiveScheduler sched;
  std::vector<TaskId> ids;
  for (const auto& t : tasks) {
    TaskConfig cfg;
    cfg.name = t.name;
    cfg.priority = t.priority;
    cfg.release = ReleaseKind::Periodic;
    cfg.period = t.period;
    cfg.cost = t.cost;
    ids.push_back(sched.add_task(std::move(cfg)));
  }
  sched.run_until(rtsj::AbsoluteTime::epoch() + RelativeTime::seconds(5));

  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const auto& stats = sched.stats(ids[i]);
    ASSERT_GT(stats.releases_completed, 0u);
    const double bound_us = result.entries[i].response->to_micros();
    EXPECT_LE(stats.response_times_us.max(), bound_us + 1e-9)
        << tasks[i].name << ": simulation exceeded the analytic bound";
  }
  // The bound is *tight* for the top-priority task.
  EXPECT_DOUBLE_EQ(sched.stats(ids[0]).response_times_us.max(),
                   result.entries[0].response->to_micros());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RtaVsSimulatorProperty,
                         ::testing::Values(7u, 21u, 63u, 189u, 567u));

}  // namespace
}  // namespace rtcf::sim
