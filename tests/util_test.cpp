// util: stats, histogram, arena, ring buffers, table rendering.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "util/arena.hpp"
#include "util/ring_buffer.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace rtcf::util {
namespace {

TEST(OnlineStatsTest, MeanVarianceMinMax) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStatsTest, DegenerateCases) {
  OnlineStats s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(SampleSetTest, PercentilesInterpolate) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.median(), 50.5);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.percentile(99), 99.01, 1e-9);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_THROW((void)s.percentile(101), std::invalid_argument);
}

TEST(SampleSetTest, JitterIsMeanAbsoluteDeviationFromMedian) {
  SampleSet s;
  for (double x : {10.0, 10.0, 10.0, 14.0, 6.0}) s.add(x);
  // median = 10; deviations: 0,0,0,4,4 -> jitter = 8/5.
  EXPECT_DOUBLE_EQ(s.jitter(), 1.6);
  EXPECT_DOUBLE_EQ(s.worst_case_deviation(), 4.0);
}

TEST(SampleSetTest, LazySortSurvivesInterleavedAdds) {
  SampleSet s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  s.add(1.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
}

TEST(HistogramTest, BucketsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  for (double x : {0.5, 1.5, 1.7, 9.9, -1.0, 10.0, 25.0}) h.add(x);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(9), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 7u);
  EXPECT_DOUBLE_EQ(h.bucket_low(1), 1.0);
  // CSV has one line per bucket.
  const std::string csv = h.to_csv();
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 10);
}

TEST(ArenaTest, BumpAllocationAndAlignment) {
  Arena arena(1024);
  void* a = arena.allocate(10, 8);
  void* b = arena.allocate(10, 64);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 64, 0u);
  EXPECT_EQ(arena.consumed(), 20u);
  EXPECT_TRUE(arena.contains(a));
  EXPECT_TRUE(arena.contains(b));
  int on_stack = 0;
  EXPECT_FALSE(arena.contains(&on_stack));
}

TEST(ArenaTest, FixedArenaRefusesOverflow) {
  Arena arena(64, /*fixed=*/true);
  EXPECT_NE(arena.allocate(48, 8), nullptr);
  EXPECT_EQ(arena.allocate(64, 8), nullptr);
}

TEST(ArenaTest, GrowableArenaChainsChunks) {
  Arena arena(64, /*fixed=*/false);
  for (int i = 0; i < 100; ++i) {
    EXPECT_NE(arena.allocate(64, 8), nullptr);
  }
  EXPECT_GE(arena.capacity(), 100u * 64u);
}

TEST(ArenaTest, ResetRewindsAndTracksHighWater) {
  Arena arena(1024);
  arena.allocate(512, 8);
  EXPECT_EQ(arena.high_water_mark(), 512u);
  arena.reset();
  EXPECT_EQ(arena.consumed(), 0u);
  EXPECT_EQ(arena.high_water_mark(), 512u);
  arena.allocate(128, 8);
  EXPECT_EQ(arena.high_water_mark(), 512u);
}

TEST(RingBufferTest, FifoOrderAndCapacity) {
  RingBuffer<int> ring(3);
  EXPECT_TRUE(ring.push(1));
  EXPECT_TRUE(ring.push(2));
  EXPECT_TRUE(ring.push(3));
  EXPECT_FALSE(ring.push(4)) << "full";
  EXPECT_EQ(ring.pop(), 1);
  EXPECT_TRUE(ring.push(4));
  EXPECT_EQ(ring.pop(), 2);
  EXPECT_EQ(ring.pop(), 3);
  EXPECT_EQ(ring.pop(), 4);
  EXPECT_EQ(ring.pop(), std::nullopt);
}

TEST(RingBufferTest, WrapAroundManyTimes) {
  RingBuffer<int> ring(5);
  for (int round = 0; round < 1000; ++round) {
    EXPECT_TRUE(ring.push(round));
    EXPECT_EQ(ring.pop(), round);
  }
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRingBufferTest, SingleThreadedSemantics) {
  SpscRingBuffer<int> ring(2);
  EXPECT_TRUE(ring.push(1));
  EXPECT_TRUE(ring.push(2));
  EXPECT_FALSE(ring.push(3));
  EXPECT_EQ(ring.pop(), 1);
  EXPECT_EQ(ring.pop(), 2);
  EXPECT_EQ(ring.pop(), std::nullopt);
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRingBufferTest, CrossThreadTransfer) {
  SpscRingBuffer<int> ring(64);
  constexpr int kCount = 100'000;
  std::thread producer([&] {
    for (int i = 0; i < kCount; ++i) {
      while (!ring.push(i)) {
      }
    }
  });
  long long sum = 0;
  int received = 0;
  while (received < kCount) {
    if (auto v = ring.pop()) {
      sum += *v;
      ++received;
    }
  }
  producer.join();
  EXPECT_EQ(sum, static_cast<long long>(kCount) * (kCount - 1) / 2);
}

TEST(TableTest, AlignedRenderingAndCsv) {
  Table t({"Name", "Value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string rendered = t.to_string();
  EXPECT_NE(rendered.find("| Name"), std::string::npos);
  EXPECT_NE(rendered.find("| longer"), std::string::npos);
  EXPECT_EQ(t.to_csv(), "Name,Value\nx,1\nlonger,22\n");
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TableTest, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::bytes(2048), "2048 bytes (2.0 KB)");
}

}  // namespace
}  // namespace rtcf::util
