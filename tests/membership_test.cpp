// Elastic-cluster membership end to end (ctest label: membership).
//
// Real NodeRuntimes over loopback channels exercise the membership plane
// of docs/MEMBERSHIP.md: join (admit + re-shard onto the joiner), leave
// (drain-first eviction with a zero-loss audit), rejoin after eviction,
// standby takeover mid-PREPARE and mid-COMMIT (lease expiry, promotion,
// decision redrive), stale-coordinator fencing by epoch, the misrouted-
// control-frame counter, and a byte-for-byte replay of a 16-node churn
// drill through the adversity engine.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "adversity/drill.hpp"
#include "dist/coordinator.hpp"
#include "dist/node_runtime.hpp"
#include "dist/plan_codec.hpp"
#include "dist/standby.hpp"
#include "runtime/content_registry.hpp"

namespace rtcf::dist {
namespace {

using model::ActivationKind;
using model::Architecture;
using model::Binding;
using model::Criticality;
using model::DomainType;
using model::InterfaceRole;
using model::Protocol;
using validate::NodeMap;

class PulseImpl final : public comm::Content {
 public:
  void on_release() override {
    comm::Message m;
    m.sequence = ++sent_;
    port(0).send(m);
  }
  std::uint64_t sent() const noexcept { return sent_; }

 private:
  std::uint64_t sent_ = 0;
};

class DrainImpl final : public comm::Content {
 public:
  void on_message(const comm::Message&) override { ++received_; }
  std::uint64_t received() const noexcept { return received_; }

 private:
  std::uint64_t received_ = 0;
};

RTCF_REGISTER_CONTENT(PulseImpl)
RTCF_REGISTER_CONTENT(DrainImpl)

/// Producer --async--> <sink_name> (placement decided by the NodeMap).
Architecture pipeline_arch(const char* sink_name = "Sink") {
  Architecture arch;
  auto& producer = arch.add_active("Producer", ActivationKind::Periodic,
                                   rtsj::RelativeTime::milliseconds(5));
  producer.set_content_class("PulseImpl");
  producer.set_cost(rtsj::RelativeTime::microseconds(30));
  producer.set_swappable(true);
  producer.add_interface({"out", InterfaceRole::Client, "ISink"});
  auto& sink = arch.add_active(sink_name, ActivationKind::Sporadic);
  sink.set_content_class("DrainImpl");
  sink.set_criticality(Criticality::Low);
  sink.set_swappable(true);
  sink.add_interface({"in", InterfaceRole::Server, "ISink"});
  Binding binding;
  binding.client = {"Producer", "out"};
  binding.server = {sink_name, "in"};
  binding.desc.protocol = Protocol::Asynchronous;
  binding.desc.buffer_size = 64;
  arch.add_binding(binding);
  auto& rt = arch.add_thread_domain("RT_A", DomainType::Realtime, 20);
  arch.add_child(rt, producer);
  auto& reg = arch.add_thread_domain("reg_B", DomainType::Regular, 5);
  arch.add_child(reg, sink);
  model::ModeDecl normal;
  normal.name = "Normal";
  normal.components.push_back({"Producer", rtsj::RelativeTime::zero(), {}});
  normal.components.push_back({sink_name, rtsj::RelativeTime::zero(), {}});
  arch.add_mode(std::move(normal));
  // Sink-only mode: a coordinated transition into it stops the producer
  // while the sink keeps draining — the exact-conservation anchor of the
  // join/drain audit below.
  model::ModeDecl quiesce;
  quiesce.name = "Quiesce";
  quiesce.components.push_back({sink_name, rtsj::RelativeTime::zero(), {}});
  arch.add_mode(std::move(quiesce));
  return arch;
}

NodeMap two_node_map() {
  NodeMap map;
  map.nodes = {"alpha", "beta"};
  map.assignment = {{"Producer", "alpha"}, {"Sink", "beta"}};
  return map;
}

/// The truthful pre-join view with gamma declared but empty — what a
/// candidate NodeRuntime boots with (its initial slice is the empty
/// slice, the admission baseline of docs/MEMBERSHIP.md §2).
NodeMap candidate_map() {
  NodeMap map;
  map.nodes = {"alpha", "beta", "gamma"};
  map.assignment = {{"Producer", "alpha"}, {"Sink", "beta"}};
  return map;
}

NodeMap three_node_map(const char* sink_owner) {
  NodeMap map;
  map.nodes = {"alpha", "beta", "gamma"};
  map.assignment = {{"Producer", "alpha"}, {"Sink", sink_owner}};
  return map;
}

void sleep_ms(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

TEST(MembershipTest, JoinDrainLeaveRejoinWithZeroLossAudit) {
  const Architecture global = pipeline_arch();
  const NodeMap map = two_node_map();

  NodeRuntime::Options options;
  options.run_duration = rtsj::RelativeTime::milliseconds(3200);
  NodeRuntime alpha(global, map, "alpha", options);
  NodeRuntime beta(global, map, "beta", options);
  NodeRuntime::Options gamma_options = options;
  gamma_options.run_duration = rtsj::RelativeTime::milliseconds(1600);
  NodeRuntime gamma(global, candidate_map(), "gamma", gamma_options);

  ReconfigCoordinator::Options copts;
  copts.prepare_timeout = rtsj::RelativeTime::milliseconds(1500);
  ReconfigCoordinator coordinator(map, copts);
  auto [a_node, a_coord] = comm::LoopbackChannel::make_pair();
  auto [b_node, b_coord] = comm::LoopbackChannel::make_pair();
  auto [g_node, g_coord] = comm::LoopbackChannel::make_pair();
  alpha.attach_control(a_node);
  beta.attach_control(b_node);
  gamma.attach_control(g_node);
  coordinator.attach("alpha", a_coord, global);
  coordinator.attach("beta", b_coord, global);
  coordinator.stage_candidate("gamma", g_coord);
  auto [ab, ba] = comm::LoopbackChannel::make_pair();
  alpha.connect_peer("beta", ab);
  beta.connect_peer("alpha", ba);
  auto [ag, ga] = comm::LoopbackChannel::make_pair();
  alpha.connect_peer("gamma", ag);
  gamma.connect_peer("alpha", ga);
  auto [bg, gb] = comm::LoopbackChannel::make_pair();
  beta.connect_peer("gamma", bg);
  gamma.connect_peer("beta", gb);

  alpha.start();
  beta.start();
  gamma.start();
  sleep_ms(120);  // traffic flows Producer@alpha -> Sink@beta

  // --- Join: gamma asks in; the re-shard moves Sink onto it. ----------
  const std::uint64_t epoch_before = coordinator.membership().epoch;
  EXPECT_TRUE(gamma.request_join());
  const auto join_request = coordinator.poll_membership_request(
      rtsj::RelativeTime::milliseconds(500));
  ASSERT_TRUE(join_request.has_value());
  EXPECT_TRUE(join_request->join);
  EXPECT_EQ(join_request->node, "gamma");
  EXPECT_EQ(join_request->resync_epoch, gamma.mode_manager().plan_epoch());

  const auto admitted =
      coordinator.admit_node("gamma", global, three_node_map("gamma"));
  EXPECT_TRUE(admitted.committed)
      << admitted.reason << "\n"
      << admitted.report.to_string();
  EXPECT_TRUE(coordinator.membership().map.has_node("gamma"));
  // admit (+1) and the committed re-shard (+1) both advance the view.
  EXPECT_EQ(coordinator.membership().epoch, epoch_before + 2);
  EXPECT_NE(gamma.application().assembly().find("Sink"), nullptr);
  EXPECT_EQ(beta.application().assembly().find("Sink"), nullptr);
  sleep_ms(150);  // traffic flows Producer@alpha -> Sink@gamma

  // --- Leave: gamma drains out; Sink lands next to the producer. ------
  EXPECT_TRUE(gamma.request_leave("maintenance window"));
  const auto leave_request = coordinator.poll_membership_request(
      rtsj::RelativeTime::milliseconds(500));
  ASSERT_TRUE(leave_request.has_value());
  EXPECT_FALSE(leave_request->join);
  EXPECT_EQ(leave_request->node, "gamma");
  EXPECT_EQ(leave_request->reason, "maintenance window");

  const std::uint64_t epoch_mid = coordinator.membership().epoch;
  const auto drained =
      coordinator.drain_node("gamma", global, three_node_map("alpha"));
  EXPECT_TRUE(drained.committed)
      << drained.reason << "\n"
      << drained.report.to_string();
  EXPECT_FALSE(coordinator.membership().map.has_node("gamma"));
  // re-shard (+1) then eviction (+1): drain-first, per MEMBERSHIP.md §2.
  EXPECT_EQ(coordinator.membership().epoch, epoch_mid + 2);
  EXPECT_NE(alpha.application().assembly().find("Sink"), nullptr);
  EXPECT_EQ(gamma.application().assembly().find("Sink"), nullptr);
  sleep_ms(150);  // traffic flows locally on alpha

  // Freeze the producer with a coordinated transition into the sink-only
  // mode; the sink drains what is still buffered, so the conservation
  // audit below is exact — not raced by the shutdown instant.
  const auto quiesced = coordinator.coordinate_transition("Quiesce");
  EXPECT_TRUE(quiesced.committed) << quiesced.reason;
  sleep_ms(120);

  gamma.stop();

  // --- Rejoin: the evicted node restarts and is admitted again with the
  // empty slice. The same-assignment re-shard is a cluster no-op, so the
  // reload aborts — but admission is unconditional: gamma is a member
  // holding the empty slice, and a later reload may shard onto it.
  NodeRuntime::Options rejoin_options = options;
  rejoin_options.run_duration = rtsj::RelativeTime::milliseconds(900);
  NodeRuntime gamma_again(global, three_node_map("alpha"), "gamma",
                          rejoin_options);
  auto [g2_node, g2_coord] = comm::LoopbackChannel::make_pair();
  gamma_again.attach_control(g2_node);
  coordinator.stage_candidate("gamma", g2_coord);
  gamma_again.start();
  EXPECT_TRUE(gamma_again.request_join());
  const auto rejoin_request = coordinator.poll_membership_request(
      rtsj::RelativeTime::milliseconds(500));
  ASSERT_TRUE(rejoin_request.has_value());
  EXPECT_TRUE(rejoin_request->join);

  const std::uint64_t epoch_rejoin = coordinator.membership().epoch;
  const auto readmitted =
      coordinator.admit_node("gamma", global, three_node_map("alpha"));
  EXPECT_FALSE(readmitted.committed);  // empty delta everywhere: no-op
  EXPECT_TRUE(coordinator.membership().map.has_node("gamma"));
  EXPECT_EQ(coordinator.membership().epoch, epoch_rejoin + 1);
  gamma_again.stop();

  alpha.stop();
  beta.stop();

  // --- Zero-loss audit: every message the producer sent across all four
  // placements (beta, gamma, local alpha) was received by exactly one
  // Sink incarnation — the drain-leave lost nothing.
  const auto* producer =
      dynamic_cast<const PulseImpl*>(alpha.application().content("Producer"));
  const auto* sink_beta =
      dynamic_cast<const DrainImpl*>(beta.application().content("Sink"));
  const auto* sink_gamma =
      dynamic_cast<const DrainImpl*>(gamma.application().content("Sink"));
  const auto* sink_alpha =
      dynamic_cast<const DrainImpl*>(alpha.application().content("Sink"));
  ASSERT_NE(producer, nullptr);
  ASSERT_NE(sink_beta, nullptr);
  ASSERT_NE(sink_gamma, nullptr);
  ASSERT_NE(sink_alpha, nullptr);
  EXPECT_GT(sink_beta->received(), 0u) << "pre-join traffic must arrive";
  EXPECT_GT(sink_gamma->received(), 0u) << "post-join traffic must arrive";
  EXPECT_GT(sink_alpha->received(), 0u) << "post-leave traffic must arrive";
  const auto a_stats = alpha.gateway_stats();
  const auto b_stats = beta.gateway_stats();
  const auto g_stats = gamma.gateway_stats();
  EXPECT_EQ(producer->sent(), sink_beta->received() +
                                  sink_gamma->received() +
                                  sink_alpha->received())
      << "alpha fwd=" << a_stats.forwarded << " exit_drop="
      << a_stats.exit_dropped << " inj=" << a_stats.injected
      << " entry_drop=" << a_stats.entry_dropped
      << " inbox=" << alpha.inbox_depth()
      << "\nbeta fwd=" << b_stats.forwarded << " exit_drop="
      << b_stats.exit_dropped << " inj=" << b_stats.injected
      << " entry_drop=" << b_stats.entry_dropped
      << " inbox=" << beta.inbox_depth()
      << "\ngamma fwd=" << g_stats.forwarded << " exit_drop="
      << g_stats.exit_dropped << " inj=" << g_stats.injected
      << " entry_drop=" << g_stats.entry_dropped
      << " inbox=" << gamma.inbox_depth();
}

/// Two nodes, an active coordinator with fault hooks, and a standby
/// shadowing the decision log on a feed channel. The standby shares the
/// coordinator-side channel handles — exactly what a promotion owns.
struct StandbyCluster {
  Architecture global = pipeline_arch("Sink");
  Architecture target = pipeline_arch("Sink2");
  NodeMap map;
  std::unique_ptr<NodeRuntime> alpha;
  std::unique_ptr<NodeRuntime> beta;
  std::unique_ptr<ReconfigCoordinator> coordinator;
  std::unique_ptr<StandbyCoordinator> standby;
  std::shared_ptr<comm::Channel> a_coord;
  std::shared_ptr<comm::Channel> b_coord;

  explicit StandbyCluster(NodeRuntime::Options options) {
    map.nodes = {"alpha", "beta"};
    map.assignment = {{"Producer", "alpha"}, {"Sink", "beta"},
                      {"Sink2", "beta"}};
    alpha = std::make_unique<NodeRuntime>(global, map, "alpha", options);
    beta = std::make_unique<NodeRuntime>(global, map, "beta", options);
    ReconfigCoordinator::Options copts;
    copts.prepare_timeout = rtsj::RelativeTime::milliseconds(1500);
    copts.decision_timeout = rtsj::RelativeTime::milliseconds(400);
    coordinator = std::make_unique<ReconfigCoordinator>(map, copts);
    auto [a_node, a_c] = comm::LoopbackChannel::make_pair();
    auto [b_node, b_c] = comm::LoopbackChannel::make_pair();
    a_coord = a_c;
    b_coord = b_c;
    alpha->attach_control(a_node);
    beta->attach_control(b_node);
    coordinator->attach("alpha", a_coord, global);
    coordinator->attach("beta", b_coord, global);
    auto [ab, ba] = comm::LoopbackChannel::make_pair();
    alpha->connect_peer("beta", ab);
    beta->connect_peer("alpha", ba);

    validate::MembershipView initial;
    initial.map = map;
    StandbyCoordinator::Options sopts;
    sopts.coordinator = copts;
    standby =
        std::make_unique<StandbyCoordinator>("standby-1", initial, sopts);
    auto [feed_tx, feed_rx] = comm::LoopbackChannel::make_pair();
    coordinator->attach_standby(feed_tx);
    standby->attach_feed(feed_rx);
    standby->attach_node("alpha", a_coord);
    standby->attach_node("beta", b_coord);
  }
};

TEST(MembershipTest, StandbyTakeoverMidCommitRedrivesTheDurableDecision) {
  NodeRuntime::Options options;
  options.run_duration = rtsj::RelativeTime::milliseconds(3500);
  options.decision_timeout = rtsj::RelativeTime::milliseconds(3000);
  StandbyCluster cluster(options);
  cluster.alpha->start();
  cluster.beta->start();
  sleep_ms(100);

  const std::uint64_t alpha_epoch =
      cluster.alpha->mode_manager().plan_epoch();
  const std::uint64_t beta_epoch = cluster.beta->mode_manager().plan_epoch();

  // The coordinator dies after streaming the decision record but before
  // any COMMIT frame leaves: the decision is durable, undistributed.
  ReconfigCoordinator::FaultHooks hooks;
  hooks.before_decision = [](const std::string&, std::uint64_t, bool) {
    return false;
  };
  cluster.coordinator->set_fault_hooks(&hooks);
  const auto crashed = cluster.coordinator->coordinate_reload(cluster.target);
  cluster.coordinator->set_fault_hooks(nullptr);
  EXPECT_FALSE(crashed.committed);
  EXPECT_NE(crashed.reason.find("crashed mid-decision"), std::string::npos)
      << crashed.reason;

  // The standby holds the record; after the lease lapses it promotes,
  // fences the predecessor, and redrives the decision.
  EXPECT_EQ(cluster.standby->pump(rtsj::RelativeTime::milliseconds(400)), 1u);
  ASSERT_TRUE(cluster.standby->last_record().has_value());
  const StandbySyncPayload record = *cluster.standby->last_record();
  EXPECT_EQ(record.committed, 1);
  sleep_ms(350);
  EXPECT_TRUE(cluster.standby->lease_expired());

  ReconfigCoordinator& promoted = cluster.standby->promote(
      cluster.global, rtsj::RelativeTime::milliseconds(800));
  EXPECT_EQ(promoted.coord_epoch(), 2u);
  const auto redriven = cluster.standby->redrive_last();
  ASSERT_TRUE(redriven.has_value());
  EXPECT_TRUE(redriven->committed);
  ASSERT_EQ(redriven->nodes.size(), 2u);
  EXPECT_TRUE(redriven->nodes[0].committed) << redriven->nodes[0].detail;
  EXPECT_TRUE(redriven->nodes[1].committed) << redriven->nodes[1].detail;

  // Both nodes applied the redriven transition: new structure, epoch + 1.
  EXPECT_EQ(cluster.alpha->mode_manager().plan_epoch(), alpha_epoch + 1);
  EXPECT_EQ(cluster.beta->mode_manager().plan_epoch(), beta_epoch + 1);
  EXPECT_NE(cluster.beta->application().assembly().find("Sink2"), nullptr);
  EXPECT_EQ(cluster.beta->application().assembly().find("Sink"), nullptr);
  EXPECT_EQ(cluster.alpha->coord_epoch_seen(), 2u);
  EXPECT_EQ(cluster.beta->coord_epoch_seen(), 2u);

  // The record replicated each node's post-commit snapshot as canonical
  // plan-codec bytes: the promoted coordinator's baseline re-encodes to
  // exactly those bytes (MEMBERSHIP.md §3).
  for (const StandbyNodeRecord& entry : record.nodes) {
    EXPECT_EQ(encode_plan(promoted.node_snapshot(entry.node)),
              entry.snapshot)
        << "node " << entry.node;
  }

  // The fenced predecessor can no longer move the cluster: its prepares
  // carry epoch 1 < 2 and every node vetoes. (It still believes the
  // cluster runs the old structure, so the target is a real delta from
  // its stale baseline — the PREPAREs actually go out.)
  const auto fenced = cluster.coordinator->coordinate_reload(cluster.target);
  EXPECT_FALSE(fenced.committed);
  EXPECT_NE(fenced.reason.find("fenced: stale coordinator epoch"),
            std::string::npos)
      << fenced.reason;

  cluster.alpha->stop();
  cluster.beta->stop();

  const auto alpha_counters =
      cluster.alpha->application().monitor().control_plane().snapshot();
  const auto beta_counters =
      cluster.beta->application().monitor().control_plane().snapshot();
  EXPECT_EQ(alpha_counters.takeovers, 1u);
  EXPECT_EQ(beta_counters.takeovers, 1u);
  EXPECT_GE(alpha_counters.fenced_prepares, 1u);
  EXPECT_GE(beta_counters.fenced_prepares, 1u);
  // The stale coordinator also distributed its doomed ABORT — dropped
  // silently, but counted.
  EXPECT_GE(alpha_counters.fenced_decisions + beta_counters.fenced_decisions,
            1u);
}

TEST(MembershipTest, StandbyTakeoverMidPrepareFallsBackToPresumedAbort) {
  NodeRuntime::Options options;
  options.run_duration = rtsj::RelativeTime::milliseconds(3500);
  options.decision_timeout = rtsj::RelativeTime::milliseconds(400);
  StandbyCluster cluster(options);
  cluster.alpha->start();
  cluster.beta->start();
  sleep_ms(100);

  const std::uint64_t alpha_epoch =
      cluster.alpha->mode_manager().plan_epoch();

  // The coordinator dies mid-PREPARE sweep: one node is parked, no
  // decision exists, so no record reaches the standby.
  int prepares = 0;
  ReconfigCoordinator::FaultHooks hooks;
  hooks.before_prepare = [&](const std::string&, std::uint64_t) {
    return ++prepares == 1;
  };
  cluster.coordinator->set_fault_hooks(&hooks);
  const auto crashed = cluster.coordinator->coordinate_reload(cluster.target);
  cluster.coordinator->set_fault_hooks(nullptr);
  EXPECT_FALSE(crashed.committed);
  EXPECT_EQ(cluster.standby->pump(rtsj::RelativeTime::milliseconds(100)), 0u);

  // The parked node presumed-aborts on its own (PROTOCOL.md §5); the
  // lease lapses with zero records seen.
  sleep_ms(700);
  EXPECT_TRUE(cluster.standby->lease_expired());
  EXPECT_EQ(cluster.standby->records_seen(), 0u);
  EXPECT_EQ(cluster.alpha->mode_manager().plan_epoch(), alpha_epoch);
  EXPECT_EQ(cluster.beta->application().assembly().find("Sink2"), nullptr);

  // Promotion falls back to the initial view + live attach; there is no
  // decision to redrive — presumed abort already resolved the cluster.
  ReconfigCoordinator& promoted = cluster.standby->promote(
      cluster.global, rtsj::RelativeTime::milliseconds(800));
  EXPECT_EQ(promoted.coord_epoch(), 2u);
  EXPECT_FALSE(cluster.standby->redrive_last().has_value());

  // The promoted coordinator drives a fresh transition to completion.
  const auto outcome = promoted.coordinate_reload(cluster.target);
  std::string detail = outcome.reason;
  for (const auto& node : outcome.nodes) {
    detail += "\n  " + node.node + ": prepared=" +
              (node.prepared ? "1" : "0") + " committed=" +
              (node.committed ? "1" : "0") + " detail=" + node.detail;
  }
  EXPECT_TRUE(outcome.committed) << detail;
  EXPECT_NE(cluster.beta->application().assembly().find("Sink2"), nullptr);
  EXPECT_EQ(cluster.alpha->coord_epoch_seen(), 2u);
  EXPECT_EQ(cluster.beta->coord_epoch_seen(), 2u);

  cluster.alpha->stop();
  cluster.beta->stop();
}

TEST(MembershipTest, MisroutedControlFramesAreCountedNotSilentlyDropped) {
  const Architecture global = pipeline_arch();
  const NodeMap map = two_node_map();
  NodeRuntime::Options options;
  options.run_duration = rtsj::RelativeTime::milliseconds(300);
  NodeRuntime alpha(global, map, "alpha", options);
  auto [a_node, a_coord] = comm::LoopbackChannel::make_pair();
  alpha.attach_control(a_node);
  alpha.start();

  // A CREDIT frame (node-to-node plane) and an unknown future frame type
  // arrive on the control channel: both are not coordinator traffic a
  // node handles, and both must be visible in the monitor.
  CreditPayload credit;
  credit.client = "Producer";
  credit.port = "out";
  credit.credits = 8;
  a_coord->send(make_credit(credit));
  comm::Frame future;
  future.type = 99;
  a_coord->send(future);
  sleep_ms(150);
  alpha.stop();

  const auto counters =
      alpha.application().monitor().control_plane().snapshot();
  EXPECT_EQ(counters.ignored_frames, 2u);
  EXPECT_EQ(counters.fenced_prepares, 0u);
  EXPECT_EQ(counters.fenced_decisions, 0u);
  EXPECT_EQ(counters.takeovers, 0u);
}

TEST(MembershipTest, SixteenNodeChurnDrillReplaysByteForByte) {
  // The acceptance drill of the elastic cluster: a 16-node scenario under
  // the churn mix (join + leave + node crash + coordinator crash mid-
  // PREPARE/mid-COMMIT) converges with zero message loss, and the whole
  // report — timeline, protocol log, membership log, violations — is a
  // pure function of the seed.
  adversity::DrillOptions options;
  options.seed = 505;
  options.mix = adversity::FaultMix::parse("churn");
  options.gen.min_nodes = 16;
  options.gen.max_nodes = 16;
  options.trace = true;
  const adversity::DrillResult first = adversity::run_drill(options);
  EXPECT_TRUE(first.passed) << first.report();
  EXPECT_EQ(first.nodes, 16u);
  EXPECT_GT(first.members_joined + first.members_left, 0u)
      << "seed 505 must actually churn the membership";

  const adversity::DrillResult replay = adversity::run_drill(options);
  EXPECT_EQ(first.report(), replay.report());
  EXPECT_EQ(first.passed, replay.passed);
  EXPECT_EQ(first.membership_epoch, replay.membership_epoch);
}

}  // namespace
}  // namespace rtcf::dist
