// The discrete-event fixed-priority preemptive scheduler simulator.
#include <gtest/gtest.h>

#include "sim/architecture_sim.hpp"
#include "scenario/production_scenario.hpp"
#include "sim/scheduler.hpp"

namespace rtcf::sim {
namespace {

using rtsj::AbsoluteTime;
using rtsj::RelativeTime;

AbsoluteTime at_ms(std::int64_t ms) {
  return AbsoluteTime::epoch() + RelativeTime::milliseconds(ms);
}

TaskConfig periodic(const char* name, int priority, std::int64_t period_us,
                    std::int64_t cost_us,
                    ThreadKind kind = ThreadKind::Realtime) {
  TaskConfig cfg;
  cfg.name = name;
  cfg.kind = kind;
  cfg.priority = priority;
  cfg.release = ReleaseKind::Periodic;
  cfg.period = RelativeTime::microseconds(period_us);
  cfg.cost = RelativeTime::microseconds(cost_us);
  return cfg;
}

TEST(SimSchedulerTest, SinglePeriodicTaskRunsOnSchedule) {
  PreemptiveScheduler sched;
  const TaskId id = sched.add_task(periodic("t", 20, 1000, 100));
  sched.run_until(at_ms(10));
  const auto& stats = sched.stats(id);
  EXPECT_EQ(stats.releases_completed, 10u);
  EXPECT_EQ(stats.deadline_misses, 0u);
  // Uncontended: every response equals the cost.
  EXPECT_DOUBLE_EQ(stats.response_times_us.min(), 100.0);
  EXPECT_DOUBLE_EQ(stats.response_times_us.max(), 100.0);
}

TEST(SimSchedulerTest, HigherPriorityPreempts) {
  PreemptiveScheduler sched;
  // Low priority, long job released at t=0.
  const TaskId low = sched.add_task(periodic("low", 12, 100'000, 10'000));
  // High priority, short job released every 2 ms.
  const TaskId high = sched.add_task(periodic("high", 30, 2'000, 200));
  sched.run_until(at_ms(50));
  const auto& low_stats = sched.stats(low);
  const auto& high_stats = sched.stats(high);
  // High always runs immediately: response == cost.
  EXPECT_DOUBLE_EQ(high_stats.response_times_us.max(), 200.0);
  // Low was preempted (10 ms of work interleaved with 5 high releases).
  EXPECT_GT(low_stats.preemptions, 0u);
  EXPECT_GT(low_stats.response_times_us.max(), 10'000.0);
}

TEST(SimSchedulerTest, EqualPriorityIsFifoNoPreemption) {
  PreemptiveScheduler sched;
  const TaskId a = sched.add_task(periodic("a", 20, 10'000, 3'000));
  const TaskId b = sched.add_task(periodic("b", 20, 10'000, 3'000));
  sched.run_until(at_ms(10));
  // a released first (same instant, lower enqueue order) -> runs first,
  // b waits: response = 6 ms; neither preempts the other.
  EXPECT_DOUBLE_EQ(sched.stats(a).response_times_us.max(), 3'000.0);
  EXPECT_DOUBLE_EQ(sched.stats(b).response_times_us.max(), 6'000.0);
  EXPECT_EQ(sched.stats(a).preemptions, 0u);
  EXPECT_EQ(sched.stats(b).preemptions, 0u);
}

TEST(SimSchedulerTest, DeadlineMissesAreDetected) {
  PreemptiveScheduler sched;
  // Cost exceeds the implicit deadline (= period).
  const TaskId id = sched.add_task(periodic("over", 20, 1'000, 1'500));
  sched.run_until(at_ms(10));
  EXPECT_GT(sched.stats(id).deadline_misses, 0u);
}

TEST(SimSchedulerTest, SporadicReleasesOnArrival) {
  PreemptiveScheduler sched;
  TaskConfig cfg;
  cfg.name = "sporadic";
  cfg.priority = 25;
  cfg.release = ReleaseKind::Sporadic;
  cfg.cost = RelativeTime::microseconds(500);
  const TaskId id = sched.add_task(std::move(cfg));
  sched.post_arrival(id, at_ms(1));
  sched.post_arrival(id, at_ms(5));
  sched.run_until(at_ms(10));
  EXPECT_EQ(sched.stats(id).releases_completed, 2u);
}

TEST(SimSchedulerTest, SporadicMinInterarrivalRejectsBursts) {
  PreemptiveScheduler sched;
  TaskConfig cfg;
  cfg.name = "mit";
  cfg.priority = 25;
  cfg.release = ReleaseKind::Sporadic;
  cfg.min_interarrival = RelativeTime::milliseconds(2);
  cfg.cost = RelativeTime::microseconds(10);
  const TaskId id = sched.add_task(std::move(cfg));
  sched.post_arrival(id, at_ms(1));
  sched.post_arrival(id, at_ms(2));  // 1 ms gap < 2 ms MIT -> rejected
  sched.post_arrival(id, at_ms(4));  // 3 ms gap -> admitted
  sched.run_until(at_ms(10));
  EXPECT_EQ(sched.stats(id).releases_completed, 2u);
  EXPECT_EQ(sched.stats(id).rejected_arrivals, 1u);
}

TEST(SimSchedulerTest, GcBlocksRegularButNotNhrt) {
  PreemptiveScheduler sched;
  const TaskId nhrt = sched.add_task(
      periodic("nhrt", 30, 10'000, 1'000, ThreadKind::NoHeapRealtime));
  const TaskId regular = sched.add_task(
      periodic("reg", 5, 10'000, 1'000, ThreadKind::Regular));
  sched.set_gc_model(
      {RelativeTime::milliseconds(10), RelativeTime::milliseconds(3)});
  sched.run_until(at_ms(100));
  EXPECT_GT(sched.gc_pause_count(), 0u);
  // NHRT: always response == cost.
  EXPECT_DOUBLE_EQ(sched.stats(nhrt).response_times_us.max(), 1'000.0);
  // Regular: at least one release absorbed a 3 ms pause.
  EXPECT_GE(sched.stats(regular).response_times_us.max(), 3'000.0);
}

TEST(SimSchedulerTest, GcImmunityMatchesNoGcRunExactly) {
  auto run = [](bool gc) {
    PreemptiveScheduler sched;
    const TaskId nhrt = sched.add_task(
        periodic("nhrt", 30, 5'000, 750, ThreadKind::NoHeapRealtime));
    if (gc) {
      sched.set_gc_model(
          {RelativeTime::milliseconds(7), RelativeTime::milliseconds(2)});
    }
    sched.run_until(at_ms(200));
    return sched.stats(nhrt).response_times_us.samples();
  };
  EXPECT_EQ(run(false), run(true)) << "NHRT timeline must be GC-invariant";
}

TEST(SimSchedulerTest, DeterministicTraceAcrossRuns) {
  auto run = [] {
    PreemptiveScheduler sched;
    sched.enable_trace();
    sched.add_task(periodic("a", 20, 1'000, 300));
    sched.add_task(periodic("b", 25, 1'700, 400));
    sched.set_gc_model(
        {RelativeTime::milliseconds(5), RelativeTime::microseconds(500)});
    sched.run_until(at_ms(20));
    std::string out;
    for (const auto& ev : sched.trace()) out += ev.to_string(sched) + "\n";
    return out;
  };
  EXPECT_EQ(run(), run());
}

TEST(SimSchedulerTest, CompletionChainingDrivesPipelines) {
  PreemptiveScheduler sched;
  const TaskId producer = sched.add_task(periodic("prod", 30, 1'000, 100));
  TaskConfig consumer_cfg;
  consumer_cfg.name = "cons";
  consumer_cfg.priority = 20;
  consumer_cfg.release = ReleaseKind::Sporadic;
  consumer_cfg.cost = RelativeTime::microseconds(200);
  const TaskId consumer = sched.add_task(std::move(consumer_cfg));
  sched.set_on_complete(producer, [&](AbsoluteTime t) {
    sched.post_arrival(consumer, t);
  });
  sched.run_until(at_ms(10));
  EXPECT_EQ(sched.stats(producer).releases_completed, 10u);
  EXPECT_EQ(sched.stats(consumer).releases_completed, 10u);
}

TEST(SimSchedulerTest, RunUntilIsResumable) {
  PreemptiveScheduler sched;
  const TaskId id = sched.add_task(periodic("t", 20, 1'000, 100));
  sched.run_until(at_ms(5));
  const auto five = sched.stats(id).releases_completed;
  sched.run_until(at_ms(10));
  EXPECT_EQ(sched.stats(id).releases_completed, five + 5);
}

TEST(ArchitectureSimTest, MapsTheMotivationScenario) {
  const auto arch = scenario::make_production_architecture();
  PreemptiveScheduler sched;
  const auto mapping = map_architecture(arch, sched);
  ASSERT_TRUE(mapping.has("ProductionLine"));
  ASSERT_TRUE(mapping.has("MonitoringSystem"));
  ASSERT_TRUE(mapping.has("AuditLog"));
  EXPECT_FALSE(mapping.has("Console")) << "passive: no task";

  EXPECT_EQ(sched.config(mapping.task("ProductionLine")).kind,
            ThreadKind::NoHeapRealtime);
  EXPECT_EQ(sched.config(mapping.task("ProductionLine")).priority, 30);
  EXPECT_EQ(sched.config(mapping.task("AuditLog")).kind,
            ThreadKind::Regular);

  sched.run_until(at_ms(1000));
  // 100 PL releases in 1 s (10 ms period); each chains MS; each MS chains
  // the audit log.
  EXPECT_EQ(sched.stats(mapping.task("ProductionLine")).releases_completed,
            100u);
  EXPECT_EQ(sched.stats(mapping.task("MonitoringSystem")).releases_completed,
            100u);
  EXPECT_EQ(sched.stats(mapping.task("AuditLog")).releases_completed, 100u);
}

TEST(ArchitectureSimTest, NhrtPipelineStagesAreGcInvariant) {
  auto run = [](bool gc) {
    const auto arch = scenario::make_production_architecture();
    PreemptiveScheduler sched;
    const auto mapping = map_architecture(arch, sched);
    if (gc) {
      sched.set_gc_model(
          {RelativeTime::milliseconds(40), RelativeTime::milliseconds(2)});
    }
    sched.run_until(at_ms(2000));
    return std::pair{
        sched.stats(mapping.task("ProductionLine")).response_times_us.max(),
        sched.stats(mapping.task("AuditLog")).response_times_us.max()};
  };
  const auto [pl_no_gc, audit_no_gc] = run(false);
  const auto [pl_gc, audit_gc] = run(true);
  EXPECT_DOUBLE_EQ(pl_no_gc, pl_gc);
  EXPECT_GT(audit_gc, audit_no_gc);
}

}  // namespace
}  // namespace rtcf::sim
