// The zero-copy data plane (`ctest -L zerocopy`): golden byte-for-byte
// equality between the span encoders and the contiguous v3 codecs, the
// in-place BatchView decoder against parse_batch (including every-prefix
// truncation), the shm ring's reserve/commit protocol (in-ring and
// wrapped-scratch reservations), TcpChannel scatter-gather framing, the
// loopback move-send, and the comm::BufferPool recycling contract
// (docs/DATAPLANE.md "Zero-copy path" is the spec under test).
//
// The one invariant everything here defends: the zero-copy paths change
// HOW bytes reach the transport, never WHICH bytes — docs/PROTOCOL.md v3
// framing stays byte-identical, so a v3 peer cannot tell the paths apart.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <unistd.h>
#include <vector>

#include "comm/buffer_pool.hpp"
#include "comm/channel.hpp"
#include "comm/shm_ring.hpp"
#include "dist/batch_view.hpp"
#include "dist/dataplane.hpp"
#include "dist/protocol.hpp"
#include "dist/wire.hpp"

namespace rtcf::dist {
namespace {

comm::Message make_message(std::uint64_t sequence) {
  comm::Message m;
  m.type_id = 3;
  m.size = 8;
  m.sequence = sequence;
  m.timestamp_ns = static_cast<std::int64_t>(1000 + sequence);
  m.store<std::uint64_t>(sequence * 7);
  return m;
}

std::string shm_name(const char* tag) {
  return std::string("/rtcf-zc-") + tag + "." + std::to_string(::getpid());
}

// ---- SpanWriter ------------------------------------------------------------

TEST(SpanWriterTest, EmitsExactlyWhatWireWriterEmits) {
  WireWriter grow;
  grow.u8(0xAB);
  grow.u16(0xBEEF);
  grow.u32(0xDEADBEEF);
  grow.u64(0x0123456789ABCDEFull);
  grow.i64(-42);
  grow.f64(3.25);
  grow.str("client");
  const std::vector<std::uint8_t> blob = {1, 2, 3, 4, 5};
  grow.bytes(blob);
  const std::size_t outer = grow.begin_block();
  grow.u32(7);
  const std::size_t inner = grow.begin_block();
  grow.str("nested");
  grow.end_block(inner);
  grow.end_block(outer);
  grow.raw(blob.data(), blob.size());
  const std::vector<std::uint8_t>& expected = grow.data();

  std::vector<std::uint8_t> buffer(expected.size());
  SpanWriter fixed(WireSpan{buffer.data(), buffer.size()});
  fixed.u8(0xAB);
  fixed.u16(0xBEEF);
  fixed.u32(0xDEADBEEF);
  fixed.u64(0x0123456789ABCDEFull);
  fixed.i64(-42);
  fixed.f64(3.25);
  fixed.str("client");
  fixed.bytes(blob.data(), blob.size());
  const std::size_t souter = fixed.begin_block();
  fixed.u32(7);
  const std::size_t sinner = fixed.begin_block();
  fixed.str("nested");
  fixed.end_block(sinner);
  fixed.end_block(souter);
  fixed.raw(blob.data(), blob.size());

  ASSERT_EQ(fixed.used(), expected.size());
  EXPECT_EQ(fixed.remaining(), 0u);
  EXPECT_EQ(std::memcmp(buffer.data(), expected.data(), expected.size()), 0);
}

TEST(SpanWriterTest, OverflowThrowsInsteadOfGrowing) {
  std::uint8_t small[4];
  SpanWriter w(WireSpan{small, sizeof(small)});
  w.u32(1);  // fills the span exactly
  EXPECT_THROW(w.u8(0), WireError);
  EXPECT_THROW(w.u64(0), WireError);
  EXPECT_THROW(w.str("too long"), WireError);
  EXPECT_EQ(w.used(), 4u);  // a refused write leaves the span untouched
}

// ---- span encoders vs contiguous codecs ------------------------------------

TEST(BatchSpanEncoderTest, GoldenAgainstMakeBatch) {
  BatchPayload payload;
  payload.routes.push_back({"Producer", "out",
                            {make_message(1), make_message(2),
                             make_message(3)}});
  payload.routes.push_back({"Watchdog", "tick", {make_message(9)}});
  const comm::Frame golden = make_batch(payload);

  std::size_t size = kBatchHeaderBytes;
  for (const BatchRoute& r : payload.routes) {
    size += batch_route_wire_bytes(r.client, r.port, r.messages.size());
  }
  ASSERT_EQ(size, golden.payload.size())
      << "batch_route_wire_bytes must predict make_batch exactly";

  std::vector<std::uint8_t> buffer(size);
  BatchSpanEncoder enc(WireSpan{buffer.data(), buffer.size()},
                       static_cast<std::uint32_t>(payload.routes.size()));
  for (const BatchRoute& r : payload.routes) {
    enc.begin_route(r.client, r.port,
                    static_cast<std::uint32_t>(r.messages.size()));
    for (const comm::Message& m : r.messages) enc.add_message(m);
    enc.end_route();
  }
  ASSERT_EQ(enc.used(), golden.payload.size());
  EXPECT_EQ(std::memcmp(buffer.data(), golden.payload.data(),
                        golden.payload.size()),
            0);
}

TEST(SpanEncoderTest, DataAndCreditGoldenAgainstContiguousCodecs) {
  const DataPayload data{"Producer", "out", make_message(5)};
  const comm::Frame golden_data = make_data(data);
  std::vector<std::uint8_t> buffer(
      data_payload_wire_bytes(data.client, data.port));
  SpanWriter dw(WireSpan{buffer.data(), buffer.size()});
  encode_data_payload(dw, data.client, data.port, data.message);
  ASSERT_EQ(dw.used(), golden_data.payload.size());
  EXPECT_EQ(std::memcmp(buffer.data(), golden_data.payload.data(),
                        golden_data.payload.size()),
            0);

  const CreditPayload credit{"Producer", "out", 128};
  const comm::Frame golden_credit = make_credit(credit);
  std::vector<std::uint8_t> cbuf(
      credit_payload_wire_bytes(credit.client, credit.port));
  SpanWriter cw(WireSpan{cbuf.data(), cbuf.size()});
  encode_credit_payload(cw, credit.client, credit.port, credit.credits);
  ASSERT_EQ(cw.used(), golden_credit.payload.size());
  EXPECT_EQ(std::memcmp(cbuf.data(), golden_credit.payload.data(),
                        golden_credit.payload.size()),
            0);
}

// ---- BatchView -------------------------------------------------------------

TEST(BatchViewTest, DecodesExactlyWhatParseBatchDecodes) {
  BatchPayload payload;
  payload.routes.push_back({"Producer", "out",
                            {make_message(1), make_message(2)}});
  payload.routes.push_back({"Watchdog", "tick", {make_message(9)}});
  const comm::Frame frame = make_batch(payload);
  const BatchPayload expected = parse_batch(frame);

  BatchView view(frame.payload);
  EXPECT_EQ(view.route_count(), expected.routes.size());
  EXPECT_EQ(batch_message_count(frame.payload.data(), frame.payload.size()),
            3u);
  BatchView::Route route;
  comm::Message m;
  for (const BatchRoute& r : expected.routes) {
    ASSERT_TRUE(view.next_route(route));
    EXPECT_EQ(route.client, r.client);
    EXPECT_EQ(route.port, r.port);
    ASSERT_EQ(route.messages, r.messages.size());
    for (const comm::Message& want : r.messages) {
      view.next_message(m);
      EXPECT_EQ(m.type_id, want.type_id);
      EXPECT_EQ(m.size, want.size);
      EXPECT_EQ(m.sequence, want.sequence);
      EXPECT_EQ(m.timestamp_ns, want.timestamp_ns);
      EXPECT_EQ(std::memcmp(m.payload, want.payload,
                            comm::Message::kPayloadCapacity),
                0);
    }
  }
  EXPECT_FALSE(view.next_route(route));
}

TEST(BatchViewTest, RejectsEveryTruncation) {
  BatchPayload payload;
  payload.routes.push_back({"C", "p", {make_message(1), make_message(2)}});
  const comm::Frame full = make_batch(payload);
  for (std::size_t cut = 0; cut < full.payload.size(); ++cut) {
    // The receive path's one-shot validation must reject the torn frame...
    EXPECT_THROW(batch_message_count(full.payload.data(), cut), WireError)
        << "cut at " << cut;
    // ...and so must a full decode, whichever accessor hits the tear.
    EXPECT_THROW(
        {
          BatchView view(full.payload.data(), cut);
          BatchView::Route route;
          comm::Message m;
          while (view.next_route(route)) {
            for (std::uint32_t i = 0; i < route.messages; ++i) {
              view.next_message(m);
            }
          }
        },
        WireError)
        << "cut at " << cut;
  }
}

// ---- shm ring reserve/commit -----------------------------------------------

TEST(ShmReserveTest, InRingReservationIsByteIdenticalOnReceive) {
  const std::string name = shm_name("inring");
  auto creator = comm::ShmRingChannel::create(name, std::size_t{1} << 16);
  ASSERT_NE(creator, nullptr) << "no /dev/shm on this host?";
  auto attacher = comm::ShmRingChannel::attach(name);
  ASSERT_NE(attacher, nullptr);

  std::vector<std::uint8_t> pattern(300);
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    pattern[i] = static_cast<std::uint8_t>(i * 13);
  }
  comm::FrameReservation res;
  ASSERT_TRUE(creator->reserve_frame(42, pattern.size(), res));
  EXPECT_TRUE(res.in_place) << "a fresh ring must hand out ring memory";
  ASSERT_GE(res.size, pattern.size());
  std::memcpy(res.data, pattern.data(), pattern.size());
  ASSERT_TRUE(creator->commit_frame(pattern.size()));

  comm::Frame received;
  ASSERT_TRUE(
      attacher->receive(received, rtsj::RelativeTime::milliseconds(200)));
  EXPECT_EQ(received.type, 42u);
  EXPECT_EQ(received.payload, pattern);
}

TEST(ShmReserveTest, WrappedReservationFallsBackToScratchIdentically) {
  const std::string name = shm_name("wrap");
  auto creator = comm::ShmRingChannel::create(name, 256);
  ASSERT_NE(creator, nullptr) << "no /dev/shm on this host?";
  auto attacher = comm::ShmRingChannel::attach(name);
  ASSERT_NE(attacher, nullptr);

  // Advance the ring so the next payload would cross the capacity edge.
  comm::Frame first;
  first.type = 1;
  first.payload.assign(100, std::uint8_t{0x5A});
  ASSERT_TRUE(creator->send(first));
  comm::Frame drained;
  ASSERT_TRUE(
      attacher->receive(drained, rtsj::RelativeTime::milliseconds(200)));

  std::vector<std::uint8_t> pattern(160);
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    pattern[i] = static_cast<std::uint8_t>(255 - i);
  }
  comm::FrameReservation res;
  ASSERT_TRUE(creator->reserve_frame(43, pattern.size(), res));
  EXPECT_FALSE(res.in_place)
      << "a reservation crossing the ring edge must bounce through scratch";
  std::memcpy(res.data, pattern.data(), pattern.size());
  ASSERT_TRUE(creator->commit_frame(pattern.size()));

  comm::Frame received;
  ASSERT_TRUE(
      attacher->receive(received, rtsj::RelativeTime::milliseconds(200)));
  EXPECT_EQ(received.type, 43u);
  EXPECT_EQ(received.payload, pattern);
}

TEST(ShmReserveTest, AbortLeavesTheRingPublishableAndClean) {
  const std::string name = shm_name("abort");
  auto creator = comm::ShmRingChannel::create(name, std::size_t{1} << 16);
  ASSERT_NE(creator, nullptr) << "no /dev/shm on this host?";
  auto attacher = comm::ShmRingChannel::attach(name);
  ASSERT_NE(attacher, nullptr);

  comm::FrameReservation res;
  ASSERT_TRUE(creator->reserve_frame(7, 64, res));
  std::memset(res.data, 0xFF, 64);  // scribble, then change our mind
  creator->abort_frame();

  comm::Frame frame;
  frame.type = 8;
  frame.payload = {9, 9, 9};
  ASSERT_TRUE(creator->send(frame));
  comm::Frame received;
  ASSERT_TRUE(
      attacher->receive(received, rtsj::RelativeTime::milliseconds(200)));
  EXPECT_EQ(received.type, 8u);
  EXPECT_EQ(received.payload, frame.payload);
  // Nothing else: the aborted reservation must not have published bytes.
  EXPECT_FALSE(received.payload.empty());
  EXPECT_FALSE(attacher->receive(received, rtsj::RelativeTime::zero()));
}

// ---- DataPlane over the zero-copy paths ------------------------------------

TEST(DataPlaneZeroCopyTest, ShmFlushEncodesInRingAndStaysGolden) {
  const std::string name = shm_name("plane");
  std::shared_ptr<comm::ShmRingChannel> creator =
      comm::ShmRingChannel::create(name, std::size_t{1} << 16);
  ASSERT_NE(creator, nullptr) << "no /dev/shm on this host?";
  std::shared_ptr<comm::ShmRingChannel> attacher =
      comm::ShmRingChannel::attach(name);
  ASSERT_NE(attacher, nullptr);

  DataPlaneConfig config;
  config.batch_max = 4;
  config.credit_window = 64;
  DataPlane plane(config);
  plane.set_peer_version("peer", kProtocolVersion);
  const std::size_t route = plane.add_route("C", "out", creator, "peer");

  BatchPayload expected;
  expected.routes.push_back({"C", "out", {}});
  for (std::uint64_t i = 0; i < config.batch_max; ++i) {
    expected.routes[0].messages.push_back(make_message(i));
    plane.offer(route, expected.routes[0].messages.back());
  }

  comm::Frame received;
  ASSERT_TRUE(
      attacher->receive(received, rtsj::RelativeTime::milliseconds(200)));
  const comm::Frame golden = make_batch(expected);
  EXPECT_EQ(received.type, golden.type);
  EXPECT_EQ(received.payload, golden.payload)
      << "the in-ring BATCH must be byte-identical to the contiguous codec";

  const DataPlaneStats stats = plane.stats();
  EXPECT_EQ(stats.sent, config.batch_max);
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_GE(stats.ring_frames, 1u);
  EXPECT_EQ(stats.bytes_copied, 0u)
      << "an unwrapped ring flush must not stage payload in user space";
  EXPECT_EQ(stats.pool_misses, 0u)
      << "the reservation path must not touch the pool at all";
}

TEST(DataPlaneZeroCopyTest, PooledFallbackIsGoldenAndRecycles) {
  auto [near, far] = comm::LoopbackChannel::make_pair();
  DataPlaneConfig config;
  config.batch_max = 4;
  config.credit_window = 64;
  DataPlane plane(config);
  plane.set_peer_version("peer", kProtocolVersion);
  const std::size_t route = plane.add_route("C", "out", near, "peer");

  // Two size flushes: the first warms the pool (one miss), the second
  // must run entirely on the recycled buffer (a hit, no new miss).
  for (int flush = 0; flush < 2; ++flush) {
    BatchPayload expected;
    expected.routes.push_back({"C", "out", {}});
    for (std::uint64_t i = 0; i < config.batch_max; ++i) {
      expected.routes[0].messages.push_back(
          make_message(flush * 100 + i));
      plane.offer(route, expected.routes[0].messages.back());
    }
    comm::Frame received;
    ASSERT_TRUE(
        far->receive(received, rtsj::RelativeTime::milliseconds(200)));
    const comm::Frame golden = make_batch(expected);
    EXPECT_EQ(received.type, golden.type);
    EXPECT_EQ(received.payload, golden.payload);
  }

  const DataPlaneStats stats = plane.stats();
  EXPECT_EQ(stats.batches, 2u);
  EXPECT_EQ(stats.ring_frames, 0u);  // the loopback cannot reserve
  EXPECT_GT(stats.bytes_copied, 0u);
  EXPECT_EQ(stats.pool_misses, 1u)
      << "steady-state flushing must recycle, not allocate";
  EXPECT_GE(stats.pool_hits, 1u);
}

TEST(DataPlaneZeroCopyTest, LegacyDataPathStaysGolden) {
  auto [near, far] = comm::LoopbackChannel::make_pair();
  DataPlane plane;
  plane.set_peer_version("peer", 2);  // v2: per-message DATA frames
  const std::size_t route = plane.add_route("C", "out", near, "peer");

  const comm::Message m = make_message(77);
  EXPECT_EQ(plane.offer(route, m), DataPlane::Offer::Sent);
  comm::Frame received;
  ASSERT_TRUE(far->receive(received, rtsj::RelativeTime::milliseconds(200)));
  const comm::Frame golden = make_data({"C", "out", m});
  EXPECT_EQ(received.type, golden.type);
  EXPECT_EQ(received.payload, golden.payload);
}

// ---- TcpChannel scatter-gather ---------------------------------------------

TEST(TcpSendSpansTest, ScatterGatherFramesExactlyLikeSend) {
  std::shared_ptr<comm::TcpChannel> server = comm::TcpChannel::listen(0);
  ASSERT_NE(server, nullptr);
  std::shared_ptr<comm::TcpChannel> client =
      comm::TcpChannel::connect("127.0.0.1", server->bound_port());
  ASSERT_NE(client, nullptr);

  std::vector<std::uint8_t> payload(1000);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i ^ (i >> 3));
  }
  const comm::ByteSpan spans[3] = {
      {payload.data(), 10},
      {payload.data() + 10, 0},  // empty spans must be harmless
      {payload.data() + 10, payload.size() - 10}};
  ASSERT_TRUE(client->send_spans(55, spans, 3));

  comm::Frame contiguous;
  contiguous.type = 55;
  contiguous.payload = payload;
  ASSERT_TRUE(client->send(contiguous));

  comm::Frame a;
  comm::Frame b;
  ASSERT_TRUE(server->receive(a, rtsj::RelativeTime::milliseconds(2000)));
  ASSERT_TRUE(server->receive(b, rtsj::RelativeTime::milliseconds(2000)));
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.payload, b.payload)
      << "send_spans must be indistinguishable from send on the wire";

  client->close();
  server->close();
}

// ---- loopback move-send ----------------------------------------------------

TEST(LoopbackMoveSendTest, StealsThePayloadInsteadOfCopying) {
  auto [near, far] = comm::LoopbackChannel::make_pair();
  comm::Frame frame;
  frame.type = 21;
  frame.payload.assign(512, std::uint8_t{0xCD});
  const std::uint8_t* before = frame.payload.data();
  ASSERT_TRUE(near->send(std::move(frame)));

  comm::Frame received;
  ASSERT_TRUE(far->receive(received, rtsj::RelativeTime::milliseconds(200)));
  EXPECT_EQ(received.type, 21u);
  EXPECT_EQ(received.payload.data(), before)
      << "the payload allocation must travel through the queue untouched";
  EXPECT_EQ(received.payload.size(), 512u);
}

// ---- BufferPool ------------------------------------------------------------

TEST(BufferPoolTest, RecyclesWithinSlabClasses) {
  comm::BufferPool pool;
  std::vector<std::uint8_t> a = pool.acquire(100);
  EXPECT_EQ(a.size(), 100u);
  EXPECT_EQ(a.capacity(), comm::BufferPool::kClassSizes[0]);
  pool.release(std::move(a));

  // Any request in the same class must reuse the parked buffer.
  std::vector<std::uint8_t> b = pool.acquire(200);
  EXPECT_EQ(b.size(), 200u);
  EXPECT_EQ(b.capacity(), comm::BufferPool::kClassSizes[0]);
  const comm::BufferPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.outstanding, 1u);
  EXPECT_EQ(stats.high_water, 1u);
}

TEST(BufferPoolTest, OversizeIsExactAndCountedNotPooledBelowClassZero) {
  comm::BufferPool pool;
  constexpr std::size_t kLargest =
      comm::BufferPool::kClassSizes[comm::BufferPool::kClassCount - 1];
  std::vector<std::uint8_t> big = pool.acquire(kLargest + 1);
  EXPECT_EQ(big.size(), kLargest + 1);
  EXPECT_EQ(pool.stats().oversize, 1u);
  pool.release(std::move(big));  // still covers the largest class: parked

  // A buffer too small for every class cannot be recycled usefully.
  pool.release(std::vector<std::uint8_t>());
  const comm::BufferPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.discarded, 1u);
}

TEST(BufferPoolTest, FreelistsAreBounded) {
  comm::BufferPool pool(2);
  std::vector<std::vector<std::uint8_t>> held;
  for (int i = 0; i < 3; ++i) held.push_back(pool.acquire(64));
  for (auto& buffer : held) pool.release(std::move(buffer));
  const comm::BufferPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.discarded, 1u) << "the third release must not park";
  EXPECT_EQ(stats.outstanding, 0u);
  EXPECT_EQ(stats.high_water, 3u);
}

TEST(BufferPoolTest, SteadyStateStopsAllocating) {
  comm::BufferPool pool;
  const std::size_t sizes[] = {64, 1000, 30000};  // three distinct classes
  // Warm one buffer per class.
  for (const std::size_t size : sizes) pool.release(pool.acquire(size));
  const std::uint64_t warm_misses = pool.stats().misses;
  for (int round = 0; round < 1000; ++round) {
    for (const std::size_t size : sizes) pool.release(pool.acquire(size));
  }
  const comm::BufferPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.misses, warm_misses)
      << "recycled traffic must never reach the allocator";
  EXPECT_EQ(stats.hits, 3000u);
  EXPECT_EQ(stats.outstanding, 0u);
}

}  // namespace
}  // namespace rtcf::dist
