// Property-style parameterized sweeps (TEST_P) over the core invariants:
// arena/scope allocation, buffer FIFO conservation, percentile
// monotonicity, scheduler work conservation, and ADL round-trip stability
// on randomized architectures.
#include <gtest/gtest.h>

#include <random>

#include "adl/loader.hpp"
#include "comm/message_buffer.hpp"
#include "rtsj/memory/memory_area.hpp"
#include "sim/scheduler.hpp"
#include "util/stats.hpp"
#include "validate/validator.hpp"

namespace rtcf {
namespace {

// ---------------------------------------------------------------- arenas

class ArenaProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ArenaProperty, RandomAllocationsRespectInvariants) {
  const std::size_t capacity = GetParam();
  rtsj::ScopedMemory scope("prop-scope", capacity);
  std::mt19937 rng(static_cast<unsigned>(capacity));
  std::uniform_int_distribution<std::size_t> size_dist(1, 128);
  std::uniform_int_distribution<int> align_exp(0, 6);

  scope.enter([&] {
    std::size_t requested = 0;
    for (int i = 0; i < 1000; ++i) {
      const std::size_t size = size_dist(rng);
      const std::size_t align = std::size_t{1} << align_exp(rng);
      void* p = nullptr;
      try {
        p = scope.allocate(size, align);
      } catch (const rtsj::OutOfMemoryError&) {
        break;  // exhaustion is a legal outcome
      }
      ASSERT_NE(p, nullptr);
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
          << "alignment violated";
      EXPECT_TRUE(scope.contains(p));
      requested += size;
    }
    EXPECT_GE(scope.memory_consumed(), requested)
        << "consumed must cover every granted byte";
    EXPECT_LE(scope.memory_consumed(), capacity);
  });
  EXPECT_EQ(scope.memory_consumed(), 0u) << "reclaimed on exit";
}

INSTANTIATE_TEST_SUITE_P(Sizes, ArenaProperty,
                         ::testing::Values(256, 1024, 4096, 64 * 1024,
                                           1024 * 1024));

// --------------------------------------------------------------- buffers

class BufferProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BufferProperty, FifoConservationUnderRandomTraffic) {
  const std::size_t capacity = GetParam();
  comm::MessageBuffer buffer(rtsj::ImmortalMemory::instance(), capacity);
  std::mt19937 rng(static_cast<unsigned>(capacity) * 7u);
  std::bernoulli_distribution push_coin(0.6);

  std::uint64_t pushed = 0, popped = 0, dropped = 0;
  std::uint64_t next_expected = 0;
  for (int i = 0; i < 20'000; ++i) {
    if (push_coin(rng)) {
      comm::Message m;
      m.sequence = pushed + dropped;
      if (buffer.push(m)) {
        ++pushed;
      } else {
        ++dropped;
        EXPECT_TRUE(buffer.full());
      }
    } else if (auto m = buffer.pop()) {
      EXPECT_GE(m->sequence, next_expected) << "FIFO order violated";
      next_expected = m->sequence + 1;
      ++popped;
    }
    EXPECT_LE(buffer.size(), capacity);
    EXPECT_EQ(buffer.size(), pushed - popped);
  }
  EXPECT_EQ(buffer.enqueued_total(), pushed);
  EXPECT_EQ(buffer.dropped_total(), dropped);
}

INSTANTIATE_TEST_SUITE_P(Capacities, BufferProperty,
                         ::testing::Values(1, 2, 10, 128, 1024));

// ----------------------------------------------------------------- stats

class StatsProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(StatsProperty, PercentilesAreMonotoneAndBounded) {
  std::mt19937 rng(GetParam());
  std::lognormal_distribution<double> dist(0.0, 1.0);
  util::SampleSet s;
  for (int i = 0; i < 5000; ++i) s.add(dist(rng));
  double prev = s.percentile(0);
  for (double p = 5; p <= 100; p += 5) {
    const double value = s.percentile(p);
    EXPECT_GE(value, prev) << "percentiles must be monotone";
    prev = value;
  }
  EXPECT_GE(s.jitter(), 0.0);
  EXPECT_LE(s.jitter(), s.worst_case_deviation());
  EXPECT_GE(s.median(), s.min());
  EXPECT_LE(s.median(), s.max());

  util::OnlineStats online;
  for (double x : s.samples()) online.add(x);
  EXPECT_NEAR(online.mean(), s.mean(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsProperty,
                         ::testing::Values(1u, 42u, 1337u, 99991u));

// ------------------------------------------------------------- scheduler

struct SchedCase {
  unsigned seed;
  int tasks;
};

class SchedulerProperty : public ::testing::TestWithParam<SchedCase> {};

TEST_P(SchedulerProperty, WorkConservationAndPriorityInvariants) {
  const auto param = GetParam();
  std::mt19937 rng(param.seed);
  std::uniform_int_distribution<int> prio(rtsj::kMinRtPriority,
                                          rtsj::kMaxRtPriority);
  std::uniform_int_distribution<std::int64_t> period_us(2'000, 20'000);

  sim::PreemptiveScheduler sched;
  std::vector<sim::TaskId> ids;
  std::int64_t total_utilization_ppm = 0;
  int top_priority = 0;
  for (int i = 0; i < param.tasks; ++i) {
    sim::TaskConfig cfg;
    cfg.name = "t" + std::to_string(i);
    cfg.priority = prio(rng);
    top_priority = std::max(top_priority, cfg.priority);
    cfg.release = sim::ReleaseKind::Periodic;
    const auto period = period_us(rng);
    // Keep the set schedulable: ~50 % total utilization.
    const auto cost = period / (2 * param.tasks);
    cfg.period = rtsj::RelativeTime::microseconds(period);
    cfg.cost = rtsj::RelativeTime::microseconds(std::max<std::int64_t>(
        cost, 1));
    total_utilization_ppm += 1'000'000 * cost / period;
    ids.push_back(sched.add_task(std::move(cfg)));
  }
  const auto horizon =
      rtsj::AbsoluteTime::epoch() + rtsj::RelativeTime::seconds(2);
  sched.run_until(horizon);

  for (sim::TaskId id : ids) {
    const auto& stats = sched.stats(id);
    const auto& cfg = sched.config(id);
    // Work conservation at ~50% utilization: every task completes about
    // horizon/period releases (allow the tail release to be in flight).
    const auto expected =
        static_cast<std::uint64_t>(2'000'000 / cfg.period.to_micros());
    EXPECT_GE(stats.releases_completed + 2, expected) << cfg.name;
    EXPECT_LE(stats.releases_completed, expected + 1) << cfg.name;
    // Responses are at least the cost, and any unique top-priority task
    // never waits.
    if (stats.releases_completed > 0) {
      EXPECT_GE(stats.response_times_us.min(), cfg.cost.to_micros() - 1e-9);
      if (cfg.priority == top_priority) {
        EXPECT_LE(stats.response_times_us.max(),
                  cfg.cost.to_micros() * param.tasks + 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SchedulerProperty,
    ::testing::Values(SchedCase{1, 2}, SchedCase{2, 4}, SchedCase{3, 8},
                      SchedCase{4, 16}, SchedCase{5, 32}));

// -------------------------------------------------- random architectures

class AdlRoundTripProperty : public ::testing::TestWithParam<unsigned> {};

/// Generates a random but well-formed architecture: N active/passive
/// components over a random domain/area assignment with random bindings.
model::Architecture random_architecture(unsigned seed) {
  using namespace model;
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> count(2, 8);
  std::bernoulli_distribution coin(0.5);
  Architecture arch;

  const int actives = count(rng);
  std::vector<ActiveComponent*> producers;
  for (int i = 0; i < actives; ++i) {
    auto& a = arch.add_active(
        "A" + std::to_string(i),
        coin(rng) ? ActivationKind::Periodic : ActivationKind::Sporadic,
        rtsj::RelativeTime::milliseconds(1 + i));
    a.set_content_class("Impl" + std::to_string(i));
    a.add_interface({"out", InterfaceRole::Client, "I"});
    a.add_interface({"in", InterfaceRole::Server, "I"});
    producers.push_back(&a);
  }
  std::uniform_int_distribution<int> dtype(0, 2);
  auto& nhrt = arch.add_thread_domain("DN", DomainType::NoHeapRealtime, 30);
  auto& rt = arch.add_thread_domain("DR", DomainType::Realtime, 20);
  auto& reg = arch.add_thread_domain("DG", DomainType::Regular, 5);
  auto& imm = arch.add_memory_area("MImm", AreaType::Immortal, 64 * 1024);
  auto& heap = arch.add_memory_area("MHeap", AreaType::Heap, 0);
  arch.add_child(imm, nhrt);
  arch.add_child(imm, rt);
  arch.add_child(heap, reg);
  for (auto* a : producers) {
    switch (dtype(rng)) {
      case 0:
        arch.add_child(nhrt, *a);
        break;
      case 1:
        arch.add_child(rt, *a);
        break;
      default:
        arch.add_child(reg, *a);
        break;
    }
  }
  // Random async bindings between distinct components.
  std::uniform_int_distribution<int> pick(0, actives - 1);
  for (int i = 0; i < actives; ++i) {
    const int from = pick(rng);
    const int to = pick(rng);
    if (from == to) continue;
    arch.add_binding({{"A" + std::to_string(from), "out"},
                      {"A" + std::to_string(to), "in"},
                      {Protocol::Asynchronous, 8, ""}});
  }
  return arch;
}

TEST_P(AdlRoundTripProperty, SaveLoadSaveIsStable) {
  const auto arch = random_architecture(GetParam());
  const std::string first = adl::save_architecture(arch);
  const auto loaded = adl::load_architecture(first);
  const std::string second = adl::save_architecture(loaded);
  EXPECT_EQ(first, second);
  EXPECT_EQ(loaded.components().size(), arch.components().size());
  EXPECT_EQ(loaded.bindings().size(), arch.bindings().size());
}

TEST_P(AdlRoundTripProperty, ValidationIsDeterministicAcrossRoundTrip) {
  const auto arch = random_architecture(GetParam());
  const auto loaded = adl::load_architecture(adl::save_architecture(arch));
  const auto before = validate::validate(arch);
  const auto after = validate::validate(loaded);
  EXPECT_EQ(before.error_count(), after.error_count());
  EXPECT_EQ(before.warning_count(), after.warning_count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdlRoundTripProperty,
                         ::testing::Range(1u, 13u));

}  // namespace
}  // namespace rtcf
