// Wall-clock cyclic-executive launcher.
#include <gtest/gtest.h>

#include "runtime/launcher.hpp"
#include "scenario/production_scenario.hpp"

namespace rtcf::runtime {
namespace {

TEST(LauncherTest, RunsPeriodicReleasesInRealTime) {
  const auto arch = scenario::make_production_architecture();
  auto app = soleil::build_application(arch, soleil::Mode::MergeAll);
  app->start();
  Launcher launcher(*app);
  Launcher::Options options;
  options.duration = rtsj::RelativeTime::milliseconds(120);
  launcher.run(options);

  // 10 ms period over 120 ms: around 11 releases (first at t=10ms).
  const auto& stats = launcher.stats("ProductionLine");
  EXPECT_GE(stats.releases, 8u);
  EXPECT_LE(stats.releases, 12u);
  EXPECT_EQ(stats.response_us.count(), stats.releases);
  EXPECT_EQ(stats.deadline_misses, 0u)
      << "sub-microsecond work cannot miss a 10 ms deadline";

  // The pipeline actually ran end to end.
  const auto counters = scenario::collect_counters(*app);
  EXPECT_EQ(counters.produced, stats.releases);
  EXPECT_EQ(counters.processed, stats.releases);
  EXPECT_EQ(counters.audit_records, stats.releases);
  app->stop();
}

TEST(LauncherTest, ReleaseTimesAreAnchoredNotDrifting) {
  const auto arch = scenario::make_production_architecture();
  auto app = soleil::build_application(arch, soleil::Mode::UltraMerge);
  app->start();
  Launcher launcher(*app);
  Launcher::Options options;
  options.duration = rtsj::RelativeTime::milliseconds(100);
  launcher.run(options);
  const auto& stats = launcher.stats("ProductionLine");
  // Lateness stays bounded (sleep_until + dispatch overhead); it must not
  // accumulate across releases on an idle host. Allow generous slack for
  // CI noise.
  EXPECT_LT(stats.start_lateness_us.median(), 10'000.0);
  app->stop();
}

TEST(LauncherTest, StatsForUnknownComponentThrow) {
  const auto arch = scenario::make_production_architecture();
  auto app = soleil::build_application(arch, soleil::Mode::MergeAll);
  Launcher launcher(*app);
  EXPECT_THROW((void)launcher.stats("Console"), std::invalid_argument);
}

TEST(LauncherTest, ReleaselessRunNeedsAModeManager) {
  using namespace model;
  Architecture arch;
  auto& a = arch.add_active("OnlySporadic", ActivationKind::Sporadic);
  a.set_content_class("AuditLogImpl");
  a.add_interface({"iAudit", InterfaceRole::Server, "IAudit"});
  auto& d = arch.add_thread_domain("D", DomainType::Realtime, 20);
  arch.add_child(d, a);
  auto app = soleil::build_application(arch, soleil::Mode::MergeAll);
  // Sporadic-only assemblies are legal now (a distributed node may host
  // only bridge-fed consumers) — but they need a mode manager to drive
  // the run; a bare wall-clock run would return immediately.
  Launcher launcher(*app);
  EXPECT_THROW(launcher.run(Launcher::Options{}), std::invalid_argument);
}

}  // namespace
}  // namespace rtcf::runtime
