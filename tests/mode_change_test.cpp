// Quiescence-based mode transitions on the wall-clock executive: no
// message lost across the drain, contracts re-armed in the new mode,
// governor-triggered demotion into the declared degraded mode.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "reconfig/mode_manager.hpp"
#include "runtime/launcher.hpp"
#include "scenario/production_scenario.hpp"
#include "soleil/application.hpp"

namespace rtcf {
namespace {

using reconfig::ModeManager;
using runtime::Launcher;
using soleil::Mode;

std::uint64_t dropped_total(const soleil::Application& app) {
  std::uint64_t dropped = 0;
  for (const auto& buffer : app.buffers()) dropped += buffer->dropped_total();
  return dropped;
}

TEST(ModeChangeTest, TransitionLosesNoMessagesAcrossDrain) {
  const auto arch = scenario::make_moded_production_architecture();
  auto app = soleil::build_application(arch, Mode::Soleil, 2);
  app->start();
  ModeManager manager(*app);
  Launcher launcher(*app);

  Launcher::Options options;
  options.duration = rtsj::RelativeTime::milliseconds(150);
  options.workers = 2;
  options.mode_manager = &manager;

  // Drive the full cycle from outside while the partitioned executive
  // runs: normal -> degraded -> recovery.
  std::thread executive([&] { launcher.run(options); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_TRUE(manager.request_transition("Degraded"));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_TRUE(manager.request_transition("Normal"));
  executive.join();

  const auto transitions = manager.transitions();
  ASSERT_EQ(transitions.size(), 2u);
  EXPECT_EQ(transitions[0].to, "Degraded");
  EXPECT_EQ(transitions[1].to, "Normal");
  for (const auto& t : transitions) {
    EXPECT_GT(t.latency.nanos(), 0);
    EXPECT_LT(t.latency.nanos(), options.duration.nanos())
        << "transition latency must be bounded by the run";
  }
  EXPECT_EQ(manager.current_mode(), "Normal");

  // Conservation across both transitions: every measurement produced was
  // processed, every audit record arrived, nothing was dropped in a
  // buffer, and the anomaly reports all landed on one of the two consoles.
  const auto counters = scenario::collect_counters(*app);
  EXPECT_GT(counters.produced, 0u);
  EXPECT_EQ(counters.produced, counters.processed);
  EXPECT_EQ(counters.produced, counters.audit_records);
  EXPECT_EQ(dropped_total(*app), 0u);
  const auto* standby =
      dynamic_cast<const scenario::ConsoleImpl*>(app->content("StandbyConsole"));
  ASSERT_NE(standby, nullptr);
  EXPECT_EQ(counters.console_reports + standby->reports(),
            counters.anomalies);
}

TEST(ModeChangeTest, ContractsAreRearmedInTheNewMode) {
  const auto arch = scenario::make_moded_production_architecture();
  auto app = soleil::build_application(arch, Mode::Soleil);
  app->start();
  ModeManager manager(*app);

  const auto* entry = app->monitor().find("ProductionLine");
  ASSERT_NE(entry, nullptr);
  ASSERT_NE(entry->contract, nullptr);
  EXPECT_EQ(entry->contract->contract().wcet_budget,
            rtsj::RelativeTime::milliseconds(8));

  // No launcher running: the transition applies inline at the request.
  ASSERT_TRUE(manager.request_transition("Degraded"));
  ASSERT_NE(entry->contract, nullptr);
  EXPECT_EQ(entry->contract->contract().wcet_budget,
            rtsj::RelativeTime::milliseconds(32));
  EXPECT_EQ(entry->contract->contract().window, 8u);
  EXPECT_EQ(entry->contract->windows_closed(), 0u)
      << "the new mode starts with fresh windows";

  ASSERT_TRUE(manager.request_transition("Normal"));
  ASSERT_NE(entry->contract, nullptr);
  EXPECT_EQ(entry->contract->contract().wcet_budget,
            rtsj::RelativeTime::milliseconds(8));
  EXPECT_EQ(entry->contract->contract().window, 16u);
}

TEST(ModeChangeTest, GovernorEscalationTriggersDemotion) {
  const auto arch = scenario::make_moded_production_architecture();
  auto app = soleil::build_application(arch, Mode::Soleil);
  app->start();
  ModeManager::Options mode_options;
  mode_options.demote_at = monitor::GovernorLevel::RateLimit;
  ModeManager manager(*app, mode_options);

  // Sustained contract violation from the low-criticality audit trail:
  // two violated windows escalate the governor (sustain_windows default).
  auto& governor = app->monitor().governor();
  const auto* audit = app->monitor().find("AuditLog");
  ASSERT_NE(audit, nullptr);
  governor.on_window_violated(audit->governor_id);
  governor.on_window_violated(audit->governor_id);
  ASSERT_GE(static_cast<int>(governor.level()),
            static_cast<int>(monitor::GovernorLevel::RateLimit));

  Launcher launcher(*app);
  Launcher::Options options;
  options.duration = rtsj::RelativeTime::milliseconds(40);
  options.mode_manager = &manager;
  launcher.run(options);

  EXPECT_EQ(manager.current_mode(), "Degraded");
  const auto transitions = manager.transitions();
  ASSERT_GE(transitions.size(), 1u);
  EXPECT_EQ(transitions[0].to, "Degraded");
  EXPECT_EQ(transitions[0].trigger, "governor");
  // The demotion answered the overload: the governor restarts clean in
  // the degraded mode instead of keeping its shed level.
  EXPECT_EQ(governor.level(), monitor::GovernorLevel::Normal);
}

TEST(ModeChangeTest, MaintenanceModeQuiescesTheSourceAndDrains) {
  const auto arch = scenario::make_moded_production_architecture();
  auto app = soleil::build_application(arch, Mode::Soleil);
  app->start();
  ModeManager manager(*app);
  Launcher launcher(*app);

  Launcher::Options options;
  options.duration = rtsj::RelativeTime::milliseconds(45);
  options.mode_manager = &manager;
  launcher.run(options);
  const auto in_normal = scenario::collect_counters(*app);
  EXPECT_GT(in_normal.produced, 0u);

  ASSERT_TRUE(manager.request_transition("Maintenance"));
  launcher.run(options);
  const auto in_maintenance = scenario::collect_counters(*app);
  EXPECT_EQ(in_maintenance.produced, in_normal.produced)
      << "quiesced source must release nothing";
  EXPECT_EQ(in_maintenance.processed, in_maintenance.produced)
      << "everything in flight at the transition was drained";

  ASSERT_TRUE(manager.request_transition("Normal"));
  launcher.run(options);
  const auto recovered = scenario::collect_counters(*app);
  EXPECT_GT(recovered.produced, in_maintenance.produced)
      << "recovery resumes the source";
  EXPECT_EQ(recovered.processed, recovered.produced);
  EXPECT_EQ(dropped_total(*app), 0u);
}

TEST(ModeChangeTest, RateOnlyModesWorkInEveryGenerationMode) {
  // MERGE_ALL supports the full protocol too; the static ULTRA_MERGE is
  // rejected because the scenario's modes quiesce components and rebind.
  const auto arch = scenario::make_moded_production_architecture();
  auto merge = soleil::build_application(arch, Mode::MergeAll);
  merge->start();
  ModeManager manager(*merge);
  ASSERT_TRUE(manager.request_transition("Degraded"));
  EXPECT_EQ(manager.current_mode(), "Degraded");

  auto ultra = soleil::build_application(arch, Mode::UltraMerge);
  ultra->start();
  EXPECT_THROW(ModeManager rejected(*ultra), std::exception);
}

}  // namespace
}  // namespace rtcf
