// End-to-end equivalence of the four evaluation variants (§5.1): the
// hand-written OO baseline and the three generation modes must perform
// byte-for-byte identical functional work on the motivation scenario.
#include <gtest/gtest.h>

#include "baseline/oo_production_line.hpp"
#include "scenario/production_scenario.hpp"
#include "soleil/application.hpp"
#include "validate/validator.hpp"

namespace rtcf {
namespace {

using scenario::ScenarioCounters;
using soleil::Application;
using soleil::Mode;

class ApplicationModesTest : public ::testing::TestWithParam<Mode> {};

TEST_P(ApplicationModesTest, ArchitectureValidates) {
  const auto arch = scenario::make_production_architecture();
  const auto report = validate::validate(arch);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST_P(ApplicationModesTest, RunsOneIteration) {
  const auto arch = scenario::make_production_architecture();
  auto app = soleil::build_application(arch, GetParam());
  app->start();
  app->iterate("ProductionLine");
  const auto c = scenario::collect_counters(*app);
  EXPECT_EQ(c.produced, 1u);
  EXPECT_EQ(c.processed, 1u);
  EXPECT_EQ(c.audit_records, 1u);
  app->stop();
}

TEST_P(ApplicationModesTest, MatchesOoBaselineOverManyIterations) {
  constexpr int kIterations = 1000;
  const auto arch = scenario::make_production_architecture();
  auto app = soleil::build_application(arch, GetParam());
  app->start();
  baseline::OoApplication oo;
  for (int i = 0; i < kIterations; ++i) {
    app->iterate("ProductionLine");
    oo.iterate();
  }
  const auto framework = scenario::collect_counters(*app);
  const auto reference = oo.counters();
  EXPECT_EQ(framework, reference);
  EXPECT_EQ(framework.produced, static_cast<std::uint64_t>(kIterations));
  EXPECT_EQ(framework.processed, static_cast<std::uint64_t>(kIterations));
  EXPECT_EQ(framework.audit_records, static_cast<std::uint64_t>(kIterations));
  EXPECT_GT(framework.anomalies, 0u) << "threshold path must be exercised";
  EXPECT_EQ(framework.console_reports, framework.anomalies);
  app->stop();
}

TEST_P(ApplicationModesTest, StoppedComponentsRejectWork) {
  const auto arch = scenario::make_production_architecture();
  auto app = soleil::build_application(arch, GetParam());
  // Never started: releases must not reach content.
  if (GetParam() == Mode::UltraMerge) {
    // ULTRA_MERGE is purely static: no lifecycle gate exists, releases
    // always execute (the paper: "the resulting infrastructure is therefore
    // purely static").
    app->iterate("ProductionLine");
    EXPECT_EQ(scenario::collect_counters(*app).produced, 1u);
    return;
  }
  app->iterate("ProductionLine");
  EXPECT_EQ(scenario::collect_counters(*app).produced, 0u);
  app->start();
  app->iterate("ProductionLine");
  EXPECT_EQ(scenario::collect_counters(*app).produced, 1u);
}

TEST_P(ApplicationModesTest, ThreadsCarryDomainConfiguration) {
  const auto arch = scenario::make_production_architecture();
  auto app = soleil::build_application(arch, GetParam());
  auto* pl = app->thread_of("ProductionLine");
  ASSERT_NE(pl, nullptr);
  EXPECT_EQ(pl->kind(), rtsj::ThreadKind::NoHeapRealtime);
  EXPECT_EQ(pl->priority(), 30);
  EXPECT_EQ(pl->profile().kind, rtsj::ReleaseKind::Periodic);
  EXPECT_EQ(pl->profile().period, rtsj::RelativeTime::milliseconds(10));

  auto* ms = app->thread_of("MonitoringSystem");
  ASSERT_NE(ms, nullptr);
  EXPECT_EQ(ms->kind(), rtsj::ThreadKind::NoHeapRealtime);
  EXPECT_EQ(ms->priority(), 25);

  auto* audit = app->thread_of("AuditLog");
  ASSERT_NE(audit, nullptr);
  EXPECT_EQ(audit->kind(), rtsj::ThreadKind::Regular);

  EXPECT_EQ(app->thread_of("Console"), nullptr) << "passive: no thread";
}

TEST_P(ApplicationModesTest, ContentsLiveInTheirDeclaredAreas) {
  const auto arch = scenario::make_production_architecture();
  auto app = soleil::build_application(arch, GetParam());
  auto& imm = rtsj::ImmortalMemory::instance();
  EXPECT_TRUE(imm.contains(app->content("ProductionLine")));
  EXPECT_TRUE(imm.contains(app->content("MonitoringSystem")));
  EXPECT_TRUE(rtsj::HeapMemory::instance().contains(app->content("AuditLog")));
  // Console lives inside the 28 KB scope.
  const auto scopes = app->environment().scopes();
  ASSERT_EQ(scopes.size(), 1u);
  EXPECT_EQ(scopes[0]->name(), "cscope");
  EXPECT_TRUE(scopes[0]->contains(app->content("Console")));
}

TEST_P(ApplicationModesTest, IntrospectionMatchesModeContract) {
  const auto arch = scenario::make_production_architecture();
  auto app = soleil::build_application(arch, GetParam());
  switch (GetParam()) {
    case Mode::Soleil:
      EXPECT_TRUE(app->supports_membrane_introspection());
      EXPECT_TRUE(app->supports_reconfiguration());
      EXPECT_NE(app->find_membrane("MonitoringSystem"), nullptr);
      EXPECT_NE(app->find_membrane("NHRT2"), nullptr)
          << "non-functional components are reified in SOLEIL mode";
      break;
    case Mode::MergeAll:
      EXPECT_FALSE(app->supports_membrane_introspection());
      EXPECT_TRUE(app->supports_reconfiguration());
      EXPECT_EQ(app->find_membrane("MonitoringSystem"), nullptr);
      break;
    case Mode::UltraMerge:
      EXPECT_FALSE(app->supports_membrane_introspection());
      EXPECT_FALSE(app->supports_reconfiguration());
      EXPECT_EQ(app->find_membrane("MonitoringSystem"), nullptr);
      break;
  }
}

TEST_P(ApplicationModesTest, BufferOverflowShedsLoadWithoutCorruption) {
  const auto arch = scenario::make_production_architecture();
  auto app = soleil::build_application(arch, GetParam());
  app->start();
  // Release the producer 25 times without pumping: the 10-slot buffer must
  // absorb 10 and drop the rest.
  for (int i = 0; i < 25; ++i) app->release("ProductionLine");
  app->pump();
  const auto c = scenario::collect_counters(*app);
  EXPECT_EQ(c.produced, 25u);
  EXPECT_EQ(c.processed, 10u);
  EXPECT_EQ(c.audit_records, 10u);
}

INSTANTIATE_TEST_SUITE_P(AllModes, ApplicationModesTest,
                         ::testing::Values(Mode::Soleil, Mode::MergeAll,
                                           Mode::UltraMerge),
                         [](const auto& info) {
                           return std::string(soleil::to_string(info.param));
                         });

TEST(FootprintOrderingTest, ModesShrinkMonotonically) {
  const auto arch = scenario::make_production_architecture();
  auto full = soleil::build_application(arch, Mode::Soleil);
  auto merged = soleil::build_application(arch, Mode::MergeAll);
  auto ultra = soleil::build_application(arch, Mode::UltraMerge);
  // Fig. 7c shape: SOLEIL largest, ULTRA_MERGE smallest.
  EXPECT_GT(full->infrastructure_bytes(), merged->infrastructure_bytes());
  EXPECT_GT(merged->infrastructure_bytes(), ultra->infrastructure_bytes());
}

}  // namespace
}  // namespace rtcf
