// Acceptance scenario for the overload governor: the production scenario
// with one injected low-criticality overrunner. Under sustained WCET
// violation the governor must degrade *only* low-criticality components,
// keep every high-criticality deadline, and account for every shed
// activation in telemetry.
#include <gtest/gtest.h>

#include <string>

#include "model/views.hpp"
#include "monitor/governor.hpp"
#include "monitor/runtime_monitor.hpp"
#include "runtime/content_registry.hpp"
#include "runtime/launcher.hpp"
#include "scenario/production_scenario.hpp"
#include "soleil/application.hpp"
#include "validate/validator.hpp"

namespace rtcf {
namespace {

using model::ActivationKind;
using model::Architecture;
using model::Criticality;
using model::DomainType;
using model::MemoryAreaComponent;
using model::TimingContract;
using monitor::GovernorLevel;

/// Low-criticality busy component that overruns its WCET budget on every
/// release — the injected overload.
class BulkAnalyticsImpl final : public comm::Content {
 public:
  static constexpr std::int64_t kSpinMicros = 4000;
  void on_release() override {
    const auto& clock = rtsj::SteadyClock::instance();
    const auto until =
        clock.now() + rtsj::RelativeTime::microseconds(kSpinMicros);
    while (clock.now() < until) {
    }
  }
};

RTCF_REGISTER_CONTENT(BulkAnalyticsImpl)

/// The Fig. 4 production architecture plus a low-criticality periodic
/// "BulkAnalytics" component (reporting/EDA-style batch work) that shares
/// the executive with the hard real-time pipeline.
Architecture make_overloaded_production_architecture() {
  auto arch = scenario::make_production_architecture();

  model::BusinessView business(arch);
  auto& analytics =
      business.active("BulkAnalytics", ActivationKind::Periodic,
                      rtsj::RelativeTime::milliseconds(10));
  analytics.set_content_class("BulkAnalyticsImpl");
  analytics.set_cost(rtsj::RelativeTime::microseconds(
      BulkAnalyticsImpl::kSpinMicros));
  analytics.set_criticality(Criticality::Low);
  TimingContract contract;
  contract.wcet_budget = rtsj::RelativeTime::milliseconds(1);
  contract.miss_ratio_bound = 0.9;
  contract.window = 4;
  analytics.set_timing_contract(contract);

  model::ThreadManagementView threads(arch);
  auto& reg2 = threads.domain("reg2", DomainType::Regular, 4);
  threads.deploy(reg2, analytics);

  model::MemoryManagementView memory(arch);
  auto* h1 = arch.find_as<MemoryAreaComponent>("H1");
  memory.deploy(*h1, reg2);
  return arch;
}

TEST(GovernedLauncherTest, ShedsOnlyLowCriticalityUnderInjectedOverload) {
  const auto arch = make_overloaded_production_architecture();
  ASSERT_TRUE(validate::validate(arch).ok())
      << validate::validate(arch).to_string();

  auto app = soleil::build_application(arch, soleil::Mode::Soleil);
  app->start();
  runtime::Launcher launcher(*app);
  runtime::Launcher::Options options;
  options.duration = rtsj::RelativeTime::milliseconds(600);
  launcher.run(options);
  app->stop();

  auto& mon = app->monitor();

  // 1. The governor escalated on BulkAnalytics' sustained WCET overruns,
  //    all the way to Shed: with window=4 and the default sustain of 2,
  //    rate-limiting starts after ~80 ms and shedding after ~240 ms —
  //    comfortable margin inside the 600 ms run even on a stalled host.
  EXPECT_EQ(mon.governor().level(), GovernorLevel::Shed);
  const auto decisions = mon.governor().decisions();
  ASSERT_GE(decisions.size(), 2u);
  for (const auto& decision : decisions) {
    EXPECT_STREQ(decision.trigger, "BulkAnalytics")
        << "only the overrunner may drive escalation";
  }

  // 2. Only low-criticality components were degraded. High-criticality
  //    periodic work ran every release and met every deadline.
  const auto& pl = launcher.stats("ProductionLine");
  EXPECT_EQ(pl.shed, 0u);
  // "All high-criticality deadlines met": the 4 ms overrunner leaves 6 ms
  // of slack per 10 ms period, so misses can only come from host
  // scheduling noise (sleep overshoot on a loaded runner — the test is
  // RUN_SERIAL, but shared CI machines still stall), never from the
  // overload itself. Tolerate a small noise allowance here; the
  // *deterministic* zero-miss guarantee is asserted in virtual time by
  // GovernedSimTest.GovernorProtectsHighCriticalityDeadlines.
  EXPECT_LE(pl.deadline_misses, pl.releases / 10)
      << "high-criticality deadlines must hold through the overload";
  EXPECT_GE(pl.releases, 30u);

  const auto& analytics = launcher.stats("BulkAnalytics");
  EXPECT_GT(analytics.shed, 0u) << "the overrunner must be degraded";

  // 3. Every shed/deferred activation is counted in telemetry, and the
  //    telemetry lives in the component's own RTSJ area.
  const auto* an_entry = mon.find("BulkAnalytics");
  ASSERT_NE(an_entry, nullptr);
  EXPECT_EQ(an_entry->telemetry->shed.load(), analytics.shed);
  EXPECT_LE(an_entry->telemetry->rate_limited.load(),
            an_entry->telemetry->shed.load());
  EXPECT_TRUE(app->plan().find_component("BulkAnalytics")->area->contains(
      an_entry->telemetry));
  EXPECT_TRUE(app->plan().find_component("Console")->area->contains(
      mon.find("Console")->telemetry))
      << "scoped-area component keeps telemetry in its scope";

  // 4. The low-criticality audit trail was shed too (message-driven
  //    activations gated in the activation path), and every drop counted.
  const auto counters = scenario::collect_counters(*app);
  const auto* audit_entry = mon.find("AuditLog");
  ASSERT_NE(audit_entry, nullptr);
  EXPECT_GT(audit_entry->telemetry->shed.load(), 0u);
  EXPECT_EQ(audit_entry->telemetry->activations.load() +
                audit_entry->telemetry->shed.load(),
            counters.processed)
      << "every monitored message is either executed or counted as shed";
  EXPECT_EQ(counters.audit_records,
            audit_entry->telemetry->activations.load());

  // 5. The high-criticality pipeline itself stayed lossless.
  EXPECT_EQ(counters.processed, counters.produced);
}

TEST(GovernedLauncherTest, NoDegradationWithoutViolations) {
  // The same production scenario without the overrunner never leaves
  // Normal: contracts are generous, so the governor must not fire.
  const auto arch = scenario::make_production_architecture();
  auto app = soleil::build_application(arch, soleil::Mode::Soleil);
  app->start();
  runtime::Launcher launcher(*app);
  runtime::Launcher::Options options;
  options.duration = rtsj::RelativeTime::milliseconds(120);
  launcher.run(options);
  app->stop();

  EXPECT_EQ(app->monitor().governor().level(), GovernorLevel::Normal);
  EXPECT_TRUE(app->monitor().governor().decisions().empty());
  EXPECT_EQ(app->monitor().shed_total(), 0u);
  for (const auto& [name, stats] : launcher.all_stats()) {
    EXPECT_EQ(stats.shed, 0u) << name;
  }
}

}  // namespace
}  // namespace rtcf
