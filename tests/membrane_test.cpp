// Membrane architecture (Fig. 6): controllers, interceptors, introspection.
#include <gtest/gtest.h>

#include "membrane/membrane.hpp"
#include "scenario/production_scenario.hpp"
#include "soleil/application.hpp"

namespace rtcf::membrane {
namespace {

class RecordingContent final : public comm::Content {
 public:
  void on_start() override { ++starts; }
  void on_stop() override { ++stops; }
  void on_release() override { ++releases; }
  void on_message(const comm::Message&) override { ++messages; }
  comm::Message on_invoke(const comm::Message& m) override {
    ++invokes;
    comm::Message out = m;
    out.type_id = 7;
    return out;
  }
  int starts = 0, stops = 0, releases = 0, messages = 0, invokes = 0;
};

TEST(LifecycleControllerTest, DrivesContentHooksIdempotently) {
  RecordingContent content;
  LifecycleController lifecycle(&content);
  EXPECT_FALSE(lifecycle.started());
  lifecycle.start();
  lifecycle.start();  // idempotent
  EXPECT_TRUE(lifecycle.started());
  EXPECT_EQ(content.starts, 1);
  lifecycle.stop();
  lifecycle.stop();
  EXPECT_EQ(content.stops, 1);
  EXPECT_FALSE(lifecycle.started());
}

TEST(BindingControllerTest, ListsAndRebindsPorts) {
  RecordingContent content;
  content.add_port("a");
  content.add_port("b");
  BindingController binding(&content);
  EXPECT_EQ(binding.port_names(), (std::vector<std::string>{"a", "b"}));

  RecordingContent target;
  LifecycleController target_lc(&target);
  target_lc.start();
  SyncSkeleton skeleton(&target_lc, &target);
  binding.rebind_invocable("a", &skeleton);
  EXPECT_TRUE(content.port("a").bound());
  comm::Message m;
  EXPECT_EQ(content.port("a").call(m).type_id, 7u);

  binding.rebind_invocable("a", nullptr);
  EXPECT_FALSE(content.port("a").bound());
  EXPECT_THROW(binding.rebind_invocable("zzz", &skeleton),
               std::invalid_argument);
}

TEST(ActiveInterceptorTest, GatesOnLifecycle) {
  RecordingContent content;
  LifecycleController lifecycle(&content);
  ActiveInterceptor interceptor(&lifecycle, &content);
  comm::Message m;
  interceptor.deliver(m);
  interceptor.release();
  EXPECT_EQ(content.messages, 0);
  EXPECT_EQ(content.releases, 0);
  EXPECT_EQ(interceptor.rejected_count(), 2u);
  lifecycle.start();
  interceptor.deliver(m);
  interceptor.release();
  const comm::Message resp = interceptor.invoke(m);
  EXPECT_EQ(content.messages, 1);
  EXPECT_EQ(content.releases, 1);
  EXPECT_EQ(resp.type_id, 7u);
  EXPECT_EQ(interceptor.delivered_count(), 3u);
}

TEST(SyncSkeletonTest, StoppedComponentsAnswerEmpty) {
  RecordingContent content;
  LifecycleController lifecycle(&content);
  SyncSkeleton skeleton(&lifecycle, &content);
  comm::Message m;
  m.type_id = 1;
  EXPECT_EQ(skeleton.invoke(m).type_id, 0u);
  EXPECT_EQ(skeleton.rejected_count(), 1u);
  lifecycle.start();
  EXPECT_EQ(skeleton.invoke(m).type_id, 7u);
  EXPECT_EQ(skeleton.invoked_count(), 1u);
}

TEST(InterceptorChainTest, ForwardsThroughAllHops) {
  RecordingContent content;
  LifecycleController lifecycle(&content);
  lifecycle.start();

  comm::MessageBuffer buffer(rtsj::ImmortalMemory::instance(), 4);
  AsyncSkeleton skeleton(&buffer, nullptr, nullptr);
  MemoryInterceptor memory(
      PatternRuntime::make(PatternOp::ImmortalForward, nullptr, nullptr));
  memory.set_next(&skeleton, nullptr);
  InterfaceEntry entry(&lifecycle);
  entry.set_next(&memory, nullptr);

  comm::Message m;
  double payload = 1.5;
  m.store(payload);
  entry.deliver(m);
  EXPECT_EQ(buffer.size(), 1u);
  EXPECT_EQ(entry.traversal_count(), 1u);
  EXPECT_EQ(memory.traversal_count(), 1u);
  EXPECT_EQ(skeleton.traversal_count(), 1u);
  EXPECT_EQ(buffer.pop()->load<double>(), 1.5);

  // Stopping the lifecycle gates the whole chain at the entry.
  lifecycle.stop();
  entry.deliver(m);
  EXPECT_TRUE(buffer.empty());
}

TEST(MembraneTest, ReifiesControllersAndInterceptors) {
  RecordingContent content;
  Membrane membrane("X", &content);
  membrane.add_interceptor<ActiveInterceptor>(&membrane.lifecycle(),
                                              &content);
  membrane.add_interceptor<InterfaceEntry>(&membrane.lifecycle());
  EXPECT_EQ(membrane.owner(), "X");
  EXPECT_EQ(membrane.interceptor_count(), 2u);
  EXPECT_EQ(membrane.interceptor_kinds(),
            (std::vector<std::string>{"active-interceptor",
                                      "interface-entry"}));
  EXPECT_EQ(membrane.controller_kinds(),
            (std::vector<std::string>{"lifecycle-controller",
                                      "binding-controller",
                                      "content-controller"}));
  EXPECT_GT(membrane.footprint_bytes(), sizeof(Membrane));
}

TEST(MembraneTest, SoleilAppExposesFig6Structure) {
  const auto arch = scenario::make_production_architecture();
  auto app = soleil::build_application(arch, soleil::Mode::Soleil);
  // Fig. 6: the MonitoringSystem membrane holds an ActiveInterceptor and
  // the per-binding chains (async skeleton for iAudit, memory interceptors
  // for both outgoing bindings, interface entries).
  auto* membrane = app->find_membrane("MonitoringSystem");
  ASSERT_NE(membrane, nullptr);
  const auto kinds = membrane->interceptor_kinds();
  const auto count = [&](const char* kind) {
    return std::count(kinds.begin(), kinds.end(), std::string(kind));
  };
  EXPECT_EQ(count("active-interceptor"), 1);
  EXPECT_EQ(count("async-skeleton"), 1);   // iAudit
  EXPECT_EQ(count("memory-interceptor"), 2);  // iConsole + iAudit
  EXPECT_EQ(count("interface-entry"), 2);

  // The NHRT2 ThreadDomain is reified with its sub-component listed.
  auto* domain = app->find_membrane("NHRT2");
  ASSERT_NE(domain, nullptr);
  EXPECT_EQ(domain->content_controller().subs(),
            (std::vector<std::string>{"MonitoringSystem"}));
}

TEST(ContentControllerTest, TracksSubComponents) {
  ContentController ctrl;
  ctrl.add_sub("a");
  ctrl.add_sub("b");
  EXPECT_TRUE(ctrl.remove_sub("a"));
  EXPECT_FALSE(ctrl.remove_sub("a"));
  EXPECT_EQ(ctrl.subs(), (std::vector<std::string>{"b"}));
}

}  // namespace
}  // namespace rtcf::membrane
