// Governed execution mirrored in the discrete-event simulator: the same
// OverloadGovernor policy drives sim::PreemptiveScheduler release gates,
// so shedding decisions are reproducible bit-for-bit in virtual time —
// run twice, compare decision logs and traces.
//
// The scenario is the classic mixed-criticality inversion: a
// low-criticality bulk task with a *higher* fixed priority overruns its
// WCET budget and starves a high-criticality control task. Ungoverned,
// the control task misses continuously; governed, the governor rate-limits
// and then sheds the bulk task and the control task recovers.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "monitor/contract.hpp"
#include "monitor/governor.hpp"
#include "sim/scheduler.hpp"

namespace rtcf::sim {
namespace {

using monitor::ContractMonitor;
using monitor::OverloadGovernor;
using monitor::GovernorLevel;
using monitor::Violation;
using monitor::WindowOutcome;

struct GovernedRun {
  TaskStats high;
  TaskStats bulk;
  std::vector<std::string> decisions;  // "level@trigger" transitions
  std::vector<std::string> trace;
};

GovernedRun run_scenario(bool governed) {
  PreemptiveScheduler sched;
  sched.enable_trace();

  TaskConfig high;
  high.name = "HighCtrl";
  high.kind = ThreadKind::Realtime;
  high.priority = 20;
  high.release = ReleaseKind::Periodic;
  high.period = RelativeTime::milliseconds(10);
  high.cost = RelativeTime::milliseconds(2);
  const TaskId high_id = sched.add_task(high);

  TaskConfig bulk;
  bulk.name = "BulkLow";
  bulk.kind = ThreadKind::Realtime;
  bulk.priority = 25;  // misconfigured above the control task
  bulk.release = ReleaseKind::Periodic;
  bulk.period = RelativeTime::milliseconds(10);
  bulk.cost = RelativeTime::milliseconds(9);  // overruns its 3 ms budget
  const TaskId bulk_id = sched.add_task(bulk);

  model::TimingContract contract;
  contract.wcet_budget = RelativeTime::milliseconds(3);
  contract.window = 4;

  OverloadGovernor governor;
  const auto gov_high =
      governor.add_component("HighCtrl", model::Criticality::High);
  const auto gov_bulk =
      governor.add_component("BulkLow", model::Criticality::Low);
  ContractMonitor bulk_contract("BulkLow", contract);

  if (governed) {
    sched.set_release_gate(high_id, [&](TaskId, std::uint64_t) {
      return governor.admit_release(gov_high) ==
             OverloadGovernor::Admission::Run;
    });
    sched.set_release_gate(bulk_id, [&](TaskId, std::uint64_t) {
      return governor.admit_release(gov_bulk) ==
             OverloadGovernor::Admission::Run;
    });
    // Completion feeds the contract with the modeled execution demand —
    // the virtual-time stand-in for the launcher's measured execution.
    sched.set_on_complete(bulk_id, [&](AbsoluteTime) {
      Violation out[2];
      WindowOutcome outcome = WindowOutcome::Open;
      bulk_contract.record_execution(RelativeTime::milliseconds(9), false,
                                     out, &outcome);
      if (outcome == WindowOutcome::Violated) {
        governor.on_window_violated(gov_bulk);
      } else if (outcome == WindowOutcome::Clean) {
        governor.on_window_clean(gov_bulk);
      }
    });
  }

  sched.run_until(AbsoluteTime::epoch() + RelativeTime::seconds(1));

  GovernedRun result;
  result.high = sched.stats(high_id);
  result.bulk = sched.stats(bulk_id);
  for (const auto& decision : governor.decisions()) {
    result.decisions.push_back(std::string(to_string(decision.level)) + "@" +
                               decision.trigger);
  }
  result.trace.reserve(sched.trace().size());
  for (const auto& event : sched.trace()) {
    result.trace.push_back(event.to_string(sched));
  }
  return result;
}

TEST(GovernedSimTest, GovernorProtectsHighCriticalityDeadlines) {
  const GovernedRun ungoverned = run_scenario(false);
  const GovernedRun governed = run_scenario(true);

  // Ungoverned: the 9 ms higher-priority bulk task starves the control
  // task (11 ms/period of demand on one CPU; every completed control
  // release responds past its 10 ms deadline).
  EXPECT_GT(ungoverned.high.deadline_misses, 30u);
  EXPECT_EQ(ungoverned.bulk.shed_releases, 0u);
  EXPECT_TRUE(ungoverned.decisions.empty());

  // Governed: rate-limit after 2 violated windows (8 executions), shed
  // after 2 more; misses stop once the bulk task is out of the way.
  ASSERT_EQ(governed.decisions.size(), 2u);
  EXPECT_EQ(governed.decisions[0], "rate-limit@BulkLow");
  EXPECT_EQ(governed.decisions[1], "shed@BulkLow");
  EXPECT_GT(governed.bulk.shed_releases, 0u);
  EXPECT_EQ(governed.high.shed_releases, 0u)
      << "high-criticality releases are never gated away";
  EXPECT_LT(governed.high.deadline_misses,
            ungoverned.high.deadline_misses / 2)
      << "shedding must relieve the high-criticality task";
  // Once shed, the control task runs alone and completes everything.
  EXPECT_EQ(governed.high.releases_completed, 100u);
}

TEST(GovernedSimTest, GovernedDecisionsReplayDeterministically) {
  const GovernedRun first = run_scenario(true);
  const GovernedRun second = run_scenario(true);
  // Same inputs, same governor decisions, same trace — bit for bit.
  EXPECT_EQ(first.decisions, second.decisions);
  ASSERT_EQ(first.trace.size(), second.trace.size());
  EXPECT_EQ(first.trace, second.trace);
  EXPECT_EQ(first.high.deadline_misses, second.high.deadline_misses);
  EXPECT_EQ(first.bulk.shed_releases, second.bulk.shed_releases);

  // Shed events are visible in the trace with the component identity.
  bool saw_shed = false;
  for (const auto& line : first.trace) {
    if (line.find("shed BulkLow#") != std::string::npos) saw_shed = true;
    EXPECT_EQ(line.find("shed HighCtrl"), std::string::npos);
  }
  EXPECT_TRUE(saw_shed);
}

TEST(GovernedSimTest, UngatedTasksLeaveTracesUntouched) {
  // A scheduler with no gates must behave exactly as before the gate
  // existed: no shed events anywhere in the trace, nothing shed in stats.
  const GovernedRun ungoverned = run_scenario(false);
  for (const auto& line : ungoverned.trace) {
    EXPECT_EQ(line.find("shed"), std::string::npos);
  }
  EXPECT_EQ(ungoverned.high.shed_releases, 0u);
  EXPECT_EQ(ungoverned.bulk.shed_releases, 0u);
  EXPECT_GT(ungoverned.bulk.releases_completed, 0u);
}

}  // namespace
}  // namespace rtcf::sim
