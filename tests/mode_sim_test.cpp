// Virtual-time mirror of mode transitions: TraceKind::ModeChange replay is
// deterministic, disabled tasks release nothing, rate overrides take
// effect after the already-scheduled release.
#include <gtest/gtest.h>

#include <string>

#include "reconfig/sim_mirror.hpp"
#include "scenario/production_scenario.hpp"
#include "sim/architecture_sim.hpp"
#include "sim/scheduler.hpp"

namespace rtcf {
namespace {

using rtsj::AbsoluteTime;
using rtsj::RelativeTime;
using sim::PreemptiveScheduler;
using sim::TraceKind;

std::string render_trace(const PreemptiveScheduler& sched) {
  std::string out;
  for (const auto& ev : sched.trace()) {
    out += ev.to_string(sched);
    out += '\n';
  }
  return out;
}

/// One full normal -> degraded -> recovery cycle of the moded production
/// architecture in virtual time.
std::string run_mode_cycle() {
  const auto arch = scenario::make_moded_production_architecture();
  PreemptiveScheduler sched;
  sched.enable_trace();
  const auto mapping = sim::map_architecture(arch, sched);
  reconfig::schedule_mode(sched, arch, *arch.find_mode("Degraded"), mapping,
                          AbsoluteTime(100'000'000));
  reconfig::schedule_mode(sched, arch, *arch.find_mode("Normal"), mapping,
                          AbsoluteTime(200'000'000));
  sched.run_until(AbsoluteTime(300'000'000));
  return render_trace(sched);
}

TEST(ModeSimTest, ModeChangeReplayIsBitForBitStable) {
  const std::string first = run_mode_cycle();
  const std::string second = run_mode_cycle();
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("mode-change"), std::string::npos);
}

TEST(ModeSimTest, DisabledTaskReleasesNothingAndResumesOnGrid) {
  PreemptiveScheduler sched;
  sched.enable_trace();
  sim::TaskConfig cfg;
  cfg.name = "periodic";
  cfg.period = RelativeTime::milliseconds(10);
  cfg.cost = RelativeTime::milliseconds(1);
  const auto task = sched.add_task(cfg);

  sched.schedule_mode_change(AbsoluteTime(45'000'000),
                             {{task, false, RelativeTime::zero()}});
  sched.schedule_mode_change(AbsoluteTime(95'000'000),
                             {{task, true, RelativeTime::zero()}});
  sched.run_until(AbsoluteTime(145'000'000));

  EXPECT_TRUE(sched.task_enabled(task));
  std::vector<std::int64_t> release_ns;
  for (const auto& ev : sched.trace()) {
    if (ev.kind == TraceKind::Release) release_ns.push_back(ev.time.nanos());
  }
  // Releases at 0..40 ms, silence while disabled, resume on the original
  // grid at 100 ms — no catch-up burst for 50..90 ms.
  const std::vector<std::int64_t> expected = {
      0,           10'000'000,  20'000'000,  30'000'000, 40'000'000,
      100'000'000, 110'000'000, 120'000'000, 130'000'000, 140'000'000};
  EXPECT_EQ(release_ns, expected);
  EXPECT_EQ(sched.stats(task).releases_completed, expected.size());
}

TEST(ModeSimTest, PeriodOverrideAppliesAfterScheduledRelease) {
  PreemptiveScheduler sched;
  sched.enable_trace();
  sim::TaskConfig cfg;
  cfg.name = "periodic";
  cfg.period = RelativeTime::milliseconds(10);
  cfg.cost = RelativeTime::milliseconds(1);
  const auto task = sched.add_task(cfg);

  sched.schedule_mode_change(AbsoluteTime(35'000'000),
                             {{task, true, RelativeTime::milliseconds(20)}});
  sched.run_until(AbsoluteTime(101'000'000));

  std::vector<std::int64_t> release_ns;
  for (const auto& ev : sched.trace()) {
    if (ev.kind == TraceKind::Release) release_ns.push_back(ev.time.nanos());
  }
  // The release already scheduled for 40 ms keeps its instant; releases
  // after it use the 20 ms period.
  const std::vector<std::int64_t> expected = {
      0,          10'000'000, 20'000'000, 30'000'000,
      40'000'000, 60'000'000, 80'000'000, 100'000'000};
  EXPECT_EQ(release_ns, expected);
}

TEST(ModeSimTest, DisabledSporadicIgnoresArrivals) {
  PreemptiveScheduler sched;
  sim::TaskConfig cfg;
  cfg.name = "sporadic";
  cfg.release = rtsj::ReleaseKind::Sporadic;
  cfg.cost = RelativeTime::milliseconds(1);
  const auto task = sched.add_task(cfg);

  sched.post_arrival(task, AbsoluteTime(1'000'000));
  sched.schedule_mode_change(AbsoluteTime(5'000'000),
                             {{task, false, RelativeTime::zero()}});
  sched.run_until(AbsoluteTime(6'000'000));
  sched.post_arrival(task, AbsoluteTime(10'000'000));
  sched.run_until(AbsoluteTime(20'000'000));
  EXPECT_EQ(sched.stats(task).releases_completed, 1u);
}

}  // namespace
}  // namespace rtcf
