// Communication layer: messages, ports, buffers, content registry.
#include <gtest/gtest.h>

#include "comm/content.hpp"
#include "comm/message_buffer.hpp"
#include "runtime/content_registry.hpp"

namespace rtcf::comm {
namespace {

TEST(MessageTest, StoreLoadRoundTrip) {
  struct Payload {
    double a;
    std::int32_t b;
  };
  Message m;
  m.type_id = 9;
  m.sequence = 77;
  m.store(Payload{2.5, -3});
  EXPECT_EQ(m.size, sizeof(Payload));
  const auto p = m.load<Payload>();
  EXPECT_DOUBLE_EQ(p.a, 2.5);
  EXPECT_EQ(p.b, -3);
}

TEST(MessageTest, CopyIsValueSemantics) {
  Message a;
  a.store(1.0);
  Message b = a;
  b.store(2.0);
  EXPECT_DOUBLE_EQ(a.load<double>(), 1.0);
  EXPECT_DOUBLE_EQ(b.load<double>(), 2.0);
}

TEST(MessageBufferTest, FifoWithDropCounting) {
  MessageBuffer buffer(rtsj::ImmortalMemory::instance(), 2);
  Message m;
  m.sequence = 1;
  EXPECT_TRUE(buffer.push(m));
  m.sequence = 2;
  EXPECT_TRUE(buffer.push(m));
  m.sequence = 3;
  EXPECT_FALSE(buffer.push(m));
  EXPECT_EQ(buffer.dropped_total(), 1u);
  EXPECT_EQ(buffer.enqueued_total(), 2u);
  EXPECT_EQ(buffer.pop()->sequence, 1u);
  EXPECT_EQ(buffer.pop()->sequence, 2u);
  EXPECT_FALSE(buffer.pop().has_value());
}

TEST(MessageBufferTest, SlotsLiveInTheGivenArea) {
  rtsj::ScopedMemory scope("buf-scope", 8 * 1024);
  const auto consumed_before = scope.memory_consumed();
  MessageBuffer buffer(scope, 10);
  EXPECT_GE(scope.memory_consumed() - consumed_before,
            10 * sizeof(Message));
  EXPECT_EQ(&buffer.area(), &scope);
}

TEST(MessageBufferTest, ClearEmptiesWithoutTouchingCounters) {
  MessageBuffer buffer(rtsj::ImmortalMemory::instance(), 4);
  Message m;
  buffer.push(m);
  buffer.push(m);
  buffer.clear();
  EXPECT_TRUE(buffer.empty());
  EXPECT_EQ(buffer.enqueued_total(), 2u);
}

TEST(OutPortTest, UnboundPortThrowsOnUse) {
  OutPort port("p");
  EXPECT_FALSE(port.bound());
  Message m;
  EXPECT_THROW(port.send(m), std::logic_error);
  EXPECT_THROW((void)port.call(m), std::logic_error);
}

TEST(OutPortTest, DirectBufferFastPathWithTransform) {
  MessageBuffer buffer(rtsj::ImmortalMemory::instance(), 4);
  OutPort port("p");
  static Message transformed_slot;
  auto transform = [](void*, const Message& m) -> const Message& {
    transformed_slot = m;
    transformed_slot.type_id = 99;
    return transformed_slot;
  };
  static int notifications = 0;
  notifications = 0;
  auto notify = [](void*) { ++notifications; };
  port.bind_direct_buffer(&buffer, notify, nullptr, transform, nullptr);
  ASSERT_TRUE(port.bound());
  Message m;
  m.type_id = 1;
  port.send(m);
  EXPECT_EQ(notifications, 1);
  EXPECT_EQ(buffer.pop()->type_id, 99u);
}

class ProbeContent final : public Content {
 public:
  void on_message(const Message&) override { ++messages; }
  Message on_invoke(const Message& m) override {
    Message out = m;
    out.type_id = 5;
    return out;
  }
  int messages = 0;
};

TEST(OutPortTest, DirectContentFastPath) {
  ProbeContent target;
  OutPort port("p");
  port.bind_direct_content(&target);
  Message m;
  EXPECT_EQ(port.call(m).type_id, 5u);
  port.send(m);  // one-way over direct content degenerates to on_message
  EXPECT_EQ(target.messages, 1);
  port.unbind();
  EXPECT_FALSE(port.bound());
}

TEST(ContentTest, PortLookupByNameAndIndex) {
  ProbeContent content;
  content.add_port("alpha");
  content.add_port("beta");
  EXPECT_EQ(content.port_count(), 2u);
  EXPECT_EQ(&content.port("alpha"), &content.port(0));
  EXPECT_EQ(&content.port("beta"), &content.port(1));
  EXPECT_THROW(content.port("gamma"), std::invalid_argument);
}

TEST(ContentRegistryTest, CreatesIntoGivenArea) {
  auto& registry = runtime::ContentRegistry::instance();
  registry.register_class<ProbeContent>("ProbeContent");
  EXPECT_TRUE(registry.contains("ProbeContent"));
  rtsj::ScopedMemory scope("registry-scope", 8 * 1024);
  Content* created = registry.create("ProbeContent", scope);
  ASSERT_NE(created, nullptr);
  EXPECT_TRUE(scope.contains(created));
  EXPECT_NE(dynamic_cast<ProbeContent*>(created), nullptr);
  EXPECT_THROW(registry.create("NoSuchClass", scope),
               std::invalid_argument);
}

TEST(ContentRegistryTest, ListsRegisteredClasses) {
  auto& registry = runtime::ContentRegistry::instance();
  registry.register_class<ProbeContent>("ZZZProbe");
  const auto names = registry.registered();
  EXPECT_NE(std::find(names.begin(), names.end(), "ZZZProbe"), names.end());
  // The scenario contents self-register at static-init time.
  EXPECT_TRUE(registry.contains("ProductionLineImpl"));
  EXPECT_TRUE(registry.contains("ConsoleImpl"));
}

}  // namespace
}  // namespace rtcf::comm
