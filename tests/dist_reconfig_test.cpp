// Distributed reconfiguration end to end: two NodeRuntimes over loopback
// channels under one ReconfigCoordinator — atomic commit, vetoed prepare,
// straggler timeout, cluster demotion, shared-clock mirror
// (`ctest -L dist`).
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "dist/cluster_sim.hpp"
#include "dist/coordinator.hpp"
#include "dist/node_runtime.hpp"
#include "dist/plan_codec.hpp"
#include "runtime/content_registry.hpp"

namespace rtcf::dist {
namespace {

using model::ActivationKind;
using model::Architecture;
using model::Binding;
using model::Criticality;
using model::DomainType;
using model::InterfaceRole;
using model::Protocol;
using validate::NodeMap;

class ProducerImpl final : public comm::Content {
 public:
  void on_release() override {
    comm::Message m;
    m.sequence = ++sent_;
    port(0).send(m);
  }
  std::uint64_t sent() const noexcept { return sent_; }

 private:
  std::uint64_t sent_ = 0;
};

class SinkImpl final : public comm::Content {
 public:
  void on_message(const comm::Message&) override { ++received_; }
  std::uint64_t received() const noexcept { return received_; }

 private:
  std::uint64_t received_ = 0;
};

RTCF_REGISTER_CONTENT(ProducerImpl)
RTCF_REGISTER_CONTENT(SinkImpl)

void add_modes(Architecture& arch, bool with_sink) {
  model::ModeDecl normal;
  normal.name = "Normal";
  normal.components.push_back({"Producer", rtsj::RelativeTime::zero(), {}});
  if (with_sink) {
    normal.components.push_back({"Sink", rtsj::RelativeTime::zero(), {}});
  }
  arch.add_mode(std::move(normal));
  model::ModeDecl degraded;
  degraded.name = "Degraded";
  degraded.degraded = true;
  degraded.components.push_back(
      {"Producer", rtsj::RelativeTime::milliseconds(50), {}});
  arch.add_mode(std::move(degraded));
}

/// Producer@alpha --async--> Sink@beta.
Architecture base_arch() {
  Architecture arch;
  auto& producer = arch.add_active("Producer", ActivationKind::Periodic,
                                   rtsj::RelativeTime::milliseconds(5));
  producer.set_content_class("ProducerImpl");
  producer.set_cost(rtsj::RelativeTime::microseconds(30));
  producer.set_swappable(true);
  producer.add_interface({"out", InterfaceRole::Client, "ISink"});
  auto& sink = arch.add_active("Sink", ActivationKind::Sporadic);
  sink.set_content_class("SinkImpl");
  sink.set_criticality(Criticality::Low);
  sink.set_swappable(true);
  sink.add_interface({"in", InterfaceRole::Server, "ISink"});
  Binding bridge;
  bridge.client = {"Producer", "out"};
  bridge.server = {"Sink", "in"};
  bridge.desc.protocol = Protocol::Asynchronous;
  bridge.desc.buffer_size = 64;
  arch.add_binding(bridge);
  auto& rt = arch.add_thread_domain("RT_A", DomainType::Realtime, 20);
  arch.add_child(rt, producer);
  auto& reg = arch.add_thread_domain("reg_B", DomainType::Regular, 5);
  arch.add_child(reg, sink);
  add_modes(arch, /*with_sink=*/true);
  return arch;
}

/// The reload target: Sink@beta replaced by Sink2@beta (cross-node async
/// rebind of Producer.out), plus a new Watchdog@alpha.
Architecture target_arch() {
  Architecture arch;
  auto& producer = arch.add_active("Producer", ActivationKind::Periodic,
                                   rtsj::RelativeTime::milliseconds(5));
  producer.set_content_class("ProducerImpl");
  producer.set_cost(rtsj::RelativeTime::microseconds(30));
  producer.set_swappable(true);
  producer.add_interface({"out", InterfaceRole::Client, "ISink"});
  auto& watchdog = arch.add_active("Watchdog", ActivationKind::Periodic,
                                   rtsj::RelativeTime::milliseconds(20));
  watchdog.set_content_class("ProducerImpl");
  watchdog.set_swappable(true);
  watchdog.add_interface({"out", InterfaceRole::Client, "ISink"});
  auto& sink2 = arch.add_active("Sink2", ActivationKind::Sporadic);
  sink2.set_content_class("SinkImpl");
  sink2.set_criticality(Criticality::Low);
  sink2.set_swappable(true);
  sink2.add_interface({"in", InterfaceRole::Server, "ISink"});
  Binding bridge;
  bridge.client = {"Producer", "out"};
  bridge.server = {"Sink2", "in"};
  bridge.desc.protocol = Protocol::Asynchronous;
  bridge.desc.buffer_size = 64;
  arch.add_binding(bridge);
  Binding watchdog_bridge;
  watchdog_bridge.client = {"Watchdog", "out"};
  watchdog_bridge.server = {"Sink2", "in"};
  watchdog_bridge.desc.protocol = Protocol::Asynchronous;
  watchdog_bridge.desc.buffer_size = 16;
  arch.add_binding(watchdog_bridge);
  auto& rt = arch.add_thread_domain("RT_A", DomainType::Realtime, 20);
  arch.add_child(rt, producer);
  auto& rt2 = arch.add_thread_domain("RT_W", DomainType::Realtime, 15);
  arch.add_child(rt2, watchdog);
  auto& reg = arch.add_thread_domain("reg_B", DomainType::Regular, 5);
  arch.add_child(reg, sink2);
  add_modes(arch, /*with_sink=*/false);
  return arch;
}

NodeMap target_map() {
  NodeMap map;
  map.nodes = {"alpha", "beta"};
  map.assignment = {{"Producer", "alpha"}, {"Watchdog", "alpha"},
                    {"Sink", "beta"}, {"Sink2", "beta"}};
  return map;
}

/// Wires two nodes and a coordinator over loopback channels.
struct Cluster {
  Architecture global = base_arch();
  NodeMap map = target_map();  // superset assignment covers both versions
  std::unique_ptr<NodeRuntime> alpha;
  std::unique_ptr<NodeRuntime> beta;
  std::unique_ptr<ReconfigCoordinator> coordinator;

  explicit Cluster(NodeRuntime::Options options = NodeRuntime::Options()) {
    alpha = std::make_unique<NodeRuntime>(global, map, "alpha", options);
    beta = std::make_unique<NodeRuntime>(global, map, "beta", options);
    ReconfigCoordinator::Options copts;
    copts.prepare_timeout = rtsj::RelativeTime::milliseconds(1500);
    coordinator = std::make_unique<ReconfigCoordinator>(map, copts);
    auto [a_node, a_coord] = comm::LoopbackChannel::make_pair();
    auto [b_node, b_coord] = comm::LoopbackChannel::make_pair();
    alpha->attach_control(a_node);
    beta->attach_control(b_node);
    coordinator->attach("alpha", a_coord, global);
    coordinator->attach("beta", b_coord, global);
    auto [ab, ba] = comm::LoopbackChannel::make_pair();
    alpha->connect_peer("beta", ab);
    beta->connect_peer("alpha", ba);
  }
};

TEST(DistReconfigTest, AtomicReloadAcrossTwoNodes) {
  NodeRuntime::Options options;
  options.run_duration = rtsj::RelativeTime::milliseconds(450);
  Cluster cluster(options);
  cluster.alpha->start();
  cluster.beta->start();
  std::this_thread::sleep_for(std::chrono::milliseconds(120));

  const std::uint64_t alpha_epoch_before =
      cluster.alpha->mode_manager().plan_epoch();
  const Architecture target = target_arch();
  const auto outcome = cluster.coordinator->coordinate_reload(target);
  EXPECT_TRUE(outcome.committed)
      << outcome.reason << "\n"
      << outcome.report.to_string()
      << (outcome.nodes.empty() ? "" : outcome.nodes[0].detail + " / " +
                                           outcome.nodes[1].detail);
  ASSERT_EQ(outcome.nodes.size(), 2u);
  EXPECT_TRUE(outcome.nodes[0].committed);
  EXPECT_TRUE(outcome.nodes[1].committed);
  EXPECT_GT(cluster.alpha->mode_manager().plan_epoch(), alpha_epoch_before);

  // The committed structure exists on both nodes.
  EXPECT_NE(cluster.alpha->application().assembly().find("Watchdog"),
            nullptr);
  EXPECT_NE(cluster.beta->application().assembly().find("Sink2"), nullptr);
  EXPECT_EQ(cluster.beta->application().assembly().find("Sink"), nullptr);

  cluster.alpha->stop();
  cluster.beta->stop();

  // Zero-loss conservation: everything the producers sent was either
  // received by the old sink (pre-reload) or the new one (post-reload).
  const auto* producer = dynamic_cast<const ProducerImpl*>(
      cluster.alpha->application().content("Producer"));
  const auto* watchdog = dynamic_cast<const ProducerImpl*>(
      cluster.alpha->application().content("Watchdog"));
  const auto* sink = dynamic_cast<const SinkImpl*>(
      cluster.beta->application().content("Sink"));
  const auto* sink2 = dynamic_cast<const SinkImpl*>(
      cluster.beta->application().content("Sink2"));
  ASSERT_NE(producer, nullptr);
  ASSERT_NE(watchdog, nullptr);
  ASSERT_NE(sink, nullptr);
  ASSERT_NE(sink2, nullptr);
  const std::uint64_t sent = producer->sent() + watchdog->sent();
  const std::uint64_t received = sink->received() + sink2->received();
  EXPECT_GT(producer->sent(), 0u);
  EXPECT_GT(watchdog->sent(), 0u);
  EXPECT_GT(sink2->received(), 0u) << "post-reload traffic must arrive";
  EXPECT_EQ(sent, received);

  const auto alpha_stats = cluster.alpha->gateway_stats();
  const auto beta_stats = cluster.beta->gateway_stats();
  EXPECT_EQ(alpha_stats.exit_dropped, 0u);
  EXPECT_EQ(beta_stats.entry_dropped, 0u);
  EXPECT_EQ(alpha_stats.forwarded, sent);
  EXPECT_EQ(beta_stats.injected, received);
  EXPECT_EQ(cluster.alpha->inbox_depth(), 0u);
  EXPECT_EQ(cluster.beta->inbox_depth(), 0u);
}

TEST(DistReconfigTest, VetoedPrepareAbortsGloballyOnOldEpoch) {
  NodeRuntime::Options options;
  options.run_duration = rtsj::RelativeTime::milliseconds(400);
  Cluster cluster(options);
  cluster.alpha->start();
  cluster.beta->start();
  std::this_thread::sleep_for(std::chrono::milliseconds(80));

  const std::uint64_t alpha_epoch =
      cluster.alpha->mode_manager().plan_epoch();
  const std::uint64_t beta_epoch = cluster.beta->mode_manager().plan_epoch();
  cluster.beta->fail_next_prepare("drill: injected prepare failure");

  const auto outcome =
      cluster.coordinator->coordinate_reload(target_arch());
  EXPECT_FALSE(outcome.committed);
  EXPECT_NE(outcome.reason.find("rejected"), std::string::npos)
      << outcome.reason;
  ASSERT_EQ(outcome.nodes.size(), 2u);
  EXPECT_TRUE(outcome.nodes[0].prepared);   // alpha voted OK...
  EXPECT_FALSE(outcome.nodes[0].committed); // ...but was aborted
  EXPECT_FALSE(outcome.nodes[1].prepared);

  // Both nodes remain on their old epoch with the old structure.
  EXPECT_EQ(cluster.alpha->mode_manager().plan_epoch(), alpha_epoch);
  EXPECT_EQ(cluster.beta->mode_manager().plan_epoch(), beta_epoch);
  EXPECT_EQ(cluster.alpha->application().assembly().find("Watchdog"),
            nullptr);
  EXPECT_NE(cluster.beta->application().assembly().find("Sink"), nullptr);

  // The aborted cluster still moves traffic (the executive resumed).
  const auto next =
      cluster.coordinator->coordinate_reload(target_arch());
  EXPECT_TRUE(next.committed) << next.reason;

  cluster.alpha->stop();
  cluster.beta->stop();
}

TEST(DistReconfigTest, StragglerTimeoutProducesACleanGlobalAbort) {
  NodeRuntime::Options options;
  options.run_duration = rtsj::RelativeTime::milliseconds(350);
  Cluster cluster(options);
  ReconfigCoordinator::Options copts;
  copts.prepare_timeout = rtsj::RelativeTime::milliseconds(150);
  copts.decision_timeout = rtsj::RelativeTime::milliseconds(150);
  cluster.coordinator =
      std::make_unique<ReconfigCoordinator>(cluster.map, copts);
  auto [a_node, a_coord] = comm::LoopbackChannel::make_pair();
  auto [b_node, b_coord] = comm::LoopbackChannel::make_pair();
  cluster.alpha->attach_control(a_node);
  cluster.beta->attach_control(b_node);
  cluster.coordinator->attach("alpha", a_coord, cluster.global);
  cluster.coordinator->attach("beta", b_coord, cluster.global);

  cluster.alpha->start();  // beta never starts serving: the straggler
  std::this_thread::sleep_for(std::chrono::milliseconds(60));

  const std::uint64_t alpha_epoch =
      cluster.alpha->mode_manager().plan_epoch();
  const auto outcome =
      cluster.coordinator->coordinate_reload(target_arch());
  EXPECT_FALSE(outcome.committed);
  EXPECT_NE(outcome.reason.find("straggler"), std::string::npos)
      << outcome.reason;
  EXPECT_EQ(cluster.alpha->mode_manager().plan_epoch(), alpha_epoch);

  cluster.alpha->stop();
  cluster.beta->stop();
}

TEST(DistReconfigTest, CoordinatorCrashMidDecisionDivergesThenResyncs) {
  // The FaultHooks drill (the adversity engine's wall-clock anchor): the
  // coordinator dies after the first COMMIT frame leaves. The node that
  // received the decision applies it; the node left prepared presumed-
  // aborts. The cluster is now diverged — which the next reload's
  // delta-agreement vote must catch — until the diverged node is
  // re-attached with what it actually runs.
  // Margins are generous: sanitized runs on a small CI host can stall a
  // serve thread for tens of milliseconds, and the COMMIT frame must land
  // on one node well inside its presumed-abort window.
  NodeRuntime::Options options;
  options.run_duration = rtsj::RelativeTime::milliseconds(3500);
  options.decision_timeout = rtsj::RelativeTime::milliseconds(400);
  Cluster cluster(options);
  // Rewire by hand so the test keeps the coordinator-side channel handles
  // (re-attaching the diverged node needs them).
  ReconfigCoordinator::Options copts;
  copts.prepare_timeout = rtsj::RelativeTime::milliseconds(1500);
  cluster.coordinator =
      std::make_unique<ReconfigCoordinator>(cluster.map, copts);
  auto [a_node, a_coord] = comm::LoopbackChannel::make_pair();
  auto [b_node, b_coord] = comm::LoopbackChannel::make_pair();
  cluster.alpha->attach_control(a_node);
  cluster.beta->attach_control(b_node);
  cluster.coordinator->attach("alpha", a_coord, cluster.global);
  cluster.coordinator->attach("beta", b_coord, cluster.global);

  cluster.alpha->start();
  cluster.beta->start();
  std::this_thread::sleep_for(std::chrono::milliseconds(80));

  int decision_frames = 0;
  ReconfigCoordinator::FaultHooks hooks;
  hooks.before_decision = [&](const std::string&, std::uint64_t, bool) {
    return ++decision_frames == 1;  // die before the second COMMIT frame
  };
  cluster.coordinator->set_fault_hooks(&hooks);
  const Architecture target = target_arch();
  const auto crashed = cluster.coordinator->coordinate_reload(target);
  cluster.coordinator->set_fault_hooks(nullptr);
  EXPECT_FALSE(crashed.committed);
  EXPECT_NE(crashed.reason.find("crashed mid-decision"), std::string::npos)
      << crashed.reason;
  EXPECT_EQ(decision_frames, 2);

  // alpha applies the decision it received; beta's presumed-abort timer
  // releases its executive.
  std::this_thread::sleep_for(std::chrono::milliseconds(700));
  EXPECT_NE(cluster.alpha->application().assembly().find("Watchdog"),
            nullptr);
  EXPECT_NE(cluster.beta->application().assembly().find("Sink"), nullptr);
  EXPECT_EQ(cluster.beta->application().assembly().find("Sink2"), nullptr);

  // The coordinator's view of alpha is stale (no snapshot advanced on the
  // crashed transaction): alpha's agreement vote aborts the reload. The
  // epoch guard trips first here; the byte-exact delta comparison is the
  // backstop behind it.
  const auto stale = cluster.coordinator->coordinate_reload(target);
  EXPECT_FALSE(stale.committed);
  EXPECT_NE(stale.reason.find("stale epoch"), std::string::npos)
      << stale.reason;

  // Resync: re-attach the diverged node with what it actually runs; the
  // same reload now commits cluster-wide.
  cluster.coordinator->attach("alpha", a_coord, target);
  const auto resynced = cluster.coordinator->coordinate_reload(target);
  EXPECT_TRUE(resynced.committed) << resynced.reason;
  EXPECT_NE(cluster.beta->application().assembly().find("Sink2"), nullptr);

  cluster.alpha->stop();
  cluster.beta->stop();
}

TEST(DistReconfigTest, GovernorDemotionShutsDownAWholeNode) {
  NodeRuntime::Options options;
  options.run_duration = rtsj::RelativeTime::milliseconds(600);
  options.demote_at = monitor::GovernorLevel::Shed;
  Cluster cluster(options);
  cluster.alpha->start();
  cluster.beta->start();
  std::this_thread::sleep_for(std::chrono::milliseconds(80));

  // Sustained overload on alpha's producer: escalate the governor to Shed
  // by feeding violated contract windows (the contract monitor's job in
  // production; driven directly here).
  auto& monitor = cluster.alpha->application().monitor();
  const auto* entry = monitor.find("Producer");
  ASSERT_NE(entry, nullptr);
  for (int i = 0; i < 8; ++i) {
    monitor.governor().on_window_violated(entry->governor_id);
  }
  ASSERT_EQ(monitor.governor().level(), monitor::GovernorLevel::Shed);

  // The node reports instead of demoting locally; the coordinator answers
  // with a cluster-wide transition into the degraded mode.
  const auto request = cluster.coordinator->poll_demote_request(
      rtsj::RelativeTime::milliseconds(2000));
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->node, "alpha");
  EXPECT_EQ(request->mode, "Degraded");

  const auto outcome =
      cluster.coordinator->coordinate_transition(request->mode);
  EXPECT_TRUE(outcome.committed) << outcome.reason;
  EXPECT_EQ(cluster.alpha->mode_manager().current_mode(), "Degraded");
  EXPECT_EQ(cluster.beta->mode_manager().current_mode(), "Degraded");

  // Beta's Degraded mode lists no local components: everything it manages
  // is quiesced — the whole node is shut down by one coordinated
  // transition.
  const auto* setting =
      cluster.beta->mode_manager().setting("Sink");
  ASSERT_NE(setting, nullptr);
  EXPECT_FALSE(setting->enabled);

  cluster.alpha->stop();
  cluster.beta->stop();
}

TEST(DistClusterSimTest, SharedClockMirrorReplaysBitForBit) {
  const Architecture global = base_arch();
  const Architecture target = target_arch();
  const NodeMap map = target_map();

  // Per-node slice deltas, exactly like the coordinator's.
  const auto run_once = [&] {
    sim::PreemptiveScheduler sched(map.nodes.size());
    sched.enable_trace();
    auto mirrors = map_cluster(global, map, sched,
                               rtsj::RelativeTime::microseconds(50));
    const rtsj::AbsoluteTime anchor = rtsj::AbsoluteTime::epoch();
    const rtsj::AbsoluteTime commit =
        anchor + rtsj::RelativeTime::milliseconds(40);
    for (auto& mirror : mirrors) {
      const auto running = soleil::snapshot_assembly(
          slice_architecture(global, map, mirror.node), 1);
      const auto next = soleil::snapshot_assembly(
          slice_architecture(target, map, mirror.node), 1);
      schedule_node_delta(sched, reconfig::diff_plans(running, next),
                          mirror, commit, anchor);
    }
    sched.run_until(anchor + rtsj::RelativeTime::milliseconds(100));
    std::vector<std::string> rendered;
    std::size_t plan_changes = 0;
    for (const auto& ev : sched.trace()) {
      if (ev.kind == sim::TraceKind::PlanChange) ++plan_changes;
      rendered.push_back(ev.to_string(sched));
    }
    return std::make_pair(rendered, plan_changes);
  };

  const auto first = run_once();
  const auto second = run_once();
  EXPECT_EQ(first.second, 2u) << "one PlanChange per node mirror";
  EXPECT_EQ(first.first, second.first) << "cluster replay must be exact";
  EXPECT_FALSE(first.first.empty());
}

}  // namespace
}  // namespace rtcf::dist
