// The dependency-free XML layer under the ADL.
#include <gtest/gtest.h>

#include "adl/xml.hpp"

namespace rtcf::adl {
namespace {

TEST(XmlTest, ParsesMinimalElement) {
  const XmlNode root = parse_xml("<a/>");
  EXPECT_EQ(root.name, "a");
  EXPECT_TRUE(root.children.empty());
  EXPECT_TRUE(root.attributes.empty());
}

TEST(XmlTest, ParsesAttributes) {
  const XmlNode root =
      parse_xml(R"(<c name="x" size='28KB' priority="30"/>)");
  EXPECT_EQ(root.attr_or("name", ""), "x");
  EXPECT_EQ(root.attr_or("size", ""), "28KB");
  EXPECT_EQ(root.attr_or("priority", ""), "30");
  EXPECT_FALSE(root.attr("missing").has_value());
  EXPECT_EQ(root.attr_or("missing", "fallback"), "fallback");
}

TEST(XmlTest, RequireAttrThrowsWhenAbsent) {
  const XmlNode root = parse_xml("<c name='x'/>");
  EXPECT_EQ(root.require_attr("name"), "x");
  EXPECT_THROW((void)root.require_attr("nope"), std::invalid_argument);
}

TEST(XmlTest, ParsesNestedChildren) {
  const XmlNode root = parse_xml(
      "<outer><inner a='1'/><inner a='2'><leaf/></inner></outer>");
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.children[0].name, "inner");
  EXPECT_EQ(root.children[1].children.at(0).name, "leaf");
  EXPECT_EQ(root.children_named("inner").size(), 2u);
  EXPECT_NE(root.child("inner"), nullptr);
  EXPECT_EQ(root.child("nothere"), nullptr);
}

TEST(XmlTest, ParsesTextContent) {
  const XmlNode root = parse_xml("<msg>  hello world  </msg>");
  EXPECT_EQ(root.text, "hello world");
}

TEST(XmlTest, DecodesEntities) {
  const XmlNode root =
      parse_xml(R"(<e v="&lt;a&gt; &amp; &quot;b&quot; &apos;c&apos;"/>)");
  EXPECT_EQ(root.attr_or("v", ""), "<a> & \"b\" 'c'");
}

TEST(XmlTest, SkipsCommentsAndDeclarations) {
  const XmlNode root = parse_xml(
      "<?xml version=\"1.0\"?>\n"
      "<!-- leading comment -->\n"
      "<root><!-- inner --><child/></root>\n"
      "<!-- trailing -->");
  EXPECT_EQ(root.name, "root");
  ASSERT_EQ(root.children.size(), 1u);
}

TEST(XmlTest, ReportsLineAndColumnOnError) {
  try {
    parse_xml("<a>\n  <b>\n</a>");
    FAIL() << "expected XmlParseError";
  } catch (const XmlParseError& e) {
    EXPECT_EQ(e.line(), 3u);
    EXPECT_NE(std::string(e.what()).find("mismatched"), std::string::npos);
  }
}

TEST(XmlTest, RejectsMalformedDocuments) {
  EXPECT_THROW(parse_xml(""), XmlParseError);
  EXPECT_THROW(parse_xml("<a>"), XmlParseError);
  EXPECT_THROW(parse_xml("<a></b>"), XmlParseError);
  EXPECT_THROW(parse_xml("<a b=/>"), XmlParseError);
  EXPECT_THROW(parse_xml("<a/><b/>"), XmlParseError);
  EXPECT_THROW(parse_xml("<a v='&unknown;'/>"), XmlParseError);
}

TEST(XmlTest, EscapeRoundTrip) {
  const std::string raw = "<tag> & \"quoted\" 'single'";
  XmlNode node;
  node.name = "t";
  node.attributes.emplace_back("v", raw);
  const XmlNode parsed = parse_xml(to_xml(node));
  EXPECT_EQ(parsed.attr_or("v", ""), raw);
}

TEST(XmlTest, SerializationIsStable) {
  const char* text =
      "<root a=\"1\"><child x=\"y\"/><child2>body</child2></root>";
  const XmlNode once = parse_xml(text);
  const std::string emitted = to_xml(once);
  const XmlNode twice = parse_xml(emitted);
  EXPECT_EQ(to_xml(twice), emitted);
}

}  // namespace
}  // namespace rtcf::adl
