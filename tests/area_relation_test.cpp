// Architecture-level memory-area relationship analysis.
#include <gtest/gtest.h>

#include "validate/area_relation.hpp"
#include "validate/report.hpp"

namespace rtcf::validate {
namespace {

using namespace rtcf::model;

class AreaRelationTest : public ::testing::Test {
 protected:
  AreaRelationTest() {
    imm_ = &arch_.add_memory_area("Imm", AreaType::Immortal, 0);
    heap_ = &arch_.add_memory_area("Heap", AreaType::Heap, 0);
    outer_ = &arch_.add_memory_area("Outer", AreaType::Scoped, 4096);
    inner_ = &arch_.add_memory_area("Inner", AreaType::Scoped, 1024);
    sibling_ = &arch_.add_memory_area("Sibling", AreaType::Scoped, 1024);
    arch_.add_child(*outer_, *inner_);
    arch_.add_child(*outer_, *sibling_);
  }

  Architecture arch_;
  MemoryAreaComponent* imm_ = nullptr;
  MemoryAreaComponent* heap_ = nullptr;
  MemoryAreaComponent* outer_ = nullptr;
  MemoryAreaComponent* inner_ = nullptr;
  MemoryAreaComponent* sibling_ = nullptr;
};

TEST_F(AreaRelationTest, PrimordialPairs) {
  EXPECT_EQ(relate_areas(arch_, imm_, imm_), AreaRelation::Same);
  EXPECT_EQ(relate_areas(arch_, heap_, heap_), AreaRelation::Same);
  // Distinct primordial types: the server simply outlives everything.
  EXPECT_EQ(relate_areas(arch_, heap_, imm_), AreaRelation::ServerOuter);
  EXPECT_EQ(relate_areas(arch_, imm_, heap_), AreaRelation::ServerOuter);
  // nullptr client/server = undeployed = heap.
  EXPECT_EQ(relate_areas(arch_, nullptr, nullptr), AreaRelation::Same);
  EXPECT_EQ(relate_areas(arch_, nullptr, imm_), AreaRelation::ServerOuter);
}

TEST_F(AreaRelationTest, ScopedVsPrimordial) {
  EXPECT_EQ(relate_areas(arch_, inner_, imm_), AreaRelation::ServerOuter);
  EXPECT_EQ(relate_areas(arch_, inner_, heap_), AreaRelation::ServerOuter);
  EXPECT_EQ(relate_areas(arch_, imm_, inner_), AreaRelation::ServerInner);
  EXPECT_EQ(relate_areas(arch_, nullptr, inner_), AreaRelation::ServerInner);
}

TEST_F(AreaRelationTest, ScopedHierarchy) {
  EXPECT_EQ(relate_areas(arch_, inner_, inner_), AreaRelation::Same);
  EXPECT_EQ(relate_areas(arch_, inner_, outer_), AreaRelation::ServerOuter);
  EXPECT_EQ(relate_areas(arch_, outer_, inner_), AreaRelation::ServerInner);
  EXPECT_EQ(relate_areas(arch_, inner_, sibling_), AreaRelation::Disjoint);
  EXPECT_EQ(relate_areas(arch_, sibling_, inner_), AreaRelation::Disjoint);
}

TEST_F(AreaRelationTest, DesignParentScopeSkipsPrimordialWrappers) {
  // A scope nested inside an immortal area inside a scope: the design
  // parent is the outer *scope*, not the immortal wrapper.
  auto& wrapper = arch_.add_memory_area("Wrapper", AreaType::Immortal, 0);
  auto& deep = arch_.add_memory_area("Deep", AreaType::Scoped, 512);
  arch_.add_child(*outer_, wrapper);
  arch_.add_child(wrapper, deep);
  EXPECT_EQ(design_parent_scope(arch_, deep), outer_);
  EXPECT_EQ(design_parent_scope(arch_, *outer_), nullptr);
  EXPECT_EQ(relate_areas(arch_, &deep, outer_), AreaRelation::ServerOuter);
}

TEST(ReportTest, CountsAndLookup) {
  Report report;
  EXPECT_TRUE(report.ok());
  report.add(Severity::Info, "R1", "x", "info message");
  report.add(Severity::Warning, "R2", "y", "warning message");
  report.add(Severity::Error, "R3", "z", "error message");
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.error_count(), 1u);
  EXPECT_EQ(report.warning_count(), 1u);
  EXPECT_TRUE(report.has_rule("R2"));
  EXPECT_FALSE(report.has_rule("R9"));
  ASSERT_EQ(report.by_rule("R3").size(), 1u);
  EXPECT_EQ(report.by_rule("R3")[0].subject, "z");
  const std::string text = report.to_string();
  EXPECT_NE(text.find("error [R3] z: error message"), std::string::npos);
  EXPECT_NE(text.find("1 error(s), 1 warning(s)"), std::string::npos);
}

TEST(AreaRelationToStringTest, Coverage) {
  EXPECT_STREQ(to_string(AreaRelation::Same), "same");
  EXPECT_STREQ(to_string(AreaRelation::ServerOuter), "server-outer");
  EXPECT_STREQ(to_string(AreaRelation::ServerInner), "server-inner");
  EXPECT_STREQ(to_string(AreaRelation::Disjoint), "disjoint");
}

}  // namespace
}  // namespace rtcf::validate
