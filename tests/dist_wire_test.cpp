// Wire codec: AssemblyPlan/PlanDelta serialization — round-trip equality,
// truncated-buffer rejection, cross-version (unknown-field) tolerance, and
// the protocol frame payloads (`ctest -L dist`).
#include <gtest/gtest.h>

#include "dist/plan_codec.hpp"
#include "dist/protocol.hpp"
#include "dist/wire.hpp"

namespace rtcf::dist {
namespace {

model::ComponentSpec sample_component() {
  model::ComponentSpec spec;
  spec.name = "ProductionLine";
  spec.kind = model::ComponentKind::Active;
  spec.activation = model::ActivationKind::Periodic;
  spec.period = rtsj::RelativeTime::milliseconds(10);
  spec.cost = rtsj::RelativeTime::microseconds(200);
  spec.content_class = "ProductionLineImpl";
  spec.criticality = model::Criticality::Low;
  model::TimingContract contract;
  contract.wcet_budget = rtsj::RelativeTime::milliseconds(8);
  contract.miss_ratio_bound = 0.5;
  contract.max_arrival_rate_hz = 125.0;
  contract.window = 16;
  spec.contract = contract;
  spec.swappable = true;
  spec.interfaces.push_back(
      {"iMonitor", model::InterfaceRole::Client, "IMonitor"});
  spec.interfaces.push_back(
      {"iState", model::InterfaceRole::Server, "IState"});
  spec.memory_area = "Imm1";
  spec.area_type = model::AreaType::Immortal;
  spec.thread_domain = "NHRT1";
  spec.domain_type = model::DomainType::NoHeapRealtime;
  spec.domain_priority = 30;
  spec.executes_on_nhrt = true;
  spec.partition = 3;
  return spec;
}

model::BindingSpec sample_binding() {
  model::BindingSpec binding;
  binding.client = {"ProductionLine", "iMonitor"};
  binding.server = {"MonitoringSystem", "iMonitor"};
  binding.protocol = model::Protocol::Asynchronous;
  binding.buffer_size = 10;
  binding.pattern = "cross-scope-buffered";
  binding.staging_area = "@immortal";
  binding.buffer_area = "Imm1";
  binding.cross_partition = true;
  return binding;
}

model::AssemblyPlan sample_plan() {
  model::AssemblyPlan plan;
  model::AssemblyPlanBuilder builder{plan};
  builder.components().push_back(sample_component());
  model::ComponentSpec passive;
  passive.name = "Console";
  passive.kind = model::ComponentKind::Passive;
  passive.content_class = "ConsoleImpl";
  passive.memory_area = "S1";
  passive.area_type = model::AreaType::Scoped;
  builder.components().push_back(std::move(passive));
  builder.bindings().push_back(sample_binding());
  builder.areas().push_back(
      {"Imm1", model::AreaType::Immortal, 600 * 1024});
  builder.areas().push_back({"S1", model::AreaType::Scoped, 28 * 1024});
  model::ModeDecl normal;
  normal.name = "Normal";
  normal.components.push_back({"ProductionLine", rtsj::RelativeTime::zero(),
                               std::nullopt});
  builder.modes().push_back(std::move(normal));
  model::ModeDecl degraded;
  degraded.name = "Degraded";
  degraded.degraded = true;
  model::ModeComponentConfig slow;
  slow.component = "ProductionLine";
  slow.period = rtsj::RelativeTime::milliseconds(40);
  model::TimingContract relaxed;
  relaxed.wcet_budget = rtsj::RelativeTime::milliseconds(32);
  relaxed.window = 8;
  slow.contract = relaxed;
  degraded.components.push_back(std::move(slow));
  degraded.rebinds.push_back(
      {"MonitoringSystem", "iConsole", "StandbyConsole"});
  builder.modes().push_back(std::move(degraded));
  builder.set_partition_count(4);
  return plan;
}

reconfig::PlanDelta sample_delta() {
  reconfig::PlanDelta delta;
  delta.add_components.push_back(sample_component());
  model::ComponentSpec removed = sample_component();
  removed.name = "AuditLog";
  delta.remove_components.push_back(std::move(removed));
  delta.add_bindings.push_back(sample_binding());
  delta.remove_bindings.push_back({"MonitoringSystem", "iAudit"});
  reconfig::RebindDelta rebind;
  rebind.client = {"MonitoringSystem", "iAudit"};
  rebind.old_server = "AuditLog";
  rebind.new_server = "DiagnosticsLog";
  rebind.protocol = model::Protocol::Asynchronous;
  rebind.target = sample_binding();
  delta.rebinds.push_back(std::move(rebind));
  reconfig::SettingDelta setting;
  setting.component = "ProductionLine";
  setting.period_changed = true;
  setting.new_period = rtsj::RelativeTime::milliseconds(20);
  setting.contract_changed = true;
  setting.contract = std::nullopt;
  delta.settings.push_back(std::move(setting));
  delta.protocol_changes.push_back({"Console", "iConsole"});
  return delta;
}

bool delta_equal(const reconfig::PlanDelta& a, const reconfig::PlanDelta& b) {
  // The canonical encoding doubles as deep equality (round-trip exact).
  return encode_delta(a) == encode_delta(b);
}

TEST(WirePrimitivesTest, IntegersStringsBlocksRoundTrip) {
  WireWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  w.f64(-2.75);
  w.str("hello");
  const std::size_t block = w.begin_block();
  w.u32(7);
  w.end_block(block);

  WireReader r(w.data());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), -2.75);
  EXPECT_EQ(r.str(), "hello");
  WireReader sub = r.block();
  EXPECT_EQ(sub.u32(), 7u);
  EXPECT_TRUE(r.at_end());
}

TEST(WirePrimitivesTest, TruncatedReadsThrow) {
  WireWriter w;
  w.u32(123);
  WireReader r(w.data().data(), 3);
  EXPECT_THROW(r.u32(), WireError);
  WireReader r2(w.data());
  EXPECT_THROW(r2.str(), WireError);  // length 123 > remaining 0
}

TEST(PlanCodecTest, PlanRoundTripIsExact) {
  const model::AssemblyPlan plan = sample_plan();
  const auto bytes = encode_plan(plan);
  const model::AssemblyPlan decoded = decode_plan(bytes);
  EXPECT_TRUE(decoded == plan);
  // Canonical: re-encoding the decoded plan reproduces the bytes.
  EXPECT_EQ(encode_plan(decoded), bytes);
}

TEST(PlanCodecTest, DeltaRoundTripIsExact) {
  const reconfig::PlanDelta delta = sample_delta();
  const auto bytes = encode_delta(delta);
  const reconfig::PlanDelta decoded = decode_delta(bytes);
  EXPECT_TRUE(delta_equal(delta, decoded));
  EXPECT_EQ(encode_delta(decoded), bytes);
}

TEST(PlanCodecTest, EveryTruncationIsRejected) {
  const auto bytes = encode_plan(sample_plan());
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<std::uint8_t> torn(bytes.begin(), bytes.begin() + cut);
    EXPECT_THROW(decode_plan(torn), WireError) << "prefix length " << cut;
  }
  const auto delta_bytes = encode_delta(sample_delta());
  for (std::size_t cut = 0; cut < delta_bytes.size(); ++cut) {
    std::vector<std::uint8_t> torn(delta_bytes.begin(),
                                   delta_bytes.begin() + cut);
    EXPECT_THROW(decode_delta(torn), WireError) << "prefix length " << cut;
  }
}

TEST(PlanCodecTest, BadMagicAndVersionAreRejected) {
  auto bytes = encode_plan(sample_plan());
  auto bad_magic = bytes;
  bad_magic[0] ^= 0xFF;
  EXPECT_THROW(decode_plan(bad_magic), WireError);
  auto bad_version = bytes;
  bad_version[4] = 0x7F;  // u16 version lives after the u32 magic
  EXPECT_THROW(decode_plan(bad_version), WireError);
  // A delta is not a plan.
  EXPECT_THROW(decode_plan(encode_delta(sample_delta())), WireError);
}

TEST(PlanCodecTest, ImplausibleElementCountsAreWireErrorsNotBadAlloc) {
  // A corrupt (or hostile) count the remaining bytes cannot possibly hold
  // must be rejected as WireError — never drive a huge reserve() into
  // bad_alloc, which would escape the protocol's WireError handlers.
  WireWriter w;
  w.u32(kPlanMagic);
  w.u16(kCodecVersion);
  w.u16(0);
  w.u32(0xFFFFFFFFu);  // component count
  EXPECT_THROW(decode_plan(w.data()), WireError);

  WireWriter d;
  d.u32(kDeltaMagic);
  d.u16(kCodecVersion);
  d.u16(0);
  d.u32(0x7FFFFFFFu);  // add_components count
  EXPECT_THROW(decode_delta(d.data()), WireError);
}

TEST(PlanCodecTest, UnknownTrailingFieldsAreSkipped) {
  // A newer encoder appends fields at the end of a record's block; this
  // decoder must read what it knows and skip the rest. Splice extra bytes
  // into the first component block and patch its length prefix.
  const model::AssemblyPlan plan = sample_plan();
  auto bytes = encode_plan(plan);
  const std::size_t block_offset = 8 + 4;  // header + component count
  std::uint32_t block_len = 0;
  for (int i = 0; i < 4; ++i) {
    block_len |= static_cast<std::uint32_t>(bytes[block_offset + i])
                 << (8 * i);
  }
  const std::vector<std::uint8_t> future = {'f', 'u', 't', 'u', 'r', 'e',
                                            0x01, 0x02, 0x03};
  bytes.insert(bytes.begin() + block_offset + 4 + block_len, future.begin(),
               future.end());
  const std::uint32_t new_len =
      block_len + static_cast<std::uint32_t>(future.size());
  for (int i = 0; i < 4; ++i) {
    bytes[block_offset + i] = static_cast<std::uint8_t>(new_len >> (8 * i));
  }
  const model::AssemblyPlan decoded = decode_plan(bytes);
  EXPECT_TRUE(decoded == plan)
      << "known fields must survive unknown trailing ones";
}

TEST(ProtocolTest, PrepareReloadFrameRoundTrip) {
  PrepareReloadPayload payload;
  payload.txn = 42;
  payload.expect_epoch = 7;
  payload.plan = encode_plan(sample_plan());
  payload.delta = encode_delta(sample_delta());
  payload.routes.push_back({"MonitoringSystem", "iAudit", "alpha",
                            "AuditLog", "iAudit", "beta"});
  const comm::Frame frame = make_prepare_reload(payload);
  EXPECT_EQ(frame.type, static_cast<std::uint16_t>(FrameType::PrepareReload));
  const PrepareReloadPayload parsed = parse_prepare_reload(frame);
  EXPECT_EQ(parsed.txn, 42u);
  EXPECT_EQ(parsed.expect_epoch, 7u);
  EXPECT_EQ(parsed.plan, payload.plan);
  EXPECT_EQ(parsed.delta, payload.delta);
  ASSERT_EQ(parsed.routes.size(), 1u);
  EXPECT_TRUE(parsed.routes[0] == payload.routes[0]);
}

TEST(ProtocolTest, DataFrameCarriesTheMessageVerbatim) {
  DataPayload payload;
  payload.client = "MonitoringSystem";
  payload.port = "iAudit";
  payload.message.type_id = 5;
  payload.message.sequence = 99;
  payload.message.timestamp_ns = 123456789;
  payload.message.store(3.25);
  const DataPayload parsed = parse_data(make_data(payload));
  EXPECT_EQ(parsed.client, "MonitoringSystem");
  EXPECT_EQ(parsed.port, "iAudit");
  EXPECT_EQ(parsed.message.type_id, 5u);
  EXPECT_EQ(parsed.message.sequence, 99u);
  EXPECT_EQ(parsed.message.timestamp_ns, 123456789);
  EXPECT_DOUBLE_EQ(parsed.message.load<double>(), 3.25);
}

TEST(ProtocolTest, RepliesDecisionsHelloDemoteRoundTrip) {
  NodeReplyPayload reply;
  reply.txn = 3;
  reply.node = "beta";
  reply.epoch = 12;
  reply.reason = "because";
  reply.drained = 4;
  reply.latency_ns = 5555;
  const NodeReplyPayload parsed_reply =
      parse_node_reply(make_node_reply(FrameType::Committed, reply));
  EXPECT_EQ(parsed_reply.txn, 3u);
  EXPECT_EQ(parsed_reply.node, "beta");
  EXPECT_EQ(parsed_reply.epoch, 12u);
  EXPECT_EQ(parsed_reply.reason, "because");
  EXPECT_EQ(parsed_reply.drained, 4u);
  EXPECT_EQ(parsed_reply.latency_ns, 5555);

  DecisionPayload decision;
  decision.txn = 9;
  decision.reason = "straggler";
  const DecisionPayload parsed_decision =
      parse_decision(make_decision(FrameType::Abort, decision));
  EXPECT_EQ(parsed_decision.txn, 9u);
  EXPECT_EQ(parsed_decision.reason, "straggler");

  EXPECT_EQ(parse_hello(make_hello("gamma")), "gamma");

  DemotePayload demote;
  demote.node = "alpha";
  demote.mode = "Degraded";
  demote.level = 2;
  const DemotePayload parsed_demote = parse_demote(make_demote(demote));
  EXPECT_EQ(parsed_demote.node, "alpha");
  EXPECT_EQ(parsed_demote.mode, "Degraded");
  EXPECT_EQ(parsed_demote.level, 2);
}

TEST(ProtocolTest, HelloParsesAtEveryProtocolVersionBoundary) {
  // A v2 peer's HELLO stops after the codec version; a v3 peer appends
  // the protocol version and shm-ring offer; v4 appends the resync
  // epoch. Each older dialect must keep parsing, with the absent fields
  // at their documented defaults (docs/PROTOCOL.md §7).
  WireWriter v2;
  v2.str("gamma");
  v2.u16(kCodecVersion);
  comm::Frame hello_v2;
  hello_v2.type = static_cast<std::uint16_t>(FrameType::Hello);
  hello_v2.payload = v2.data();
  const HelloInfo info_v2 = parse_hello_info(hello_v2);
  EXPECT_EQ(info_v2.node, "gamma");
  EXPECT_EQ(info_v2.protocol_version, 2);
  EXPECT_EQ(info_v2.shm_token, "");
  EXPECT_EQ(info_v2.resync_epoch, 0u);

  WireWriter v3;
  v3.str("gamma");
  v3.u16(kCodecVersion);
  v3.u16(3);
  v3.str("ring-token");
  comm::Frame hello_v3;
  hello_v3.type = static_cast<std::uint16_t>(FrameType::Hello);
  hello_v3.payload = v3.data();
  const HelloInfo info_v3 = parse_hello_info(hello_v3);
  EXPECT_EQ(info_v3.node, "gamma");
  EXPECT_EQ(info_v3.protocol_version, 3);
  EXPECT_EQ(info_v3.shm_token, "ring-token");
  EXPECT_EQ(info_v3.resync_epoch, 0u);

  const comm::Frame hello_v4 = make_hello("gamma", "ring-token", 42);
  const HelloInfo info_v4 = parse_hello_info(hello_v4);
  EXPECT_EQ(info_v4.node, "gamma");
  EXPECT_EQ(info_v4.protocol_version, kProtocolVersion);
  EXPECT_EQ(info_v4.shm_token, "ring-token");
  EXPECT_EQ(info_v4.resync_epoch, 42u);

  // Every prefix of the full v4 payload must parse at exactly the three
  // dialect boundaries and be rejected everywhere else — the appended
  // membership fields must not have opened any torn-frame acceptance.
  WireWriter boundary_v3;
  boundary_v3.str("gamma");
  boundary_v3.u16(kCodecVersion);
  boundary_v3.u16(kProtocolVersion);
  boundary_v3.str("ring-token");
  const std::size_t v2_len = v2.data().size();
  const std::size_t v3_len = boundary_v3.data().size();
  for (std::size_t cut = 0; cut < hello_v4.payload.size(); ++cut) {
    comm::Frame torn;
    torn.type = static_cast<std::uint16_t>(FrameType::Hello);
    torn.payload.assign(hello_v4.payload.begin(),
                        hello_v4.payload.begin() + cut);
    if (cut == v2_len || cut == v3_len) {
      EXPECT_EQ(parse_hello_info(torn).node, "gamma")
          << "dialect boundary at " << cut;
    } else {
      EXPECT_THROW(parse_hello_info(torn), WireError)
          << "prefix length " << cut;
    }
  }
}

TEST(ProtocolTest, PreV4FramesParseWithCoordinatorEpochZero) {
  // Fencing is an appended v4 field: a frame from a pre-v4 sender stops
  // before it, and the receiver must default the epoch to 0 — the
  // never-fenced marker (docs/MEMBERSHIP.md §6).
  WireWriter d;
  d.u64(9);
  d.str("late straggler");
  comm::Frame decision;
  decision.type = static_cast<std::uint16_t>(FrameType::Abort);
  decision.payload = d.data();
  const DecisionPayload parsed_decision = parse_decision(decision);
  EXPECT_EQ(parsed_decision.txn, 9u);
  EXPECT_EQ(parsed_decision.reason, "late straggler");
  EXPECT_EQ(parsed_decision.coord_epoch, 0u);

  WireWriter m;
  m.u64(4);
  m.str("Degraded");
  comm::Frame mode;
  mode.type = static_cast<std::uint16_t>(FrameType::PrepareMode);
  mode.payload = m.data();
  const PrepareModePayload parsed_mode = parse_prepare_mode(mode);
  EXPECT_EQ(parsed_mode.txn, 4u);
  EXPECT_EQ(parsed_mode.mode, "Degraded");
  EXPECT_EQ(parsed_mode.coord_epoch, 0u);

  WireWriter p;
  p.u64(42);
  p.u64(7);
  p.bytes(encode_plan(sample_plan()));
  p.bytes(encode_delta(sample_delta()));
  write_routes(p, {});
  comm::Frame prepare;
  prepare.type = static_cast<std::uint16_t>(FrameType::PrepareReload);
  prepare.payload = p.data();
  const PrepareReloadPayload parsed_prepare = parse_prepare_reload(prepare);
  EXPECT_EQ(parsed_prepare.txn, 42u);
  EXPECT_EQ(parsed_prepare.expect_epoch, 7u);
  EXPECT_EQ(parsed_prepare.coord_epoch, 0u);

  // A v4 sender's epoch survives the round trip on all three frames.
  DecisionPayload v4_decision;
  v4_decision.txn = 9;
  v4_decision.coord_epoch = 3;
  EXPECT_EQ(parse_decision(make_decision(FrameType::Commit, v4_decision))
                .coord_epoch,
            3u);
  PrepareModePayload v4_mode;
  v4_mode.txn = 4;
  v4_mode.mode = "Degraded";
  v4_mode.coord_epoch = 3;
  EXPECT_EQ(parse_prepare_mode(make_prepare_mode(v4_mode)).coord_epoch, 3u);
}

TEST(ProtocolTest, MembershipFramesRoundTrip) {
  JoinPayload join;
  join.node = "gamma";
  join.resync_epoch = 7;
  const JoinPayload parsed_join = parse_join(make_join(join));
  EXPECT_EQ(parsed_join.node, "gamma");
  EXPECT_EQ(parsed_join.resync_epoch, 7u);

  LeavePayload leave;
  leave.node = "beta";
  leave.reason = "maintenance window";
  const LeavePayload parsed_leave = parse_leave(make_leave(leave));
  EXPECT_EQ(parsed_leave.node, "beta");
  EXPECT_EQ(parsed_leave.reason, "maintenance window");

  TakeoverPayload takeover;
  takeover.coordinator = "standby-1";
  takeover.coord_epoch = 5;
  const TakeoverPayload parsed_takeover =
      parse_takeover(make_takeover(takeover));
  EXPECT_EQ(parsed_takeover.coordinator, "standby-1");
  EXPECT_EQ(parsed_takeover.coord_epoch, 5u);

  StandbySyncPayload sync;
  sync.txn = 11;
  sync.committed = 1;
  sync.reason = "";
  sync.coord_epoch = 2;
  sync.membership_epoch = 9;
  sync.members = {"alpha", "beta"};
  sync.assignment = {{"Producer", "alpha"}, {"Sink", "beta"}};
  StandbyNodeRecord record;
  record.node = "alpha";
  record.epoch = 4;
  record.snapshot = encode_plan(sample_plan());
  sync.nodes.push_back(record);
  const comm::Frame frame = make_standby_sync(sync);
  const StandbySyncPayload parsed = parse_standby_sync(frame);
  EXPECT_EQ(parsed.txn, 11u);
  EXPECT_EQ(parsed.committed, 1);
  EXPECT_EQ(parsed.coord_epoch, 2u);
  EXPECT_EQ(parsed.membership_epoch, 9u);
  ASSERT_EQ(parsed.members.size(), 2u);
  EXPECT_EQ(parsed.members[0], "alpha");
  ASSERT_EQ(parsed.assignment.size(), 2u);
  EXPECT_EQ(parsed.assignment[1].first, "Sink");
  EXPECT_EQ(parsed.assignment[1].second, "beta");
  ASSERT_EQ(parsed.nodes.size(), 1u);
  EXPECT_EQ(parsed.nodes[0].node, "alpha");
  EXPECT_EQ(parsed.nodes[0].epoch, 4u);
  EXPECT_EQ(parsed.nodes[0].snapshot, record.snapshot);

  // The decision-log record is the durability anchor of a takeover: a
  // torn record must never parse (every strict prefix is rejected).
  for (std::size_t cut = 0; cut < frame.payload.size(); ++cut) {
    comm::Frame torn;
    torn.type = static_cast<std::uint16_t>(FrameType::StandbySync);
    torn.payload.assign(frame.payload.begin(), frame.payload.begin() + cut);
    EXPECT_THROW(parse_standby_sync(torn), WireError)
        << "prefix length " << cut;
  }

  // An implausible member count must surface as WireError, not bad_alloc.
  WireWriter w;
  w.u64(1);
  w.u8(1);
  w.str("");
  w.u64(1);
  w.u64(1);
  w.u32(0xFFFFFFFFu);  // member count the remaining bytes cannot hold
  comm::Frame hostile;
  hostile.type = static_cast<std::uint16_t>(FrameType::StandbySync);
  hostile.payload = w.data();
  EXPECT_THROW(parse_standby_sync(hostile), WireError);
}

}  // namespace
}  // namespace rtcf::dist
