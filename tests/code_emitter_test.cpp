// The Soleil source emitter (§4.3): structure and determinism of the
// generated infrastructure per mode.
#include <gtest/gtest.h>

#include "scenario/production_scenario.hpp"
#include "soleil/code_emitter.hpp"

namespace rtcf::soleil {
namespace {

class CodeEmitterTest : public ::testing::Test {
 protected:
  const model::Architecture arch_ = scenario::make_production_architecture();
};

TEST_F(CodeEmitterTest, SoleilEmitsOneFilePerComponentPlusBootstrap) {
  const auto code = emit_infrastructure(arch_, Mode::Soleil);
  // 4 functional membranes + 6 non-functional runtimes + bootstrap.
  EXPECT_EQ(code.files.size(), 11u);
  EXPECT_NE(code.find("gen/ProductionLineMembrane.hpp"), nullptr);
  EXPECT_NE(code.find("gen/ConsoleMembrane.hpp"), nullptr);
  EXPECT_NE(code.find("gen/NHRT1Runtime.hpp"), nullptr);
  EXPECT_NE(code.find("gen/Imm1Runtime.hpp"), nullptr);
  EXPECT_NE(code.find("gen/Bootstrap.cpp"), nullptr);
}

TEST_F(CodeEmitterTest, MergeAllEmitsFunctionalClassesOnly) {
  const auto code = emit_infrastructure(arch_, Mode::MergeAll);
  // One merged class per *functional* component + bootstrap.
  EXPECT_EQ(code.files.size(), 5u);
  EXPECT_NE(code.find("gen/MonitoringSystemMerged.hpp"), nullptr);
  EXPECT_EQ(code.find("gen/NHRT1Runtime.hpp"), nullptr)
      << "membrane structure is not preserved in MERGE_ALL";
}

TEST_F(CodeEmitterTest, UltraMergeEmitsExactlyOneFile) {
  const auto code = emit_infrastructure(arch_, Mode::UltraMerge);
  ASSERT_EQ(code.files.size(), 1u);
  EXPECT_EQ(code.files[0].path, "gen/StaticApplication.cpp");
  // The whole system is in the one class, including every component and
  // buffer.
  const std::string& text = code.files[0].contents;
  for (const char* name :
       {"ProductionLine", "MonitoringSystem", "Console", "AuditLog"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
  EXPECT_NE(text.find("no reconfiguration"), std::string::npos);
}

TEST_F(CodeEmitterTest, CompactnessOrderingMatchesThePaper) {
  const auto full = emit_infrastructure(arch_, Mode::Soleil);
  const auto merged = emit_infrastructure(arch_, Mode::MergeAll);
  const auto ultra = emit_infrastructure(arch_, Mode::UltraMerge);
  EXPECT_GT(full.total_lines(), merged.total_lines());
  EXPECT_GT(merged.total_lines(), ultra.total_lines());
  EXPECT_GT(full.total_bytes(), ultra.total_bytes());
}

TEST_F(CodeEmitterTest, EmissionIsDeterministic) {
  for (const Mode mode : {Mode::Soleil, Mode::MergeAll, Mode::UltraMerge}) {
    const auto a = emit_infrastructure(arch_, mode);
    const auto b = emit_infrastructure(arch_, mode);
    ASSERT_EQ(a.files.size(), b.files.size());
    for (std::size_t i = 0; i < a.files.size(); ++i) {
      EXPECT_EQ(a.files[i].path, b.files[i].path);
      EXPECT_EQ(a.files[i].contents, b.files[i].contents);
    }
  }
}

TEST_F(CodeEmitterTest, GeneratedCodeIsMarkedAndReferencesContentClasses) {
  for (const Mode mode : {Mode::Soleil, Mode::MergeAll, Mode::UltraMerge}) {
    const auto code = emit_infrastructure(arch_, mode);
    for (const auto& file : code.files) {
      EXPECT_EQ(file.contents.rfind("// GENERATED CODE", 0), 0u)
          << file.path << " must carry the generated-code banner";
    }
  }
  // §5.2: hand-written content classes referenced, never duplicated — the
  // generated code names the class but contains no business logic.
  const auto code = emit_infrastructure(arch_, Mode::MergeAll);
  const auto* ms = code.find("gen/MonitoringSystemMerged.hpp");
  ASSERT_NE(ms, nullptr);
  EXPECT_NE(ms->contents.find("MonitoringSystemImpl"), std::string::npos);
  EXPECT_EQ(ms->contents.find("kAnomalyThreshold"), std::string::npos);
}

TEST_F(CodeEmitterTest, BindingsCarryResolvedPatterns) {
  const auto code = emit_infrastructure(arch_, Mode::Soleil);
  const auto* ms = code.find("gen/MonitoringSystemMembrane.hpp");
  ASSERT_NE(ms, nullptr);
  EXPECT_NE(ms->contents.find("pattern=scope-enter"), std::string::npos);
  EXPECT_NE(ms->contents.find("pattern=immortal-forward"),
            std::string::npos);
}

TEST_F(CodeEmitterTest, BootstrapFollowsInitializationOrder) {
  const auto code = emit_infrastructure(arch_, Mode::Soleil);
  const auto* bootstrap = code.find("gen/Bootstrap.cpp");
  ASSERT_NE(bootstrap, nullptr);
  const std::string& text = bootstrap->contents;
  // Areas before domains before threads before contents before membranes.
  const auto scope_pos = text.find("create_scope(\"cscope\"");
  const auto domain_pos = text.find("create_domain(\"NHRT1\"");
  const auto thread_pos = text.find("create_thread(\"ProductionLine\"");
  const auto content_pos = text.find("create_content(\"ProductionLine\"");
  const auto membrane_pos = text.find("install_membrane");
  ASSERT_NE(scope_pos, std::string::npos);
  EXPECT_LT(scope_pos, domain_pos);
  EXPECT_LT(domain_pos, thread_pos);
  EXPECT_LT(thread_pos, content_pos);
  EXPECT_LT(content_pos, membrane_pos);
}

}  // namespace
}  // namespace rtcf::soleil
