// The ADL loader/serializer against the Fig. 4 dialect.
#include <gtest/gtest.h>

#include "adl/loader.hpp"
#include "scenario/production_scenario.hpp"
#include "validate/validator.hpp"

namespace rtcf::adl {
namespace {

using model::ActivationKind;
using model::ActiveComponent;
using model::AreaType;
using model::DomainType;
using model::InterfaceRole;
using model::MemoryAreaComponent;
using model::PassiveComponent;
using model::Protocol;
using model::ThreadDomain;

TEST(AdlUnitsTest, ParsesDurations) {
  EXPECT_EQ(parse_duration("10ms"), rtsj::RelativeTime::milliseconds(10));
  EXPECT_EQ(parse_duration("250us"), rtsj::RelativeTime::microseconds(250));
  EXPECT_EQ(parse_duration("1s"), rtsj::RelativeTime::seconds(1));
  EXPECT_EQ(parse_duration("500"), rtsj::RelativeTime::nanoseconds(500));
  EXPECT_EQ(parse_duration("7ns"), rtsj::RelativeTime::nanoseconds(7));
  EXPECT_THROW(parse_duration("10min"), AdlError);
  EXPECT_THROW(parse_duration("ms"), AdlError);
}

TEST(AdlUnitsTest, ParsesSizes) {
  EXPECT_EQ(parse_size("600KB"), 600u * 1024u);
  EXPECT_EQ(parse_size("28KB"), 28u * 1024u);
  EXPECT_EQ(parse_size("2MB"), 2u * 1024u * 1024u);
  EXPECT_EQ(parse_size("512"), 512u);
  EXPECT_EQ(parse_size("10"), 10u);
  EXPECT_THROW(parse_size("1GB"), AdlError);
  EXPECT_THROW(parse_size("-5KB"), AdlError);
}

TEST(AdlUnitsTest, FormatRoundTrips) {
  for (const char* text : {"10ms", "250us", "1s", "500ns"}) {
    EXPECT_EQ(format_duration(parse_duration(text)), text);
  }
  for (const char* text : {"600KB", "2MB", "513"}) {
    EXPECT_EQ(format_size(parse_size(text)), text);
  }
}

TEST(AdlLoaderTest, LoadsTheFig4Architecture) {
  const auto arch = load_architecture(scenario::production_adl());

  const auto* pl = arch.find_as<ActiveComponent>("ProductionLine");
  ASSERT_NE(pl, nullptr);
  EXPECT_EQ(pl->activation(), ActivationKind::Periodic);
  EXPECT_EQ(pl->period(), rtsj::RelativeTime::milliseconds(10));
  EXPECT_EQ(pl->content_class(), "ProductionLineImpl");
  ASSERT_EQ(pl->interfaces().size(), 1u);
  EXPECT_EQ(pl->interfaces()[0].role, InterfaceRole::Client);
  EXPECT_EQ(pl->interfaces()[0].signature, "IMonitor");

  const auto* console = arch.find_as<PassiveComponent>("Console");
  ASSERT_NE(console, nullptr);

  const auto* s1 = arch.find_as<MemoryAreaComponent>("S1");
  ASSERT_NE(s1, nullptr);
  EXPECT_EQ(s1->type(), AreaType::Scoped);
  EXPECT_EQ(s1->size_bytes(), 28u * 1024u);
  EXPECT_EQ(s1->area_name(), "cscope");

  const auto* nhrt1 = arch.find_as<ThreadDomain>("NHRT1");
  ASSERT_NE(nhrt1, nullptr);
  EXPECT_EQ(nhrt1->type(), DomainType::NoHeapRealtime);
  EXPECT_EQ(nhrt1->priority(), 30);

  ASSERT_EQ(arch.bindings().size(), 3u);
  const auto& async = arch.bindings()[0];
  EXPECT_EQ(async.desc.protocol, Protocol::Asynchronous);
  EXPECT_EQ(async.desc.buffer_size, 10u);

  // Containment: ProductionLine sits inside NHRT1 inside Imm1.
  EXPECT_EQ(arch.thread_domain_of(*pl), nhrt1);
  const auto* imm1 = arch.find_as<MemoryAreaComponent>("Imm1");
  EXPECT_EQ(arch.memory_area_of(*pl), imm1);
}

TEST(AdlLoaderTest, ParsesCriticalityAndTimingContract) {
  const auto arch = load_architecture(scenario::production_adl());

  const auto* pl = arch.find_as<ActiveComponent>("ProductionLine");
  ASSERT_NE(pl, nullptr);
  ASSERT_TRUE(pl->criticality().has_value());
  EXPECT_EQ(*pl->criticality(), model::Criticality::High);
  ASSERT_TRUE(pl->timing_contract().has_value());
  EXPECT_EQ(pl->timing_contract()->wcet_budget,
            rtsj::RelativeTime::milliseconds(8));
  EXPECT_DOUBLE_EQ(pl->timing_contract()->miss_ratio_bound, 0.5);
  EXPECT_EQ(pl->timing_contract()->window, 16u);

  const auto* audit = arch.find_as<ActiveComponent>("AuditLog");
  ASSERT_NE(audit, nullptr);
  ASSERT_TRUE(audit->criticality().has_value());
  EXPECT_EQ(*audit->criticality(), model::Criticality::Low);
  EXPECT_FALSE(audit->timing_contract().has_value());

  // Serialization preserves both: a reloaded copy agrees.
  const auto again = load_architecture(save_architecture(arch));
  const auto* pl2 = again.find_as<ActiveComponent>("ProductionLine");
  ASSERT_TRUE(pl2->timing_contract().has_value());
  EXPECT_DOUBLE_EQ(pl2->timing_contract()->miss_ratio_bound, 0.5);
  EXPECT_EQ(*again.find_as<ActiveComponent>("AuditLog")->criticality(),
            model::Criticality::Low);
}

TEST(AdlLoaderTest, RejectsMalformedTimingContract) {
  EXPECT_THROW(load_architecture(R"(<Architecture>
        <ActiveComponent name="A" type="periodic" periodicity="5ms"
                         criticality="medium"/>
      </Architecture>)"),
               AdlError);
  EXPECT_THROW(load_architecture(R"(<Architecture>
        <ActiveComponent name="A" type="periodic" periodicity="5ms">
          <TimingContract missRatioBound="lots"/>
        </ActiveComponent>
      </Architecture>)"),
               AdlError);
  EXPECT_THROW(load_architecture(R"(<Architecture>
        <ActiveComponent name="A" type="periodic" periodicity="5ms">
          <TimingContract window="0"/>
        </ActiveComponent>
      </Architecture>)"),
               AdlError);
  // Non-numeric and trailing-junk windows are AdlErrors, not raw
  // std::invalid_argument escapes or silent truncation.
  EXPECT_THROW(load_architecture(R"(<Architecture>
        <ActiveComponent name="A" type="periodic" periodicity="5ms">
          <TimingContract window="sixteen"/>
        </ActiveComponent>
      </Architecture>)"),
               AdlError);
  EXPECT_THROW(load_architecture(R"(<Architecture>
        <ActiveComponent name="A" type="periodic" periodicity="5ms">
          <TimingContract window="16ms"/>
        </ActiveComponent>
      </Architecture>)"),
               AdlError);
}

TEST(AdlLoaderTest, LoadedArchitectureValidatesCleanly) {
  const auto arch = load_architecture(scenario::production_adl());
  const auto report = validate::validate(arch);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(AdlLoaderTest, RoundTripPreservesStructure) {
  const auto arch = load_architecture(scenario::production_adl());
  const std::string serialized = save_architecture(arch);
  const auto again = load_architecture(serialized);
  EXPECT_EQ(again.components().size(), arch.components().size());
  EXPECT_EQ(again.bindings().size(), arch.bindings().size());
  // Second round trip must be byte-stable.
  EXPECT_EQ(save_architecture(again), serialized);
}

TEST(AdlLoaderTest, EquivalentToProgrammaticConstruction) {
  const auto from_adl = load_architecture(scenario::production_adl());
  const auto programmatic = scenario::make_production_architecture();
  EXPECT_EQ(from_adl.components().size(), programmatic.components().size());
  EXPECT_EQ(from_adl.bindings().size(), programmatic.bindings().size());
  for (const auto& owned : programmatic.components()) {
    EXPECT_NE(from_adl.find(owned->name()), nullptr)
        << "missing component " << owned->name();
  }
}

TEST(AdlLoaderTest, RejectsMalformedContent) {
  EXPECT_THROW(load_architecture("<NotArchitecture/>"), AdlError);
  EXPECT_THROW(load_architecture("<Architecture><Banana/></Architecture>"),
               AdlError);
  // Binding without endpoints.
  EXPECT_THROW(
      load_architecture("<Architecture><Binding/></Architecture>"),
      AdlError);
  // Reference to an undeclared component.
  EXPECT_THROW(load_architecture(R"(<Architecture>
        <MemoryArea name="M">
          <ActiveComp name="ghost"/>
          <AreaDesc type="immortal"/>
        </MemoryArea>
      </Architecture>)"),
               AdlError);
  // ThreadDomain without descriptor.
  EXPECT_THROW(load_architecture(R"(<Architecture>
        <ThreadDomain name="T"/>
      </Architecture>)"),
               AdlError);
  // Unknown enum values.
  EXPECT_THROW(load_architecture(R"(<Architecture>
        <ActiveComponent name="A" type="continuous"/>
      </Architecture>)"),
               AdlError);
}

TEST(AdlLoaderTest, ModeErrorsCarryLineAndElementContext) {
  // Malformed <Rebind>: the error names the element and its input line
  // instead of surfacing a bare attribute failure.
  const char* bad_rebind = R"(<Architecture>
  <ActiveComponent name="A" type="periodic" periodicity="10ms"/>
  <Mode name="M">
    <Rebind client="A" port="p"/>
  </Mode>
</Architecture>)";
  try {
    load_architecture(bad_rebind);
    FAIL() << "expected AdlError";
  } catch (const AdlError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("<Rebind>"), std::string::npos) << what;
    EXPECT_NE(what.find("line 4"), std::string::npos) << what;
    EXPECT_NE(what.find("server"), std::string::npos) << what;
    EXPECT_EQ(e.line(), 4u);
  }

  // Malformed <Mode><Component>: a broken duration is anchored at the
  // <Component> element.
  const char* bad_period = R"(<Architecture>
  <ActiveComponent name="A" type="periodic" periodicity="10ms"/>
  <Mode name="M">
    <Component name="A" periodicity="fast"/>
  </Mode>
</Architecture>)";
  try {
    load_architecture(bad_period);
    FAIL() << "expected AdlError";
  } catch (const AdlError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("<Component>"), std::string::npos) << what;
    EXPECT_NE(what.find("line 4"), std::string::npos) << what;
    EXPECT_EQ(e.line(), 4u);
  }

  // A <Mode> missing its name anchors at the <Mode> element itself, and
  // stray children are located too.
  try {
    load_architecture("<Architecture>\n  <Mode degraded=\"true\"/>\n"
                      "</Architecture>");
    FAIL() << "expected AdlError";
  } catch (const AdlError& e) {
    EXPECT_NE(std::string(e.what()).find("<Mode>"), std::string::npos);
    EXPECT_EQ(e.line(), 2u);
  }
  try {
    load_architecture(R"(<Architecture>
  <Mode name="M">
    <Banana/>
  </Mode>
</Architecture>)");
    FAIL() << "expected AdlError";
  } catch (const AdlError& e) {
    EXPECT_NE(std::string(e.what()).find("Banana"), std::string::npos);
    EXPECT_EQ(e.line(), 3u);
  }
}

TEST(AdlLoaderTest, TopLevelErrorsCarryLineAndElementContext) {
  // Every top-level loader is anchored: a malformed element reports its
  // element name and input line, never a bare parse failure.
  const auto expect_anchor = [](const char* text, const char* element,
                                unsigned line, const char* detail) {
    try {
      load_architecture(text);
      FAIL() << "expected AdlError for " << element;
    } catch (const AdlError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find(element), std::string::npos) << what;
      EXPECT_NE(what.find("line " + std::to_string(line)),
                std::string::npos)
          << what;
      EXPECT_NE(what.find(detail), std::string::npos) << what;
      EXPECT_EQ(e.line(), line);
    }
  };
  expect_anchor(R"(<Architecture>
  <ActiveComponent name="A" type="periodic" periodicity="soon"/>
</Architecture>)",
                "<ActiveComponent>", 2, "soon");
  expect_anchor(R"(<Architecture>
  <PassiveComponent name="P" swappable="maybe"/>
</Architecture>)",
                "<PassiveComponent>", 2, "maybe");
  expect_anchor(R"(<Architecture>
  <ActiveComponent name="A" type="periodic" periodicity="10ms"/>
  <Binding/>
</Architecture>)",
                "<Binding>", 3, "client");
  expect_anchor(R"(<Architecture>
  <MemoryArea name="m">
    <AreaDesc type="immortal" size="huge"/>
  </MemoryArea>
</Architecture>)",
                "<MemoryArea>", 2, "huge");
  expect_anchor(R"(<Architecture>
  <ThreadDomain name="d"/>
</Architecture>)",
                "<ThreadDomain>", 2, "DomainDesc");
  // A non-numeric domain priority used to escape as a raw
  // std::invalid_argument from std::stoi; it is an anchored AdlError now.
  expect_anchor(R"(<Architecture>
  <ThreadDomain name="d">
    <DomainDesc type="realtime" priority="high"/>
  </ThreadDomain>
</Architecture>)",
                "<ThreadDomain>", 2, "stoi");
}

TEST(AdlLoaderTest, ModeWithRebindsRoundTrips) {
  const char* text = R"(<Architecture>
  <ActiveComponent name="A" type="periodic" periodicity="10ms"
                   swappable="true">
    <interface name="out" role="client" signature="I"/>
  </ActiveComponent>
  <PassiveComponent name="B">
    <interface name="in" role="server" signature="I"/>
  </PassiveComponent>
  <PassiveComponent name="C">
    <interface name="in" role="server" signature="I"/>
  </PassiveComponent>
  <Binding>
    <client cname="A" iname="out"/>
    <server cname="B" iname="in"/>
    <BindDesc protocol="synchronous"/>
  </Binding>
  <Mode name="Normal">
    <Component name="A"/>
  </Mode>
  <Mode name="Alt" degraded="true">
    <Component name="A" periodicity="40ms"/>
    <Rebind client="A" port="out" server="C"/>
  </Mode>
</Architecture>)";
  const auto first = load_architecture(text);
  const auto second = load_architecture(save_architecture(first));
  ASSERT_EQ(second.modes().size(), 2u);
  const auto* alt = second.find_mode("Alt");
  ASSERT_NE(alt, nullptr);
  EXPECT_TRUE(alt->degraded);
  ASSERT_EQ(alt->rebinds.size(), 1u);
  EXPECT_EQ(alt->rebinds[0].client, "A");
  EXPECT_EQ(alt->rebinds[0].port, "out");
  EXPECT_EQ(alt->rebinds[0].server, "C");
  ASSERT_NE(alt->find("A"), nullptr);
  EXPECT_EQ(alt->find("A")->period, rtsj::RelativeTime::milliseconds(40));
  // Serialization is a fixpoint: a second round trip is byte-identical.
  EXPECT_EQ(save_architecture(first), save_architecture(second));
}

TEST(AdlLoaderTest, NestedScopesLoadAsNestedAreas) {
  const auto arch = load_architecture(R"(<Architecture>
      <PassiveComponent name="P">
        <interface name="s" role="server" signature="I"/>
      </PassiveComponent>
      <MemoryArea name="Outer">
        <MemoryArea name="Inner">
          <PassiveComp name="P"/>
          <AreaDesc type="scope" size="4KB"/>
        </MemoryArea>
        <AreaDesc type="scope" size="16KB"/>
      </MemoryArea>
    </Architecture>)");
  const auto* outer = arch.find_as<MemoryAreaComponent>("Outer");
  const auto* inner = arch.find_as<MemoryAreaComponent>("Inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(arch.memory_area_of(*inner), outer);
  EXPECT_EQ(arch.memory_area_of(*arch.find("P")), inner);
}

}  // namespace
}  // namespace rtcf::adl
