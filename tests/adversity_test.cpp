// Adversity engine tests (ctest label: adversity).
//
// Covers the drill engine's own contracts: bit-identical determinism from
// one seed, generated architectures that always validate, a full drill
// sweep, one scripted drill per fault kind, the deliberate-bug gate
// (PROTO-WEDGED catches a skipped presumed-abort timer, deterministically),
// and the scheduler's arrival-conservation counters the SIM-CONSERVATION
// invariant audits.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "adl/loader.hpp"
#include "adversity/arch_gen.hpp"
#include "adversity/chaos.hpp"
#include "adversity/drill.hpp"
#include "adversity/drill_check.hpp"
#include "adversity/proto_sim.hpp"
#include "rtsj/time/time.hpp"
#include "sim/scheduler.hpp"

namespace {

using namespace rtcf;
using namespace rtcf::adversity;
using rtsj::AbsoluteTime;
using rtsj::RelativeTime;

std::vector<std::string> violation_strings(
    const std::vector<Violation>& violations) {
  std::vector<std::string> out;
  for (const Violation& v : violations) out.push_back(v.to_string());
  return out;
}

TEST(AdversityGenTest, SameSeedSameBytes) {
  const Scenario a = generate_scenario(13);
  const Scenario b = generate_scenario(13);

  // The architecture renders byte-identically, and so does every mutated
  // reload target.
  EXPECT_EQ(adl::save_architecture(a.arch), adl::save_architecture(b.arch));
  ASSERT_EQ(a.reload_targets.size(), b.reload_targets.size());
  for (std::size_t i = 0; i < a.reload_targets.size(); ++i) {
    EXPECT_EQ(adl::save_architecture(a.reload_targets[i]),
              adl::save_architecture(b.reload_targets[i]));
  }

  EXPECT_EQ(a.node_map.nodes, b.node_map.nodes);
  EXPECT_EQ(a.node_map.assignment, b.node_map.assignment);

  ASSERT_EQ(a.workload.bursts.size(), b.workload.bursts.size());
  for (std::size_t i = 0; i < a.workload.bursts.size(); ++i) {
    EXPECT_EQ(a.workload.bursts[i].component,
              b.workload.bursts[i].component);
    EXPECT_EQ(a.workload.bursts[i].start.nanos(),
              b.workload.bursts[i].start.nanos());
    EXPECT_EQ(a.workload.bursts[i].spacing.nanos(),
              b.workload.bursts[i].spacing.nanos());
    EXPECT_EQ(a.workload.bursts[i].count, b.workload.bursts[i].count);
  }

  ASSERT_EQ(a.ops.size(), b.ops.size());
  for (std::size_t i = 0; i < a.ops.size(); ++i) {
    EXPECT_EQ(a.ops[i].kind, b.ops[i].kind);
    EXPECT_EQ(a.ops[i].mode, b.ops[i].mode);
    EXPECT_EQ(a.ops[i].target, b.ops[i].target);
    EXPECT_EQ(a.ops[i].at.nanos(), b.ops[i].at.nanos());
  }

  // The fault timeline is part of the same determinism contract.
  EXPECT_EQ(generate_timeline(a, FaultMix::all()).render(),
            generate_timeline(b, FaultMix::all()).render());

  // Different seeds diverge (the generator is not constant).
  EXPECT_NE(adl::save_architecture(a.arch),
            adl::save_architecture(generate_scenario(14).arch));
}

TEST(AdversityGenTest, WholeDrillReportIsDeterministic) {
  DrillOptions options;
  options.seed = 21;
  options.trace = true;
  const DrillResult a = run_drill(options);
  const DrillResult b = run_drill(options);
  EXPECT_EQ(a.report(), b.report());
  EXPECT_EQ(a.passed, b.passed);
}

TEST(AdversityGenTest, GeneratedPlansAlwaysValidate) {
  // Validity is by construction; the checker proves it seed by seed
  // (global rules, DIST-* distribution rules, per-node slices).
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const Scenario scenario = generate_scenario(seed);
    std::vector<Violation> violations;
    check_generated_valid(scenario, violations);
    EXPECT_TRUE(violations.empty())
        << "seed " << seed << ": " << violations.front().to_string();
  }
}

TEST(AdversityDrillTest, FullDrillsPassSeeds1To25) {
  std::size_t committed = 0;
  std::uint64_t bridged = 0;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    DrillOptions options;
    options.seed = seed;
    const DrillResult result = run_drill(options);
    EXPECT_TRUE(result.passed) << result.report();
    EXPECT_GE(result.ops_total, 1u) << "seed " << seed;
    committed += result.ops_committed;
    bridged += result.route_messages;
  }
  // The sweep exercises both protocol outcomes and real bridged traffic.
  EXPECT_GT(committed, 0u);
  EXPECT_GT(bridged, 0u);
}

TEST(AdversityDrillTest, ScriptedDrillPerFaultKind) {
  const char* kinds[] = {
      "crash",
      "drop",
      "delay",
      "dup",
      "straggler",
      "coord-prepare",
      "coord-commit",
      "overload",
      "starve",
      "join",
      "leave",
  };
  for (const char* kind : kinds) {
    DrillOptions options;
    options.seed = 11;
    options.mix = FaultMix::parse(kind);
    const DrillResult result = run_drill(options);
    EXPECT_TRUE(result.passed) << "kind " << kind << "\n" << result.report();

    // Single-kind mixes guarantee at least one fault of that kind.
    const Scenario scenario = generate_scenario(options.seed);
    const FaultTimeline timeline = generate_timeline(scenario, options.mix);
    bool present = false;
    for (const ControlFault& fault : timeline.control) {
      if (fault.kind == options.mix.kinds.front()) present = true;
    }
    EXPECT_TRUE(present) << "kind " << kind;
  }
}

TEST(AdversityDrillTest, ChurnMixExercisesMembershipAndConverges) {
  // The churn mix layers joins and drain-leaves over node and coordinator
  // crashes; MEMBERSHIP-CONVERGES audits the final view against every
  // node's member flag and per-member epoch, and the ordinary
  // conservation invariants must still hold with members coming and
  // going. The seeds are pinned in tests/drill_corpus.txt.
  const std::uint64_t seeds[] = {3, 4, 28, 33};
  std::size_t joined = 0;
  std::size_t left = 0;
  for (const std::uint64_t seed : seeds) {
    DrillOptions options;
    options.seed = seed;
    options.mix = FaultMix::parse("churn");
    const DrillResult result = run_drill(options);
    EXPECT_TRUE(result.passed) << "seed " << seed << "\n" << result.report();
    EXPECT_GT(result.membership_epoch, 0u) << "seed " << seed;
    joined += result.members_joined;
    left += result.members_left;
  }
  // Across the pinned seeds both directions of churn must be exercised.
  EXPECT_GT(joined, 0u);
  EXPECT_GT(left, 0u);
}

TEST(AdversityDrillTest, FaultKindsShapeTheProtocolOutcome) {
  const std::uint64_t seed = 11;
  const Scenario scenario = generate_scenario(seed);

  // A straggler vote always blows the prepare deadline: its op aborts.
  {
    const FaultTimeline timeline =
        generate_timeline(scenario, FaultMix::parse("straggler"));
    const ProtoResult proto = run_protocol(scenario, timeline);
    bool aborted = false;
    for (const OpOutcome& op : proto.ops) {
      if (!op.faults.empty() && !op.committed) aborted = true;
    }
    EXPECT_TRUE(aborted);
  }

  // A coordinator crash mid-COMMIT is benign: the durable decision is
  // recovered and the op still commits.
  {
    const FaultTimeline timeline =
        generate_timeline(scenario, FaultMix::parse("coord-commit"));
    const ProtoResult proto = run_protocol(scenario, timeline);
    bool recovered = false;
    for (const OpOutcome& op : proto.ops) {
      if (op.recovery_used) {
        recovered = true;
        EXPECT_TRUE(op.committed) << op.reason;
      }
    }
    EXPECT_TRUE(recovered);
  }

  // A node crash kills the node for the rest of the drill.
  {
    const FaultTimeline timeline =
        generate_timeline(scenario, FaultMix::parse("crash"));
    const ProtoResult proto = run_protocol(scenario, timeline);
    bool dead = false;
    for (const ProtoNode& node : proto.nodes) {
      if (!node.alive) dead = true;
    }
    EXPECT_TRUE(dead);
  }
}

TEST(AdversityDrillTest, DeliberateBugIsCaughtDeterministically) {
  // The acceptance gate of the whole engine: skip the presumed-abort
  // timer (the injected bug), drill coordinator-crash-mid-PREPARE seeds,
  // and at least one seed must go red with PROTO-WEDGED — then replay
  // byte-identically.
  DrillOptions options;
  options.mix = FaultMix::parse("coord-prepare");
  options.proto.bug_skip_presumed_abort = true;

  std::uint64_t red_seed = 0;
  DrillResult red;
  for (std::uint64_t seed = 1; seed <= 10 && red_seed == 0; ++seed) {
    options.seed = seed;
    DrillResult result = run_drill(options);
    if (!result.passed) {
      red_seed = seed;
      red = std::move(result);
    }
  }
  ASSERT_NE(red_seed, 0u) << "no seed in 1..10 caught the injected bug";

  bool wedged = false;
  for (const Violation& v : red.violations) {
    if (v.invariant == "PROTO-WEDGED") wedged = true;
  }
  EXPECT_TRUE(wedged) << red.report();

  // Deterministic replay: the same seed reproduces the same violations.
  options.seed = red_seed;
  const DrillResult replay = run_drill(options);
  EXPECT_FALSE(replay.passed);
  EXPECT_EQ(violation_strings(replay.violations),
            violation_strings(red.violations));

  // Without the bug the same seeds pass: the tripwire is specific.
  options.proto.bug_skip_presumed_abort = false;
  const DrillResult clean = run_drill(options);
  EXPECT_TRUE(clean.passed) << clean.report();
}

TEST(AdversitySimTest, ArrivalConservationCounters) {
  // The counters behind SIM-CONSERVATION, on a hand-built scheduler:
  //   arrivals_posted == rejected + disabled + shed + completed
  //                      + pending + queued
  sim::PreemptiveScheduler sched;
  sim::TaskConfig config;
  config.name = "sporadic";
  config.release = rtsj::ReleaseKind::Sporadic;
  config.min_interarrival = RelativeTime::milliseconds(10);
  config.cost = RelativeTime::milliseconds(1);
  config.deadline = RelativeTime::milliseconds(5);
  const sim::TaskId task = sched.add_task(config);

  const auto at = [](std::int64_t ms) {
    return AbsoluteTime() + RelativeTime::milliseconds(ms);
  };
  sched.post_arrival(task, at(0));   // accepted
  sched.post_arrival(task, at(1));   // MIT violation: rejected
  sched.post_arrival(task, at(20));  // accepted

  // Disable the task, then post an arrival that releases while disabled.
  sim::PreemptiveScheduler::TaskMod mod;
  mod.task = task;
  mod.enabled = false;
  sched.schedule_mode_change(at(30), {mod});
  sched.post_arrival(task, at(40));  // dropped at release: disabled

  sched.run_until(at(60));
  {
    const sim::TaskStats& stats = sched.stats(task);
    EXPECT_EQ(stats.arrivals_posted, 4u);
    EXPECT_EQ(stats.rejected_arrivals, 1u);
    EXPECT_EQ(stats.disabled_arrivals, 1u);
    EXPECT_EQ(stats.releases_completed, 2u);
    EXPECT_EQ(stats.pending_arrivals, 0u);
    EXPECT_EQ(sched.queued_jobs(task), 0u);
    EXPECT_EQ(stats.arrivals_posted,
              stats.rejected_arrivals + stats.disabled_arrivals +
                  stats.shed_releases + stats.releases_completed +
                  stats.pending_arrivals + sched.queued_jobs(task));
  }

  // pending_arrivals is the in-flight term: observable mid-run, zero after
  // the release lands (the identity holds at both instants).
  mod.enabled = true;
  sched.schedule_mode_change(at(70), {mod});
  sched.post_arrival(task, at(100));
  sched.run_until(at(90));
  {
    const sim::TaskStats& stats = sched.stats(task);
    EXPECT_EQ(stats.pending_arrivals, 1u);
    EXPECT_EQ(stats.arrivals_posted,
              stats.rejected_arrivals + stats.disabled_arrivals +
                  stats.shed_releases + stats.releases_completed +
                  stats.pending_arrivals + sched.queued_jobs(task));
  }
  sched.run_until(at(120));
  {
    const sim::TaskStats& stats = sched.stats(task);
    EXPECT_EQ(stats.pending_arrivals, 0u);
    EXPECT_EQ(stats.releases_completed, 3u);
  }
}

}  // namespace
