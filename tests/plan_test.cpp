// The Soleil planner: pattern resolution and buffer/staging placement.
#include <gtest/gtest.h>

#include "scenario/production_scenario.hpp"
#include "soleil/plan.hpp"

namespace rtcf::soleil {
namespace {

using membrane::PatternOp;

class PlanTest : public ::testing::Test {
 protected:
  PlanTest()
      : arch_(scenario::make_production_architecture()),
        env_(arch_),
        plan_(make_plan(arch_, env_)) {}

  const PlannedBinding& binding_to(const std::string& server) const {
    for (const auto& pb : plan_.bindings) {
      if (pb.server->name() == server) return pb;
    }
    throw std::logic_error("no binding to " + server);
  }

  model::Architecture arch_;
  runtime::RuntimeEnvironment env_;
  Plan plan_;
};

TEST_F(PlanTest, PlansAllComponentsAndBindings) {
  EXPECT_EQ(plan_.components.size(), 4u);
  EXPECT_EQ(plan_.bindings.size(), 3u);
  ASSERT_NE(plan_.find_component("Console"), nullptr);
  EXPECT_EQ(plan_.find_component("Console")->active, nullptr);
  EXPECT_EQ(plan_.find_component("missing"), nullptr);
}

TEST_F(PlanTest, SameAreaBindingIsDirect) {
  const auto& pb = binding_to("MonitoringSystem");
  EXPECT_EQ(pb.op, PatternOp::Direct);
  EXPECT_EQ(pb.staging_area, nullptr);
  // Both endpoints in Imm1: the buffer sits in immortal memory.
  EXPECT_EQ(pb.buffer_area, &rtsj::ImmortalMemory::instance());
  EXPECT_EQ(pb.buffer_size, 10u);
}

TEST_F(PlanTest, ScopedServerGetsScopeEnter) {
  const auto& pb = binding_to("Console");
  EXPECT_EQ(pb.op, PatternOp::ScopeEnter);
  EXPECT_EQ(pb.server_area->kind(), rtsj::AreaKind::Scoped);
  EXPECT_EQ(pb.buffer_area, nullptr) << "synchronous: no buffer";
}

TEST_F(PlanTest, NhrtToHeapAsyncGetsImmortalForward) {
  const auto& pb = binding_to("AuditLog");
  EXPECT_EQ(pb.op, PatternOp::ImmortalForward);
  EXPECT_EQ(pb.staging_area, &rtsj::ImmortalMemory::instance());
  EXPECT_EQ(pb.buffer_area, &rtsj::ImmortalMemory::instance())
      << "an NHRT participant must never be handed heap storage";
}

TEST_F(PlanTest, ExplicitPatternOverridesSuggestion) {
  auto arch = scenario::make_production_architecture();
  arch.mutable_bindings()[0].desc.pattern = "deep-copy";
  runtime::RuntimeEnvironment env(arch);
  const auto plan = make_plan(arch, env);
  EXPECT_EQ(plan.bindings[0].op, PatternOp::DeepCopy);
}

TEST_F(PlanTest, ThreadsAndAreasResolved) {
  const auto* pl = plan_.find_component("ProductionLine");
  ASSERT_NE(pl, nullptr);
  ASSERT_NE(pl->thread, nullptr);
  EXPECT_EQ(pl->thread->kind(), rtsj::ThreadKind::NoHeapRealtime);
  EXPECT_EQ(pl->area, &rtsj::ImmortalMemory::instance());
  const auto* audit = plan_.find_component("AuditLog");
  EXPECT_EQ(audit->area, &rtsj::HeapMemory::instance());
}

TEST(PlanErrorsTest, SyncNhrtToHeapIsUnplannable) {
  auto arch = scenario::make_production_architecture();
  // Make the console binding point at heap-allocated state.
  auto& heap_console = arch.add_passive("HeapConsole");
  heap_console.set_content_class("X");
  heap_console.add_interface(
      {"iConsole", model::InterfaceRole::Server, "IConsole"});
  arch.add_child(*arch.find("H1"), heap_console);
  arch.mutable_bindings()[1].server = {"HeapConsole", "iConsole"};
  runtime::RuntimeEnvironment env(arch);
  EXPECT_THROW(make_plan(arch, env), PlanningError);
}

TEST(PlanErrorsTest, UnknownEndpointIsUnplannable) {
  auto arch = scenario::make_production_architecture();
  arch.mutable_bindings()[0].server.component = "Ghost";
  runtime::RuntimeEnvironment env(arch);
  EXPECT_THROW(make_plan(arch, env), PlanningError);
}

TEST(PlanSharedScopeTest, SiblingScopesUnderCommonParentShareIt) {
  using namespace model;
  Architecture arch;
  auto& a = arch.add_active("A", ActivationKind::Periodic,
                            rtsj::RelativeTime::milliseconds(1));
  a.set_content_class("AI");
  a.add_interface({"out", InterfaceRole::Client, "I"});
  auto& b = arch.add_passive("B");
  b.set_content_class("BI");
  b.add_interface({"in", InterfaceRole::Server, "I"});
  auto& domain = arch.add_thread_domain("D", DomainType::Realtime, 20);
  arch.add_child(domain, a);

  auto& parent = arch.add_memory_area("Parent", AreaType::Scoped, 64 * 1024);
  auto& sa = arch.add_memory_area("SA", AreaType::Scoped, 8 * 1024);
  auto& sb = arch.add_memory_area("SB", AreaType::Scoped, 8 * 1024);
  arch.add_child(parent, sa);
  arch.add_child(parent, sb);
  arch.add_child(sa, domain);
  arch.add_child(sb, b);
  arch.add_binding({{"A", "out"}, {"B", "in"}, {}});  // sync, disjoint

  runtime::RuntimeEnvironment env(arch);
  const auto plan = make_plan(arch, env);
  ASSERT_EQ(plan.bindings.size(), 1u);
  EXPECT_EQ(plan.bindings[0].op, PatternOp::SharedScope);
  EXPECT_EQ(plan.bindings[0].staging_area,
            &env.area_runtime(parent))
      << "staging belongs in the common ancestor scope";
}

TEST(PlanModeNamesTest, ToStringCoversAllModes) {
  EXPECT_STREQ(to_string(Mode::Soleil), "SOLEIL");
  EXPECT_STREQ(to_string(Mode::MergeAll), "MERGE_ALL");
  EXPECT_STREQ(to_string(Mode::UltraMerge), "ULTRA_MERGE");
}

}  // namespace
}  // namespace rtcf::soleil
