// Multi-tenant assemblies end to end: the TENANT-* rule family over
// snapshot plans (membership, capability routing, area/domain scoping,
// budget envelopes, export/import declarations, mode-rebind legality),
// RTA-gated admission control (accept with a staged reload, reject with
// machine-readable reasons carrying the owning tenant and its ADL source
// line, compose-conflict rejection, purity of rejection), the per-tenant
// overload governor (demotion scoped to the violating tenant, criticality
// floors, reset), RuntimeMonitor tenant adoption, and the deterministic
// two-tenant sim replay (overload in one tenant sheds nothing in the
// other — bit-for-bit reproducible).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "adl/loader.hpp"
#include "dist/plan_codec.hpp"
#include "model/assembly_plan.hpp"
#include "model/metamodel.hpp"
#include "monitor/contract.hpp"
#include "monitor/governor.hpp"
#include "monitor/runtime_monitor.hpp"
#include "runtime/content_registry.hpp"
#include "sim/scheduler.hpp"
#include "soleil/plan.hpp"
#include "tenant/admission.hpp"
#include "tenant/compose.hpp"
#include "validate/tenancy.hpp"
#include "validate/validator.hpp"

namespace rtcf {
namespace {

using model::ActivationKind;
using model::Architecture;
using model::AreaType;
using model::AssemblyPlan;
using model::Criticality;
using model::DomainType;
using model::InterfaceRole;
using model::Protocol;
using model::TenantDecl;
using monitor::GovernorLevel;
using monitor::OverloadGovernor;
using tenant::AdmissionController;
using tenant::AdmissionDecision;
using tenant::AdmissionReason;
using validate::Severity;

// ---- fixtures -------------------------------------------------------------

class TenantTaskImpl final : public comm::Content {
 public:
  void on_release() override {}
};
RTCF_REGISTER_CONTENT(TenantTaskImpl)

/// One self-contained tenant slice: a periodic component in its own RT
/// domain inside its own area. `prefix` namespaces every element. The
/// admission fixtures use heap areas (a new scoped area cannot be
/// instantiated by a live reload — DELTA-AREA-UNKNOWN).
model::ActiveComponent& add_slice(Architecture& arch,
                                  const std::string& prefix, int priority,
                                  rtsj::RelativeTime period,
                                  rtsj::RelativeTime cost,
                                  std::size_t area_bytes = 4096,
                                  AreaType area_type = AreaType::Scoped) {
  auto& comp = arch.add_active(prefix + ".Task", ActivationKind::Periodic,
                               period);
  comp.set_cost(cost);
  comp.set_criticality(Criticality::Low);
  comp.set_content_class("TenantTaskImpl");
  comp.set_swappable(true);
  auto& domain =
      arch.add_thread_domain(prefix + ".RT", DomainType::Realtime, priority);
  auto& area =
      arch.add_memory_area(prefix + ".Area", area_type, area_bytes);
  arch.add_child(area, domain);
  arch.add_child(domain, comp);
  return comp;
}

/// Declares a tenant over `members` with a generous budget.
TenantDecl& add_tenant(Architecture& arch, const std::string& name,
                       std::vector<std::string> members,
                       double cpu = 0.9, std::size_t memory = 1 << 20) {
  TenantDecl decl;
  decl.name = name;
  decl.budget.cpu_utilization = cpu;
  decl.budget.memory_bytes = memory;
  decl.members = std::move(members);
  return arch.add_tenant(std::move(decl));
}

/// Two tenants, alpha's component calling into beta's through an
/// asynchronous binding. `declare_route` adds the export/import pair the
/// TENANT-CAPABILITY-ROUTED rule demands.
Architecture make_two_tenants(bool declare_route) {
  Architecture arch;
  auto& caller = add_slice(arch, "alpha", 20, rtsj::RelativeTime::
                           milliseconds(10), rtsj::RelativeTime::
                           microseconds(500));
  caller.add_interface({"out", InterfaceRole::Client, "IFeed"});

  auto& serving = arch.add_active("beta.Sink", ActivationKind::Sporadic,
                                  rtsj::RelativeTime::zero());
  serving.set_criticality(Criticality::Low);
  serving.add_interface({"in", InterfaceRole::Server, "IFeed"});
  auto& bdomain = arch.add_thread_domain("beta.RT", DomainType::Realtime, 15);
  auto& barea = arch.add_memory_area("beta.Area", AreaType::Scoped, 8192);
  arch.add_child(barea, bdomain);
  arch.add_child(bdomain, serving);

  model::Binding binding;
  binding.client = {"alpha.Task", "out"};
  binding.server = {"beta.Sink", "in"};
  binding.desc.protocol = Protocol::Asynchronous;
  binding.desc.buffer_size = 8;
  arch.add_binding(binding);

  add_tenant(arch, "alpha", {"alpha.Task"});
  add_tenant(arch, "beta", {"beta.Sink"});
  if (declare_route) {
    // Re-fetch after both declarations: add_tenant invalidates earlier
    // references when the tenant vector grows.
    const_cast<TenantDecl&>(*arch.find_tenant("beta"))
        .exports.push_back({"feed", "beta.Sink", "in"});
    const_cast<TenantDecl&>(*arch.find_tenant("alpha"))
        .imports.push_back({"feed", "beta"});
  }
  return arch;
}

validate::Report tenancy_of(const Architecture& arch) {
  return validate::validate_tenancy(
      soleil::snapshot_assembly(arch, /*partitions=*/1));
}

// ---- TENANT-* rules -------------------------------------------------------

TEST(TenancyRulesTest, CleanTwoTenantAssemblyPasses) {
  const Architecture arch = make_two_tenants(/*declare_route=*/true);
  const AssemblyPlan plan = soleil::snapshot_assembly(arch, 1);
  const auto report = validate::validate_tenancy(plan);
  EXPECT_TRUE(report.ok()) << report.to_string();

  // Snapshot membership is fully expanded: the enclosing area and domain
  // of each member ride along as owned resources.
  const auto* alpha = plan.find_tenant("alpha");
  ASSERT_NE(alpha, nullptr);
  EXPECT_TRUE(alpha->owns_component("alpha.Task"));
  EXPECT_TRUE(alpha->owns_area("alpha.Area"));
  EXPECT_EQ(plan.tenant_of("beta.Sink"), plan.find_tenant("beta"));
  EXPECT_EQ(plan.tenant_of("nobody"), nullptr);
}

TEST(TenancyRulesTest, FlagsUnknownAndNonExclusiveMembers) {
  Architecture arch = make_two_tenants(true);
  add_tenant(arch, "gamma", {"ghost.Task", "alpha.Task"});
  const auto report = tenancy_of(arch);
  EXPECT_TRUE(report.has_rule("TENANT-MEMBER-UNKNOWN"));
  EXPECT_TRUE(report.has_rule("TENANT-MEMBER-EXCLUSIVE"));
  EXPECT_FALSE(report.ok());
}

TEST(TenancyRulesTest, CrossTenantBindingNeedsExportAndImport) {
  // No route declared at all: the serving tenant exports nothing.
  const auto report = tenancy_of(make_two_tenants(false));
  const auto hits = report.by_rule("TENANT-CAPABILITY-ROUTED");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].subject, "alpha");
  EXPECT_NE(hits[0].message.find("exports no capability"),
            std::string::npos);
}

TEST(TenancyRulesTest, ExportWithoutImportStillRejected) {
  Architecture arch;
  auto& caller = add_slice(arch, "alpha", 20,
                           rtsj::RelativeTime::milliseconds(10),
                           rtsj::RelativeTime::microseconds(500));
  caller.add_interface({"out", InterfaceRole::Client, "IFeed"});
  auto& serving = arch.add_active("beta.Sink", ActivationKind::Sporadic,
                                  rtsj::RelativeTime::zero());
  serving.add_interface({"in", InterfaceRole::Server, "IFeed"});
  auto& bdomain = arch.add_thread_domain("beta.RT", DomainType::Realtime, 15);
  arch.add_child(bdomain, serving);
  model::Binding binding;
  binding.client = {"alpha.Task", "out"};
  binding.server = {"beta.Sink", "in"};
  binding.desc.protocol = Protocol::Asynchronous;
  binding.desc.buffer_size = 8;
  arch.add_binding(binding);
  add_tenant(arch, "alpha", {"alpha.Task"});
  auto& beta = add_tenant(arch, "beta", {"beta.Sink"});
  beta.exports.push_back({"feed", "beta.Sink", "in"});

  const auto report = tenancy_of(arch);
  const auto hits = report.by_rule("TENANT-CAPABILITY-ROUTED");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].message.find("does not import capability 'feed'"),
            std::string::npos);
}

TEST(TenancyRulesTest, TenantlessEndpointsAreExemptFromRouting) {
  // The operator slice binds into a tenant freely: only tenant-to-tenant
  // edges are capability-routed.
  Architecture arch = make_two_tenants(false);
  auto& op = arch.add_active("op.Probe", ActivationKind::Periodic,
                             rtsj::RelativeTime::milliseconds(50));
  op.set_cost(rtsj::RelativeTime::microseconds(10));
  op.add_interface({"tap", InterfaceRole::Client, "IFeed"});
  auto& domain = arch.add_thread_domain("op.RT", DomainType::Realtime, 5);
  arch.add_child(domain, op);
  model::Binding binding;
  binding.client = {"op.Probe", "tap"};
  binding.server = {"beta.Sink", "in"};
  binding.desc.protocol = Protocol::Asynchronous;
  binding.desc.buffer_size = 4;
  arch.add_binding(binding);

  const auto report = tenancy_of(arch);
  // Exactly one routing error (alpha -> beta), none for the operator edge.
  EXPECT_EQ(report.by_rule("TENANT-CAPABILITY-ROUTED").size(), 1u);
}

TEST(TenancyRulesTest, ModeRebindAcrossTenantsNeedsTheSameRoute) {
  Architecture arch = make_two_tenants(true);
  // A second server in beta the mode redirects alpha's port onto; the
  // redirect is a new cross-tenant route and needs its own capability.
  auto& spare = arch.add_active("beta.Spare", ActivationKind::Sporadic,
                                rtsj::RelativeTime::zero());
  spare.add_interface({"in", InterfaceRole::Server, "IFeed"});
  arch.add_child(*arch.find("beta.RT"), spare);
  TenantDecl& beta =
      const_cast<TenantDecl&>(*arch.find_tenant("beta"));
  beta.members.push_back("beta.Spare");

  model::ModeDecl mode;
  mode.name = "Failover";
  mode.components.push_back({"alpha.Task", {}, {}});
  mode.components.push_back({"beta.Sink", {}, {}});
  mode.components.push_back({"beta.Spare", {}, {}});
  mode.rebinds.push_back({"alpha.Task", "out", "beta.Spare"});
  arch.add_mode(std::move(mode));

  const auto report = tenancy_of(arch);
  const auto hits = report.by_rule("TENANT-CAPABILITY-ROUTED");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].message.find("mode rebind"), std::string::npos);

  // Declaring the redirect's capability route makes the mode legal. The
  // existing 'feed' import on alpha covers any capability from beta only
  // if the name matches, so the spare needs its own export and import.
  TenantDecl& beta2 =
      const_cast<TenantDecl&>(*arch.find_tenant("beta"));
  beta2.exports.push_back({"spare-feed", "beta.Spare", "in"});
  TenantDecl& alpha =
      const_cast<TenantDecl&>(*arch.find_tenant("alpha"));
  alpha.imports.push_back({"spare-feed", "beta"});
  EXPECT_TRUE(tenancy_of(arch).ok());
}

TEST(TenancyRulesTest, SharedAreasAndDomainsBreakIsolation) {
  // Two tenants' components in one thread domain and one memory area.
  Architecture arch;
  auto& a = arch.add_active("alpha.Task", ActivationKind::Periodic,
                            rtsj::RelativeTime::milliseconds(10));
  a.set_cost(rtsj::RelativeTime::microseconds(100));
  auto& b = arch.add_active("beta.Task", ActivationKind::Periodic,
                            rtsj::RelativeTime::milliseconds(10));
  b.set_cost(rtsj::RelativeTime::microseconds(100));
  auto& domain = arch.add_thread_domain("shared.RT", DomainType::Realtime, 10);
  auto& area = arch.add_memory_area("shared.Area", AreaType::Scoped, 4096);
  arch.add_child(area, domain);
  arch.add_child(domain, a);
  arch.add_child(domain, b);
  add_tenant(arch, "alpha", {"alpha.Task"});
  add_tenant(arch, "beta", {"beta.Task"});

  const auto report = tenancy_of(arch);
  EXPECT_TRUE(report.has_rule("TENANT-AREA-SCOPED"));
  EXPECT_TRUE(report.has_rule("TENANT-DOMAIN-EXCLUSIVE"));
  EXPECT_FALSE(report.ok());
}

TEST(TenancyRulesTest, TenantPlusOperatorSharingIsOnlyAWarning) {
  Architecture arch;
  auto& a = arch.add_active("alpha.Task", ActivationKind::Periodic,
                            rtsj::RelativeTime::milliseconds(10));
  a.set_cost(rtsj::RelativeTime::microseconds(100));
  auto& op = arch.add_active("op.Probe", ActivationKind::Periodic,
                             rtsj::RelativeTime::milliseconds(50));
  op.set_cost(rtsj::RelativeTime::microseconds(10));
  auto& domain = arch.add_thread_domain("shared.RT", DomainType::Realtime, 10);
  arch.add_child(domain, a);
  arch.add_child(domain, op);
  add_tenant(arch, "alpha", {"alpha.Task"});

  const auto report = tenancy_of(arch);
  EXPECT_TRUE(report.ok()) << report.to_string();
  ASSERT_EQ(report.by_rule("TENANT-DOMAIN-EXCLUSIVE").size(), 1u);
  EXPECT_EQ(report.by_rule("TENANT-DOMAIN-EXCLUSIVE")[0].severity,
            Severity::Warning);
}

TEST(TenancyRulesTest, BudgetBoundsCoverCpuMemoryAndMalformedEnvelopes) {
  // CPU: 500us / 10ms = 0.05 utilization against a 0.01 budget.
  {
    Architecture arch = make_two_tenants(true);
    const_cast<TenantDecl&>(*arch.find_tenant("alpha"))
        .budget.cpu_utilization = 0.01;
    const auto report = tenancy_of(arch);
    const auto hits = report.by_rule("TENANT-BUDGET-BOUNDS");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].subject, "alpha");
  }
  // Memory: alpha owns a 4096-byte area against a 1000-byte budget.
  {
    Architecture arch = make_two_tenants(true);
    const_cast<TenantDecl&>(*arch.find_tenant("alpha"))
        .budget.memory_bytes = 1000;
    EXPECT_TRUE(tenancy_of(arch).has_rule("TENANT-BUDGET-BOUNDS"));
  }
  // Malformed: a negative CPU budget is itself an error.
  {
    Architecture arch = make_two_tenants(true);
    const_cast<TenantDecl&>(*arch.find_tenant("beta"))
        .budget.cpu_utilization = -0.5;
    EXPECT_TRUE(tenancy_of(arch).has_rule("TENANT-BUDGET-BOUNDS"));
  }
  // Exact fit passes (the rule allows utilization == budget).
  {
    Architecture arch = make_two_tenants(true);
    const_cast<TenantDecl&>(*arch.find_tenant("alpha"))
        .budget.cpu_utilization = 0.05;
    EXPECT_TRUE(tenancy_of(arch).ok());
  }
}

TEST(TenancyRulesTest, ExportAndImportDeclarationsAreChecked) {
  Architecture arch = make_two_tenants(true);
  TenantDecl& alpha = const_cast<TenantDecl&>(*arch.find_tenant("alpha"));
  TenantDecl& beta = const_cast<TenantDecl&>(*arch.find_tenant("beta"));
  // Exporting a component the tenant does not own.
  beta.exports.push_back({"stolen", "alpha.Task", "out"});
  // Exporting a client interface (only server ends are capabilities).
  alpha.exports.push_back({"backwards", "alpha.Task", "out"});
  // Importing from a tenant that does not exist, a capability the source
  // does not export, and from the tenant itself.
  alpha.imports.push_back({"feed", "nobody"});
  alpha.imports.push_back({"unexported", "beta"});
  beta.imports.push_back({"feed", "beta"});

  const auto report = tenancy_of(arch);
  EXPECT_EQ(report.by_rule("TENANT-EXPORT-UNKNOWN").size(), 2u);
  EXPECT_EQ(report.by_rule("TENANT-IMPORT-UNKNOWN").size(), 3u);
}

TEST(TenancyRulesTest, DuplicateExportNamesAreRejected) {
  Architecture arch = make_two_tenants(true);
  TenantDecl& beta = const_cast<TenantDecl&>(*arch.find_tenant("beta"));
  beta.exports.push_back({"feed", "beta.Sink", "in"});  // second 'feed'
  const auto report = tenancy_of(arch);
  const auto hits = report.by_rule("TENANT-EXPORT-UNKNOWN");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].message.find("more than once"), std::string::npos);
}

TEST(TenancyRulesTest, TenantlessPlanPassesVacuously) {
  Architecture arch;
  add_slice(arch, "solo", 10, rtsj::RelativeTime::milliseconds(10),
            rtsj::RelativeTime::milliseconds(1));
  EXPECT_TRUE(tenancy_of(arch).ok());
}

// ---- admission control ----------------------------------------------------

/// Resident assembly: tenant alpha with one 2ms/10ms task on the heap.
Architecture make_resident() {
  Architecture arch;
  add_slice(arch, "alpha", 20, rtsj::RelativeTime::milliseconds(10),
            rtsj::RelativeTime::milliseconds(2), 0, AreaType::Heap);
  add_tenant(arch, "alpha", {"alpha.Task"});
  return arch;
}

/// Candidate slice: tenant beta with one task of the given cost.
Architecture make_candidate(rtsj::RelativeTime cost) {
  Architecture arch;
  add_slice(arch, "beta", 15, rtsj::RelativeTime::milliseconds(10), cost, 0,
            AreaType::Heap);
  add_tenant(arch, "beta", {"beta.Task"});
  return arch;
}

TEST(AdmissionTest, AcceptsASchedulableTenantWithAStagedReload) {
  const Architecture resident = make_resident();
  const AssemblyPlan running = soleil::snapshot_assembly(resident, 1);
  const Architecture candidate =
      make_candidate(rtsj::RelativeTime::milliseconds(1));

  const AdmissionDecision decision =
      AdmissionController{}.admit(running, resident, candidate);
  ASSERT_TRUE(decision.accepted) << decision.report.to_string();
  EXPECT_TRUE(decision.reasons.empty());
  ASSERT_EQ(decision.candidate_tenants,
            std::vector<std::string>{"beta"});
  // The modeless composed-RTA verdict is recorded even on acceptance.
  ASSERT_EQ(decision.rta.size(), 1u);
  EXPECT_TRUE(decision.rta[0].mode.empty());
  EXPECT_TRUE(decision.rta[0].schedulable);
  // The staged transition adds exactly the candidate's component and the
  // placed target snapshot knows both tenants.
  ASSERT_TRUE(decision.reload.ok());
  ASSERT_EQ(decision.reload.delta.add_components.size(), 1u);
  EXPECT_EQ(decision.reload.delta.add_components[0].name, "beta.Task");
  EXPECT_TRUE(decision.reload.delta.remove_components.empty());
  EXPECT_NE(decision.reload.target.find_tenant("alpha"), nullptr);
  EXPECT_NE(decision.reload.target.find_tenant("beta"), nullptr);
}

TEST(AdmissionTest, RejectsWhenTheComposedTaskSetIsUnschedulable) {
  const Architecture resident = make_resident();
  const AssemblyPlan running = soleil::snapshot_assembly(resident, 1);
  // 2ms + 9ms of demand per 10ms period: no response-time bound exists.
  const Architecture candidate =
      make_candidate(rtsj::RelativeTime::milliseconds(9));

  // Rejection purity: admit() composes and analyses but applies nothing —
  // the running snapshot's bytes are identical before and after.
  const std::vector<std::uint8_t> before = dist::encode_plan(running);
  const AdmissionDecision decision =
      AdmissionController{}.admit(running, resident, candidate);
  EXPECT_EQ(dist::encode_plan(running), before);

  ASSERT_FALSE(decision.accepted);
  const AdmissionReason* reason = decision.reason_for("TENANT-ADMIT-RTA");
  ASSERT_NE(reason, nullptr) << decision.report.to_string();
  EXPECT_NE(reason->message.find("not schedulable"), std::string::npos);
  ASSERT_EQ(decision.rta.size(), 1u);
  EXPECT_FALSE(decision.rta[0].schedulable);
}

TEST(AdmissionTest, RejectsNameCollisionsAsComposeConflicts) {
  const Architecture resident = make_resident();
  const AssemblyPlan running = soleil::snapshot_assembly(resident, 1);
  // The candidate re-declares the resident's component name.
  Architecture candidate;
  add_slice(candidate, "alpha", 15, rtsj::RelativeTime::milliseconds(10),
            rtsj::RelativeTime::milliseconds(1));
  add_tenant(candidate, "beta", {"alpha.Task"});

  const AdmissionDecision decision =
      AdmissionController{}.admit(running, resident, candidate);
  ASSERT_FALSE(decision.accepted);
  EXPECT_NE(decision.reason_for("TENANT-COMPOSE-CONFLICT"), nullptr)
      << decision.report.to_string();
}

TEST(AdmissionTest, RejectionReasonsCarryTenantNameAndAdlLine) {
  const Architecture resident = make_resident();
  const AssemblyPlan running = soleil::snapshot_assembly(resident, 1);
  // The candidate arrives as ADL text; its <Tenant> element sits on line 8
  // and declares a CPU budget its own member cannot fit (0.2 needed vs
  // 0.01 declared), so TENANT-BUDGET-BOUNDS fires on the composition.
  const char* adl_text = R"(<Architecture>
  <ActiveComponent name="beta.Task" type="periodic" periodicity="10ms"
                   cost="2ms" criticality="low"/>
  <MemoryArea name="beta.Area">
    <AreaDesc type="scope" size="4KB"/>
    <ThreadDomain name="beta.RT"><DomainDesc type="RT" priority="15"/>
      <ActiveComp name="beta.Task"/></ThreadDomain></MemoryArea>
  <Tenant name="beta">
    <Budget cpu="0.01" memory="1MB"/>
    <Member name="beta.Task"/>
  </Tenant>
</Architecture>)";
  const Architecture candidate = adl::load_architecture(adl_text);
  ASSERT_EQ(candidate.tenants().size(), 1u);
  const int tenant_line = candidate.tenants()[0].adl_line;
  EXPECT_EQ(tenant_line, 8);

  const AdmissionDecision decision =
      AdmissionController{}.admit(running, resident, candidate);
  ASSERT_FALSE(decision.accepted);
  const AdmissionReason* reason =
      decision.reason_for("TENANT-BUDGET-BOUNDS");
  ASSERT_NE(reason, nullptr) << decision.report.to_string();
  // Machine-readable context: the owning tenant and where it was declared.
  EXPECT_EQ(reason->tenant, "beta");
  EXPECT_EQ(reason->adl_line, tenant_line);
  // The human-readable message carries the same line context inline.
  EXPECT_NE(reason->message.find("(line " + std::to_string(tenant_line) +
                                 ")"),
            std::string::npos)
      << reason->message;
}

TEST(AdmissionTest, ComposeMergesSlicesAndReportsConflicts) {
  const Architecture resident = make_resident();
  const Architecture candidate =
      make_candidate(rtsj::RelativeTime::milliseconds(1));
  validate::Report report;
  const Architecture merged =
      tenant::merge_architectures(resident, candidate, report);
  EXPECT_TRUE(report.ok());
  EXPECT_NE(merged.find("alpha.Task"), nullptr);
  EXPECT_NE(merged.find("beta.Task"), nullptr);
  EXPECT_EQ(merged.tenants().size(), 2u);

  // Merging the same slice twice collides on every declaration.
  validate::Report conflicts;
  Architecture twice = tenant::merge_architectures(resident, resident,
                                                   conflicts);
  (void)twice;
  EXPECT_TRUE(conflicts.has_rule("TENANT-COMPOSE-CONFLICT"));
}

// ---- per-tenant governor --------------------------------------------------

TEST(TenantGovernorTest, DemotionIsScopedToTheViolatingTenant) {
  OverloadGovernor governor;
  const auto alpha = governor.add_tenant("alpha", Criticality::Low);
  const auto beta = governor.add_tenant("beta", Criticality::Low);
  const auto a_low =
      governor.add_component("a.low", Criticality::Low, alpha);
  const auto a_high =
      governor.add_component("a.high", Criticality::High, alpha);
  const auto b_low =
      governor.add_component("b.low", Criticality::Low, beta);
  const auto free_low = governor.add_component("free.low", Criticality::Low);

  // Four violated windows from alpha's low component: rate-limit after
  // two, shed after two more — in alpha only.
  for (int i = 0; i < 4; ++i) governor.on_window_violated(a_low);
  EXPECT_EQ(governor.tenant_level(alpha), GovernorLevel::Shed);
  EXPECT_EQ(governor.tenant_level(beta), GovernorLevel::Normal);
  EXPECT_EQ(governor.tenant_level(0), GovernorLevel::Normal);
  // The assembly-wide signal is the max across tenants.
  EXPECT_EQ(governor.level(), GovernorLevel::Shed);

  // Only alpha's low-criticality releases are shed; the bystander tenant
  // and the default envelope keep running.
  EXPECT_EQ(governor.admit_release(a_low),
            OverloadGovernor::Admission::Shed);
  EXPECT_EQ(governor.admit_release(a_high),
            OverloadGovernor::Admission::Run);
  EXPECT_EQ(governor.admit_release(b_low),
            OverloadGovernor::Admission::Run);
  EXPECT_EQ(governor.admit_release(free_low),
            OverloadGovernor::Admission::Run);

  // Every transition names its tenant.
  const auto decisions = governor.decisions();
  ASSERT_EQ(decisions.size(), 2u);
  for (const auto& d : decisions) {
    EXPECT_STREQ(d.tenant, "alpha");
    EXPECT_STREQ(d.trigger, "a.low");
  }
}

TEST(TenantGovernorTest, HighCriticalityFloorMakesATenantUndegradable) {
  OverloadGovernor governor;
  const auto vip = governor.add_tenant("vip", Criticality::High);
  const auto low = governor.add_component("vip.low", Criticality::Low, vip);
  for (int i = 0; i < 8; ++i) governor.on_window_violated(low);
  EXPECT_EQ(governor.tenant_level(vip), GovernorLevel::Normal);
  EXPECT_TRUE(governor.decisions().empty());
  EXPECT_EQ(governor.admit_release(low), OverloadGovernor::Admission::Run);
}

TEST(TenantGovernorTest, ResetReturnsEveryTenantToNormal) {
  OverloadGovernor governor;
  const auto alpha = governor.add_tenant("alpha", Criticality::Low);
  const auto beta = governor.add_tenant("beta", Criticality::Low);
  const auto a_low = governor.add_component("a.low", Criticality::Low, alpha);
  const auto b_low = governor.add_component("b.low", Criticality::Low, beta);
  for (int i = 0; i < 4; ++i) governor.on_window_violated(a_low);
  for (int i = 0; i < 2; ++i) governor.on_window_violated(b_low);
  EXPECT_EQ(governor.tenant_level(alpha), GovernorLevel::Shed);
  EXPECT_EQ(governor.tenant_level(beta), GovernorLevel::RateLimit);

  governor.reset();
  EXPECT_EQ(governor.tenant_level(alpha), GovernorLevel::Normal);
  EXPECT_EQ(governor.tenant_level(beta), GovernorLevel::Normal);
  EXPECT_EQ(governor.level(), GovernorLevel::Normal);
  EXPECT_EQ(governor.admit_release(a_low),
            OverloadGovernor::Admission::Run);
  EXPECT_EQ(governor.admit_release(b_low),
            OverloadGovernor::Admission::Run);
}

TEST(TenantGovernorTest, MonitorAdoptsPlanTenantsIdempotently) {
  Architecture arch = make_two_tenants(true);
  const AssemblyPlan plan = soleil::snapshot_assembly(arch, 1);

  monitor::RuntimeMonitor mon;
  mon.adopt_tenants(plan);
  // Tenant 0 is the implicit default envelope; alpha and beta follow.
  EXPECT_EQ(mon.governor().tenant_count(), 3u);
  // Re-adoption after a live reload registers nothing twice.
  mon.adopt_tenants(plan);
  EXPECT_EQ(mon.governor().tenant_count(), 3u);

  auto& area = rtsj::ImmortalMemory::instance();
  const auto& member =
      mon.add_component("alpha.Task", area, Criticality::Low, nullptr);
  const auto& outsider =
      mon.add_component("op.Probe", area, Criticality::Low, nullptr);
  // Members land in their tenant's scope, outsiders in the default.
  EXPECT_STREQ(mon.governor().tenant_name(
                   mon.governor().component_tenant(member.governor_id)),
               "alpha");
  EXPECT_EQ(mon.governor().component_tenant(outsider.governor_id), 0u);
}

// ---- deterministic two-tenant sim replay ----------------------------------

struct TwoTenantRun {
  sim::TaskStats bulk;    // alpha's overloading task
  sim::TaskStats ctrl;    // alpha's high-criticality task
  sim::TaskStats victim;  // beta's task — must stay whole
  std::vector<std::string> decisions;  // "tenant:level@trigger"
  std::vector<std::string> trace;
};

/// Alpha's low-criticality bulk task overruns its budget and is governed
/// down; beta's task shares the CPU but not the envelope.
TwoTenantRun run_two_tenants() {
  sim::PreemptiveScheduler sched;
  sched.enable_trace();

  sim::TaskConfig bulk;
  bulk.name = "alpha.Bulk";
  bulk.kind = sim::ThreadKind::Realtime;
  bulk.priority = 25;
  bulk.release = sim::ReleaseKind::Periodic;
  bulk.period = sim::RelativeTime::milliseconds(10);
  bulk.cost = sim::RelativeTime::milliseconds(8);  // overruns 3ms budget
  const sim::TaskId bulk_id = sched.add_task(bulk);

  sim::TaskConfig ctrl;
  ctrl.name = "alpha.Ctrl";
  ctrl.kind = sim::ThreadKind::Realtime;
  ctrl.priority = 20;
  ctrl.release = sim::ReleaseKind::Periodic;
  ctrl.period = sim::RelativeTime::milliseconds(10);
  ctrl.cost = sim::RelativeTime::milliseconds(1);
  const sim::TaskId ctrl_id = sched.add_task(ctrl);

  sim::TaskConfig victim;
  victim.name = "beta.Victim";
  victim.kind = sim::ThreadKind::Realtime;
  victim.priority = 22;  // preempts ctrl, yields to bulk
  victim.release = sim::ReleaseKind::Periodic;
  victim.period = sim::RelativeTime::milliseconds(20);
  victim.cost = sim::RelativeTime::milliseconds(1);
  const sim::TaskId victim_id = sched.add_task(victim);

  OverloadGovernor governor;
  const auto alpha = governor.add_tenant("alpha", Criticality::Low);
  const auto beta = governor.add_tenant("beta", Criticality::Low);
  const auto gov_bulk =
      governor.add_component("alpha.Bulk", Criticality::Low, alpha);
  const auto gov_ctrl =
      governor.add_component("alpha.Ctrl", Criticality::High, alpha);
  const auto gov_victim =
      governor.add_component("beta.Victim", Criticality::Low, beta);

  const auto gate = [&governor](std::size_t id) {
    return [&governor, id](sim::TaskId, std::uint64_t) {
      return governor.admit_release(id) ==
             OverloadGovernor::Admission::Run;
    };
  };
  sched.set_release_gate(bulk_id, gate(gov_bulk));
  sched.set_release_gate(ctrl_id, gate(gov_ctrl));
  sched.set_release_gate(victim_id, gate(gov_victim));

  model::TimingContract contract;
  contract.wcet_budget = sim::RelativeTime::milliseconds(3);
  contract.window = 4;
  monitor::ContractMonitor bulk_contract("alpha.Bulk", contract);
  sched.set_on_complete(bulk_id, [&](sim::AbsoluteTime) {
    monitor::Violation out[2];
    monitor::WindowOutcome outcome = monitor::WindowOutcome::Open;
    bulk_contract.record_execution(sim::RelativeTime::milliseconds(8),
                                   false, out, &outcome);
    if (outcome == monitor::WindowOutcome::Violated) {
      governor.on_window_violated(gov_bulk);
    } else if (outcome == monitor::WindowOutcome::Clean) {
      governor.on_window_clean(gov_bulk);
    }
  });

  sched.run_until(sim::AbsoluteTime::epoch() + sim::RelativeTime::seconds(1));

  TwoTenantRun result;
  result.bulk = sched.stats(bulk_id);
  result.ctrl = sched.stats(ctrl_id);
  result.victim = sched.stats(victim_id);
  for (const auto& d : governor.decisions()) {
    result.decisions.push_back(std::string(d.tenant) + ":" +
                               to_string(d.level) + "@" + d.trigger);
  }
  for (const auto& event : sched.trace()) {
    result.trace.push_back(event.to_string(sched));
  }
  return result;
}

TEST(TenantSimTest, OverloadInOneTenantNeverShedsTheOther) {
  const TwoTenantRun run = run_two_tenants();

  // Alpha escalates to Shed through its own bulk task...
  ASSERT_EQ(run.decisions.size(), 2u);
  EXPECT_EQ(run.decisions[0], "alpha:rate-limit@alpha.Bulk");
  EXPECT_EQ(run.decisions[1], "alpha:shed@alpha.Bulk");
  EXPECT_GT(run.bulk.shed_releases, 0u);
  // ...while alpha's high-criticality task and every beta release run.
  EXPECT_EQ(run.ctrl.shed_releases, 0u);
  EXPECT_EQ(run.victim.shed_releases, 0u);
  EXPECT_EQ(run.victim.deadline_misses, 0u)
      << "the bystander tenant must come through the overload whole";
  EXPECT_EQ(run.victim.releases_completed, 50u);

  // The trace never sheds outside the overloaded tenant.
  for (const auto& line : run.trace) {
    EXPECT_EQ(line.find("shed beta.Victim"), std::string::npos);
    EXPECT_EQ(line.find("shed alpha.Ctrl"), std::string::npos);
  }
}

TEST(TenantSimTest, TwoTenantReplayIsBitForBit) {
  const TwoTenantRun first = run_two_tenants();
  const TwoTenantRun second = run_two_tenants();
  EXPECT_EQ(first.decisions, second.decisions);
  ASSERT_EQ(first.trace.size(), second.trace.size());
  EXPECT_EQ(first.trace, second.trace);
  EXPECT_EQ(first.victim.releases_completed,
            second.victim.releases_completed);
  EXPECT_EQ(first.bulk.shed_releases, second.bulk.shed_releases);
}

}  // namespace
}  // namespace rtcf
