// RTSJ time types and clocks.
#include <gtest/gtest.h>

#include "rtsj/time/time.hpp"

namespace rtcf::rtsj {
namespace {

TEST(RelativeTimeTest, FactoriesAndConversions) {
  EXPECT_EQ(RelativeTime::milliseconds(10).nanos(), 10'000'000);
  EXPECT_EQ(RelativeTime::microseconds(5).nanos(), 5'000);
  EXPECT_EQ(RelativeTime::seconds(2).nanos(), 2'000'000'000);
  EXPECT_DOUBLE_EQ(RelativeTime::milliseconds(10).to_millis(), 10.0);
  EXPECT_DOUBLE_EQ(RelativeTime::microseconds(7).to_micros(), 7.0);
  EXPECT_TRUE(RelativeTime::zero().is_zero());
  EXPECT_TRUE(RelativeTime::nanoseconds(-1).is_negative());
}

TEST(RelativeTimeTest, Arithmetic) {
  const auto a = RelativeTime::milliseconds(3);
  const auto b = RelativeTime::milliseconds(2);
  EXPECT_EQ(a + b, RelativeTime::milliseconds(5));
  EXPECT_EQ(a - b, RelativeTime::milliseconds(1));
  EXPECT_EQ(a * 4, RelativeTime::milliseconds(12));
  EXPECT_EQ(-a, RelativeTime::milliseconds(-3));
  EXPECT_LT(b, a);
}

TEST(AbsoluteTimeTest, PointArithmetic) {
  const auto t0 = AbsoluteTime::epoch();
  const auto t1 = t0 + RelativeTime::milliseconds(10);
  EXPECT_EQ(t1 - t0, RelativeTime::milliseconds(10));
  EXPECT_EQ(t1 - RelativeTime::milliseconds(10), t0);
  EXPECT_GT(t1, t0);
}

TEST(TimeFormattingTest, PicksNaturalUnits) {
  EXPECT_EQ(RelativeTime::milliseconds(10).to_string(), "10ms");
  EXPECT_EQ(RelativeTime::microseconds(250).to_string(), "250us");
  EXPECT_EQ(RelativeTime::nanoseconds(7).to_string(), "7ns");
}

TEST(ManualClockTest, AdvancesMonotonically) {
  ManualClock clock;
  EXPECT_EQ(clock.now(), AbsoluteTime::epoch());
  clock.advance_by(RelativeTime::milliseconds(5));
  EXPECT_EQ(clock.now().nanos(), 5'000'000);
  clock.advance_to(AbsoluteTime(7'000'000));
  EXPECT_THROW(clock.advance_to(AbsoluteTime(1)), std::invalid_argument);
  clock.reset();
  EXPECT_EQ(clock.now(), AbsoluteTime::epoch());
}

TEST(SteadyClockTest, IsMonotoneNonDecreasing) {
  auto& clock = SteadyClock::instance();
  const auto a = clock.now();
  const auto b = clock.now();
  EXPECT_LE(a.nanos(), b.nanos());
  EXPECT_EQ(clock.resolution(), RelativeTime::nanoseconds(1));
}

}  // namespace
}  // namespace rtcf::rtsj
